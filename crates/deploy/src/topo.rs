//! Deterministic deployment topology, recomputed identically by every
//! process.
//!
//! The coordinator and every sequencing-node process derive the same
//! sequencing graph, atom co-location, and link table from nothing but the
//! membership and the seed — exactly the derivation the threaded runtime's
//! `Cluster::start` performs — so link ids carried on the wire mean the
//! same thing everywhere and no process ever has to ship the topology to
//! another.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_core::proto::Peer;
use seqnet_membership::Membership;
use seqnet_overlap::{AtomId, Colocation, GraphBuilder, SequencingGraph};
use std::collections::{BTreeSet, HashMap};

/// The OS process owning a party: the coordinator runs the publisher
/// front-end and every subscriber host in-process; each sequencing node is
/// its own child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proc {
    /// The launching process (publisher + all hosts + chaos controller).
    Coordinator,
    /// The child process running sequencing node `idx`.
    Node(usize),
}

/// The shared wiring every process derives from (membership, seed).
#[derive(Debug)]
pub struct Topology {
    /// The sequencing graph for the membership.
    pub graph: SequencingGraph,
    /// The membership itself.
    pub membership: Membership,
    /// Sequencing node hosting each live atom.
    pub atom_node: HashMap<AtomId, usize>,
    /// Number of sequencing nodes (= child processes).
    pub num_nodes: usize,
    /// Directed reliable links, indexed by wire link id.
    pub links: Vec<(Peer, Peer)>,
    /// Reverse index of `links`.
    pub link_index: HashMap<(Peer, Peer), u32>,
}

impl Topology {
    /// Derives the full topology. Must stay in lockstep with the threaded
    /// runtime's `Cluster::start`: same graph builder, same seeded
    /// co-location, same link enumeration order — the three-way oracle
    /// depends on all drivers running the identical wiring.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph fails validation (a bug, not an
    /// input error).
    pub fn derive(membership: &Membership, seed: u64) -> Self {
        let graph = GraphBuilder::new().build(membership);
        graph
            .validate_against(membership)
            .expect("constructed graph is valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let coloc = Colocation::compute(&graph, &mut rng);

        let mut atom_node: HashMap<AtomId, usize> = HashMap::new();
        for atom in graph.atoms() {
            if let Some(nidx) = coloc.node_of(atom.id) {
                atom_node.insert(atom.id, nidx);
            }
        }

        let mut links: Vec<(Peer, Peer)> = Vec::new();
        let mut link_index: HashMap<(Peer, Peer), u32> = HashMap::new();
        let add_link = |from: Peer,
                        to: Peer,
                        links: &mut Vec<(Peer, Peer)>,
                        index: &mut HashMap<(Peer, Peer), u32>| {
            index.entry((from, to)).or_insert_with(|| {
                let id = links.len() as u32;
                links.push((from, to));
                id
            });
        };
        for (group, path) in graph.paths() {
            let ingress = atom_node[path.first().expect("paths are non-empty")];
            add_link(
                Peer::Publisher,
                Peer::Node(ingress),
                &mut links,
                &mut link_index,
            );
            for w in path.windows(2) {
                let (a, b) = (atom_node[&w[0]], atom_node[&w[1]]);
                if a != b {
                    add_link(Peer::Node(a), Peer::Node(b), &mut links, &mut link_index);
                }
            }
            let egress = atom_node[path.last().expect("paths are non-empty")];
            for member in membership.members(group) {
                add_link(
                    Peer::Node(egress),
                    Peer::Host(member),
                    &mut links,
                    &mut link_index,
                );
            }
        }

        Topology {
            graph,
            membership: membership.clone(),
            atom_node,
            num_nodes: coloc.num_nodes(),
            links,
            link_index,
        }
    }

    /// The wire link id of the directed link `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if no such link was enumerated.
    pub fn link_between(&self, from: Peer, to: Peer) -> u32 {
        self.link_index[&(from, to)]
    }

    /// The process owning a party.
    pub fn owner(party: Peer) -> Proc {
        match party {
            Peer::Node(i) => Proc::Node(i),
            Peer::Publisher | Peer::Host(_) => Proc::Coordinator,
        }
    }

    /// Sequencing nodes sharing at least one link (in either direction)
    /// with node `idx` — the node processes `idx` keeps connections to.
    pub fn node_peers(&self, idx: usize) -> BTreeSet<usize> {
        let mut peers = BTreeSet::new();
        for &(from, to) in &self.links {
            if let (Peer::Node(a), Peer::Node(b)) = (from, to) {
                if a == idx && b != idx {
                    peers.insert(b);
                } else if b == idx && a != idx {
                    peers.insert(a);
                }
            }
        }
        peers
    }

    /// Upstream sequencing nodes whose silence node `idx` watches for
    /// (peers with a link *into* `idx`), plus the outgoing node links
    /// `idx` heartbeats on: `(watched, heartbeat_out)`.
    pub fn heartbeat_plan(&self, idx: usize) -> (BTreeSet<usize>, Vec<(Peer, u32)>) {
        let mut watched = BTreeSet::new();
        let mut hb_out = Vec::new();
        for (i, &(from, to)) in self.links.iter().enumerate() {
            match (from, to) {
                (Peer::Node(p), Peer::Node(q)) if q == idx => {
                    watched.insert(p);
                }
                (Peer::Node(p), Peer::Node(_)) if p == idx => {
                    hb_out.push((to, i as u32));
                }
                _ => {}
            }
        }
        (watched, hb_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_membership::{GroupId, NodeId};

    fn membership() -> Membership {
        Membership::from_groups([
            (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
            (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        ])
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = Topology::derive(&membership(), 42);
        let b = Topology::derive(&membership(), 42);
        assert_eq!(a.links, b.links);
        assert_eq!(a.num_nodes, b.num_nodes);
        assert_eq!(a.atom_node, b.atom_node);
    }

    #[test]
    fn every_link_endpoint_has_an_owner_process() {
        let t = Topology::derive(&membership(), 7);
        assert!(t.num_nodes >= 1);
        for &(from, to) in &t.links {
            let _ = Topology::owner(from);
            let _ = Topology::owner(to);
            assert_ne!(
                Topology::owner(from),
                Topology::owner(to),
                "links never connect a process to itself: {from:?} -> {to:?}"
            );
        }
    }

    #[test]
    fn heartbeat_plan_matches_link_directions() {
        let t = Topology::derive(&membership(), 7);
        for idx in 0..t.num_nodes {
            let (watched, hb_out) = t.heartbeat_plan(idx);
            for p in &watched {
                assert!(t.link_index.contains_key(&(Peer::Node(*p), Peer::Node(idx))));
            }
            for &(to, link) in &hb_out {
                assert_eq!(t.links[link as usize], (Peer::Node(idx), to));
            }
        }
    }
}
