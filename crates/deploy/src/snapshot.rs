//! Durable node checkpoints on disk.
//!
//! The threaded runtime checkpoints into a shared in-memory snapshot
//! store; a real process loses its memory when SIGKILLed, so the socket
//! deployment writes each node's durable state to
//! `<dir>/node<idx>.snap` — protocol counters (via
//! `ProtocolState::export_counters`) plus both halves of every link —
//! using write-to-temp-then-rename so a crash mid-write never leaves a
//! torn snapshot behind. The group-commit rule is unchanged: staged
//! outputs and cumulative acks leave the node only after the rename
//! returns, so everything that ever escaped the node is recorded in some
//! on-disk snapshot.

use crate::wire::{put_frame, take_frame, CodecError};
use seqnet_core::proto::Frame;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SQSNAP2\n";

/// A node's durable state as serialized to disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskSnapshot {
    /// Configuration epoch the counters belong to. A node restarted into
    /// a different epoch ignores the snapshot — its counters index a
    /// retired sequencing graph — and starts fresh in the new epoch.
    pub epoch: u64,
    /// Overlap-counter values, by counter index (from
    /// `ProtocolState::export_counters`).
    pub overlaps: Vec<u64>,
    /// Group-counter values as `(group id, counter)` pairs.
    pub groups: Vec<(u32, u64)>,
    /// Per incoming link: the next in-order sequence number expected at
    /// snapshot time.
    pub rx_next: Vec<(u32, u64)>,
    /// Per outgoing link: the next fresh sequence number and the frames
    /// unacknowledged at snapshot time.
    pub tx: Vec<(u32, u64, Vec<(u64, Frame)>)>,
}

/// The snapshot path for node `idx` under `dir`.
pub fn snapshot_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("node{idx}.snap"))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Garbled("truncated snapshot"));
    }
    let v = u32::from_le_bytes(buf[..4].try_into().unwrap());
    *buf = &buf[4..];
    Ok(v)
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::Garbled("truncated snapshot"));
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Ok(v)
}

impl DiskSnapshot {
    /// Serializes the snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.overlaps.len() as u32);
        for &c in &self.overlaps {
            put_u64(&mut out, c);
        }
        put_u32(&mut out, self.groups.len() as u32);
        for &(g, c) in &self.groups {
            put_u32(&mut out, g);
            put_u64(&mut out, c);
        }
        put_u32(&mut out, self.rx_next.len() as u32);
        for &(link, next) in &self.rx_next {
            put_u32(&mut out, link);
            put_u64(&mut out, next);
        }
        put_u32(&mut out, self.tx.len() as u32);
        for (link, next_seq, frames) in &self.tx {
            put_u32(&mut out, *link);
            put_u64(&mut out, *next_seq);
            put_u32(&mut out, frames.len() as u32);
            for (seq, frame) in frames {
                put_u64(&mut out, *seq);
                put_frame(&mut out, frame);
            }
        }
        out
    }

    /// Deserializes a snapshot previously produced by
    /// [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CodecError> {
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(CodecError::Garbled("bad snapshot magic"));
        }
        buf = &buf[MAGIC.len()..];
        let mut snap = DiskSnapshot {
            epoch: take_u64(&mut buf)?,
            ..DiskSnapshot::default()
        };
        for _ in 0..take_u32(&mut buf)? {
            snap.overlaps.push(take_u64(&mut buf)?);
        }
        for _ in 0..take_u32(&mut buf)? {
            let g = take_u32(&mut buf)?;
            snap.groups.push((g, take_u64(&mut buf)?));
        }
        for _ in 0..take_u32(&mut buf)? {
            let link = take_u32(&mut buf)?;
            snap.rx_next.push((link, take_u64(&mut buf)?));
        }
        for _ in 0..take_u32(&mut buf)? {
            let link = take_u32(&mut buf)?;
            let next_seq = take_u64(&mut buf)?;
            let n = take_u32(&mut buf)?;
            let mut frames = Vec::with_capacity((n as usize).min(1024));
            for _ in 0..n {
                let seq = take_u64(&mut buf)?;
                frames.push((seq, take_frame(&mut buf)?));
            }
            snap.tx.push((link, next_seq, frames));
        }
        if !buf.is_empty() {
            return Err(CodecError::Garbled("trailing snapshot bytes"));
        }
        Ok(snap)
    }

    /// Atomically persists the snapshot: write to `<path>.tmp`, rename
    /// over `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem failure.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads the latest snapshot, `None` if the node never checkpointed.
    ///
    /// # Errors
    ///
    /// A present-but-corrupt snapshot is an error (stable storage lied),
    /// not a silent fresh start.
    pub fn load(path: &Path) -> io::Result<Option<Self>> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::decode(&bytes)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_core::{Message, MessageId};
    use seqnet_membership::{GroupId, NodeId};

    fn frame(id: u64) -> Frame {
        Frame {
            msg: Message::new(MessageId(id), NodeId(1), GroupId(0), b"x".to_vec()),
            target_atom: None,
        }
    }

    #[test]
    fn snapshot_roundtrips_through_disk() {
        let snap = DiskSnapshot {
            epoch: 3,
            overlaps: vec![3, 0, 7],
            groups: vec![(0, 4), (1, 9)],
            rx_next: vec![(2, 11)],
            tx: vec![(5, 13, vec![(11, frame(1)), (12, frame(2))])],
        };
        let dir = std::env::temp_dir().join(format!("seqnet-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = snapshot_path(&dir, 0);
        snap.save(&path).expect("save");
        let back = DiskSnapshot::load(&path).expect("load").expect("present");
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_a_clean_fresh_start() {
        let path = std::env::temp_dir().join("seqnet-snap-test-definitely-missing.snap");
        assert!(DiskSnapshot::load(&path).expect("ok").is_none());
    }

    #[test]
    fn corrupt_snapshot_is_loud() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seqnet-snap-corrupt-{}.snap", std::process::id()));
        std::fs::write(&path, b"SQSNAP2\n\x05\x00\x00").expect("write");
        assert!(DiskSnapshot::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn old_format_magic_is_rejected() {
        // SQSNAP1 snapshots predate the epoch field; restoring one would
        // misalign every counter, so the magic bump makes them loud.
        let path = std::env::temp_dir().join(format!(
            "seqnet-snap-oldmagic-{}.snap",
            std::process::id()
        ));
        std::fs::write(&path, b"SQSNAP1\n\x00\x00\x00\x00").expect("write");
        assert!(DiskSnapshot::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
