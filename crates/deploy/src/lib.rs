//! Socket-based multi-process deployment of the decentralized ordering
//! protocol, with real-process crash injection.
//!
//! The simulator proves the protocol correct under adversarial schedules;
//! the threaded runtime proves it across real threads and channels. This
//! crate closes the last gap to the paper's deployment model: every
//! sequencing node is a separate OS process, every link is a real TCP
//! connection on localhost, and every fault is a real fault — SIGKILL,
//! severed connections, frozen sockets. The protocol cores ([`NodeCore`],
//! [`ReceiverCore`]) and the link-level seq/ack/retransmit/backoff
//! machinery are exactly the ones the other two drivers run; only the
//! transport underneath them changes. That is the point: a three-way
//! differential oracle can push one seeded workload plus one fault
//! schedule through simulator, threads, and processes, and demand
//! identical per-group per-receiver delivery orders.
//!
//! Layering, bottom up:
//!
//! - [`wire`]: length-prefixed frame codec, tolerant of short reads and
//!   partial writes, rejecting garbage without panicking.
//! - [`conn`]: non-blocking framed connections and capped-backoff
//!   redialing.
//! - [`sys`]: the one `unsafe` corner — `SO_REUSEADDR` listener binding so
//!   a SIGKILL-respawned node can reclaim its port immediately.
//! - [`topo`]: the deterministic link table every process re-derives from
//!   `(membership, seed)`; nothing is shipped, everything is recomputed.
//! - [`spec`]: the plain-text cluster spec handed to child processes.
//! - [`engine`]: the reliable-link discipline (group-commit staging,
//!   deferred cumulative acks, reconnect replay) over wire messages.
//! - [`snapshot`]: atomic on-disk node checkpoints (write-temp-rename).
//! - [`node`] / [`child`]: the sequencing-node process.
//! - [`coord`]: the coordinator — publisher, in-process subscriber hosts,
//!   chaos controller, stats aggregation.
//! - [`chaos`]: deterministic process-level fault schedules, convertible
//!   from the simulator's `FaultPlan` for the oracle.
//!
//! # Example
//!
//! ```no_run
//! use seqnet_deploy::{run_if_child, DeployCluster};
//! use seqnet_membership::{GroupId, Membership, NodeId};
//! use seqnet_runtime::ClusterConfig;
//! use std::time::Duration;
//!
//! // First thing in main: become a node process if spawned as one.
//! run_if_child();
//!
//! let membership = Membership::from_groups([
//!     (GroupId(0), vec![NodeId(0), NodeId(1)]),
//!     (GroupId(1), vec![NodeId(1), NodeId(2)]),
//! ]);
//! let mut cluster = DeployCluster::start(&membership, ClusterConfig::default()).unwrap();
//! cluster.publish(NodeId(0), GroupId(0), &b"hello"[..]).unwrap();
//! let deliveries = cluster.wait_for_deliveries(2, Duration::from_secs(10)).unwrap();
//! cluster.shutdown();
//! # let _ = deliveries;
//! ```
//!
//! [`NodeCore`]: seqnet_core::proto::NodeCore
//! [`ReceiverCore`]: seqnet_core::proto::ReceiverCore

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod child;
pub mod conn;
pub mod coord;
pub mod engine;
pub mod node;
pub mod snapshot;
pub mod spec;
pub mod sys;
pub mod topo;
pub mod wire;

pub use chaos::{ChaosEvent, ChaosKind, ChaosPlan};
pub use child::run_if_child;
pub use coord::{node_registry, DeployCluster, DeployStats};
pub use spec::ClusterSpec;
pub use topo::{Proc, Topology};
pub use wire::{CodecError, NodeTelemetry, NodeWireStats, WireBody, WireMsg};
