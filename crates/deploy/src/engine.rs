//! The socket deployment's link engine: the exact reliable-link discipline
//! of the threaded runtime's internal `LinkEngine`, retargeted from
//! channels to wire messages.
//!
//! The engine owns one [`LinkSender`]/[`LinkReceiver`] pair per link it
//! terminates and turns protocol traffic into `(destination, WireMsg)`
//! transmissions which the owning process routes onto its TCP
//! connections. Sequencing nodes run it with deferred acks (group-commit:
//! outputs stage until a snapshot covers them, cumulative acks advance
//! only at snapshot time); the coordinator's publisher and host endpoints
//! ack every frame immediately. Reconnects replay the unacknowledged
//! suffix exactly once per connection epoch via
//! [`LinkSender::reconnect_replay`].

use crate::topo::{Proc, Topology};
use crate::wire::{WireBody, WireMsg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet_core::proto::{Frame, Peer};
use seqnet_runtime::{LinkReceiver, LinkSender};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Wire-level counters a process accumulates, shipped to the coordinator
/// in the shutdown `Stats` frame.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Data frames handed to the transport (incl. retransmissions).
    pub frames_sent: u64,
    /// Frames discarded by the loss injector before the transport.
    pub frames_dropped: u64,
    /// Retransmissions performed by link senders.
    pub retransmissions: u64,
    /// Duplicates discarded by link receivers.
    pub duplicates: u64,
    /// Frames per wire write (1 for single frames, run length for
    /// coalesced batches).
    pub batch_sizes: BTreeMap<usize, u64>,
}

/// Reliable-link state for one process. See the module docs.
#[derive(Debug)]
pub struct WireEngine {
    me: Peer,
    defer_acks: bool,
    timeout: Duration,
    cap: Duration,
    coalesce: bool,
    drop_probability: f64,
    rng: StdRng,
    senders: HashMap<u32, LinkSender<Frame>>,
    receivers: HashMap<u32, LinkReceiver<Frame>>,
    /// Last cumulative ack floor advertised per incoming link, re-sent
    /// when a sender retransmits below it.
    acked_floor: HashMap<u32, u64>,
    /// Output frames registered with their senders but withheld from the
    /// wire until the next snapshot flush.
    staged: Vec<(Peer, u32, u64, Frame)>,
    /// Transmissions awaiting routing by the owning process.
    out: Vec<(Peer, WireMsg)>,
    /// Counters; the process folds them into its `Stats` frame.
    pub stats: EngineStats,
}

impl WireEngine {
    /// An engine for party `me`. `defer_acks` selects the group-commit
    /// discipline (sequencing nodes) over immediate acks (coordinator
    /// endpoints). Loss injection and retransmission timing come from the
    /// shared cluster config.
    pub fn new(
        me: Peer,
        seed: u64,
        defer_acks: bool,
        timeout: Duration,
        cap: Duration,
        coalesce: bool,
        drop_probability: f64,
    ) -> Self {
        WireEngine {
            me,
            defer_acks,
            timeout,
            cap,
            coalesce,
            drop_probability,
            rng: StdRng::seed_from_u64(seed),
            senders: HashMap::new(),
            receivers: HashMap::new(),
            acked_floor: HashMap::new(),
            staged: Vec::new(),
            out: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    fn sender_for(&mut self, link: u32) -> &mut LinkSender<Frame> {
        let (timeout, cap) = (self.timeout, self.cap);
        self.senders
            .entry(link)
            .or_insert_with(|| LinkSender::with_backoff(timeout, cap))
    }

    /// Drains the pending transmissions for routing onto connections.
    pub fn take_out(&mut self) -> Vec<(Peer, WireMsg)> {
        std::mem::take(&mut self.out)
    }

    fn transmit(&mut self, to: Peer, link: u32, seq: u64, body: WireBody) {
        match &body {
            WireBody::Data(_) => {
                self.stats.frames_sent += 1;
                *self.stats.batch_sizes.entry(1).or_insert(0) += 1;
            }
            WireBody::DataBatch(frames) => {
                self.stats.frames_sent += frames.len() as u64;
                *self.stats.batch_sizes.entry(frames.len()).or_insert(0) += 1;
            }
            _ => {}
        }
        if self.drop_probability > 0.0 && self.rng.gen_bool(self.drop_probability) {
            self.stats.frames_dropped += 1;
            return;
        }
        self.out.push((to, WireMsg::Link { link, seq, body }));
    }

    /// Sends `data` over the reliable link `me -> to`, transmitting
    /// immediately. Used by the coordinator's publisher front-end.
    pub fn send_data(&mut self, topo: &Topology, to: Peer, data: Frame) {
        let link = topo.link_between(self.me, to);
        let (seq, payload) = self.sender_for(link).send(data);
        self.transmit(to, link, seq, WireBody::Data(payload));
    }

    /// Registers `data` on the link `me -> to` but stages it: the frame
    /// owns its sequence number and appears in the next snapshot, yet
    /// reaches the wire only via [`flush_staged`](Self::flush_staged).
    pub fn send_data_held(&mut self, topo: &Topology, to: Peer, data: Frame) {
        let link = topo.link_between(self.me, to);
        let (seq, payload) = self.sender_for(link).send_held(data);
        self.staged.push((to, link, seq, payload));
    }

    /// Transmits all staged frames (one coalesced batch per consecutive
    /// run when configured) and hands them to the retransmission
    /// schedule. Call only after the snapshot recording them is durable.
    pub fn flush_staged(&mut self) {
        let staged = std::mem::take(&mut self.staged);
        if self.coalesce {
            let mut order: Vec<(Peer, u32)> = Vec::new();
            for &(to, link, _, _) in &staged {
                if !order.contains(&(to, link)) {
                    order.push((to, link));
                }
            }
            for (to, link) in order {
                let runs = self.sender_for(link).release_held_coalesced();
                for (first, frames) in runs {
                    self.transmit(to, link, first, WireBody::DataBatch(frames));
                }
            }
        } else {
            for (to, link, seq, data) in staged {
                self.transmit(to, link, seq, WireBody::Data(data));
            }
        }
        for sender in self.senders.values_mut() {
            sender.release_held();
        }
    }

    /// Handles one incoming link frame; returns in-order data payloads.
    pub fn on_link(&mut self, topo: &Topology, link: u32, seq: u64, body: WireBody) -> Vec<Frame> {
        match body {
            WireBody::Ack => {
                if let Some(sender) = self.senders.get_mut(&link) {
                    sender.acknowledge(seq);
                }
                Vec::new()
            }
            WireBody::AckThrough => {
                if let Some(sender) = self.senders.get_mut(&link) {
                    sender.acknowledge_through(seq);
                }
                Vec::new()
            }
            WireBody::Heartbeat => Vec::new(),
            WireBody::Data(data) => {
                let (from, _to) = topo.links[link as usize];
                if self.defer_acks {
                    // No ack before a snapshot covers the frame, but a
                    // sender retransmitting below the snapshotted floor
                    // missed the cumulative ack — re-advertise it.
                    let stale = self
                        .receivers
                        .get(&link)
                        .is_some_and(|r| seq < r.next_expected());
                    if stale {
                        let floor = self.acked_floor.get(&link).copied().unwrap_or(0);
                        if floor > 0 {
                            self.transmit(from, link, floor, WireBody::AckThrough);
                        }
                    }
                } else {
                    self.transmit(from, link, seq, WireBody::Ack);
                }
                let receiver = self.receivers.entry(link).or_default();
                let out = receiver.receive(seq, data);
                self.stats.duplicates = self.receivers.values().map(|r| r.duplicates()).sum();
                out
            }
            WireBody::DataBatch(frames) => {
                if frames.is_empty() {
                    return Vec::new();
                }
                let (from, _to) = topo.links[link as usize];
                let last = seq + frames.len() as u64 - 1;
                if self.defer_acks {
                    let stale = self
                        .receivers
                        .get(&link)
                        .is_some_and(|r| last < r.next_expected());
                    if stale {
                        let floor = self.acked_floor.get(&link).copied().unwrap_or(0);
                        if floor > 0 {
                            self.transmit(from, link, floor, WireBody::AckThrough);
                        }
                    }
                }
                let receiver = self.receivers.entry(link).or_default();
                let out = receiver.receive_batch(seq, frames);
                let floor = receiver.next_expected() - 1;
                if !self.defer_acks && floor > 0 {
                    self.transmit(from, link, floor, WireBody::AckThrough);
                }
                self.stats.duplicates = self.receivers.values().map(|r| r.duplicates()).sum();
                out
            }
        }
    }

    /// Emits a heartbeat on outgoing link `link` to `to`. Heartbeats are
    /// unsequenced (seq 0) and never retransmitted.
    pub fn heartbeat(&mut self, to: Peer, link: u32) {
        self.out.push((
            to,
            WireMsg::Link {
                link,
                seq: 0,
                body: WireBody::Heartbeat,
            },
        ));
    }

    /// Retransmits overdue frames on all outgoing links.
    pub fn retransmit_due(&mut self, topo: &Topology) {
        let due: Vec<(u32, Vec<(u64, Frame)>)> = self
            .senders
            .iter_mut()
            .map(|(&link, s)| (link, s.due_for_retransmit()))
            .collect();
        for (link, frames) in due {
            let (_, to) = topo.links[link as usize];
            for (seq, data) in frames {
                self.transmit(to, link, seq, WireBody::Data(data));
            }
        }
        self.stats.retransmissions = self.senders.values().map(|s| s.retransmissions()).sum();
    }

    /// Replays the unacknowledged (non-staged) suffix of every link whose
    /// destination lives in process `proc`, exactly once per connection
    /// `epoch` — called when a connection to that process is
    /// (re)established, so a respawned or reconnected peer receives the
    /// retransmission-buffer contents immediately instead of waiting out
    /// the backoff schedule.
    pub fn reconnect_replay_to(&mut self, topo: &Topology, proc: Proc, epoch: u64) {
        let links: Vec<u32> = self
            .senders
            .keys()
            .copied()
            .filter(|&l| Topology::owner(topo.links[l as usize].1) == proc)
            .collect();
        for link in links {
            let to = topo.links[link as usize].1;
            let burst = self
                .senders
                .get_mut(&link)
                .expect("sender exists")
                .reconnect_replay(epoch);
            for (seq, data) in burst {
                self.transmit(to, link, seq, WireBody::Data(data));
            }
        }
        self.stats.retransmissions = self.senders.values().map(|s| s.retransmissions()).sum();
    }

    /// Sends a cumulative ack to `to` covering everything through
    /// `through` on the incoming link `to -> me`, caching the floor for
    /// stale-frame re-advertisement.
    pub fn send_ack_through(&mut self, topo: &Topology, to: Peer, through: u64) {
        let link = topo.link_between(to, self.me);
        self.acked_floor.insert(link, through);
        self.transmit(to, link, through, WireBody::AckThrough);
    }

    /// The durable link state a snapshot records: per incoming link the
    /// next expected sequence number, per outgoing link the next fresh
    /// sequence number plus unacknowledged frames.
    #[allow(clippy::type_complexity)]
    pub fn snapshot_links(&self) -> (Vec<(u32, u64)>, Vec<(u32, u64, Vec<(u64, Frame)>)>) {
        let mut rx: Vec<(u32, u64)> = self
            .receivers
            .iter()
            .map(|(&link, r)| (link, r.next_expected()))
            .collect();
        rx.sort_unstable();
        let mut tx: Vec<(u32, u64, Vec<(u64, Frame)>)> = self
            .senders
            .iter()
            .map(|(&link, s)| {
                let (next, frames) = s.snapshot();
                (link, next, frames)
            })
            .collect();
        tx.sort_unstable_by_key(|&(link, _, _)| link);
        (rx, tx)
    }

    /// Rebuilds link state from snapshot parts. Restored output frames
    /// are immediately due for retransmission; acked floors match what
    /// the snapshot had advertised.
    pub fn restore_links(&mut self, rx: &[(u32, u64)], tx: &[(u32, u64, Vec<(u64, Frame)>)]) {
        for &(link, next) in rx {
            self.receivers.insert(link, LinkReceiver::resume(next));
            self.acked_floor.insert(link, next.saturating_sub(1));
        }
        for (link, next_seq, frames) in tx {
            self.senders.insert(
                *link,
                LinkSender::resume(self.timeout, self.cap, *next_seq, frames.clone()),
            );
        }
    }

    /// Staged frames currently withheld (used for flush bookkeeping).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_core::{Message, MessageId};
    use seqnet_membership::{GroupId, Membership, NodeId};

    fn topo() -> Topology {
        Topology::derive(
            &Membership::from_groups([
                (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
                (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
            ]),
            11,
        )
    }

    fn frame(id: u64) -> Frame {
        Frame {
            msg: Message::new(MessageId(id), NodeId(0), GroupId(0), Vec::new()),
            target_atom: None,
        }
    }

    fn engine(me: Peer, defer: bool) -> WireEngine {
        WireEngine::new(
            me,
            1,
            defer,
            Duration::from_millis(10),
            Duration::from_millis(100),
            false,
            0.0,
        )
    }

    #[test]
    fn publisher_traffic_flows_and_is_acked() {
        let t = topo();
        let ingress = t
            .links
            .iter()
            .find(|(f, _)| *f == Peer::Publisher)
            .expect("publisher link")
            .1;
        let mut publisher = engine(Peer::Publisher, false);
        let mut node = engine(ingress, true);
        publisher.send_data(&t, ingress, frame(1));
        let sent = publisher.take_out();
        assert_eq!(sent.len(), 1);
        let (to, WireMsg::Link { link, seq, body }) = sent.into_iter().next().expect("one") else {
            panic!("expected link frame");
        };
        assert_eq!(to, ingress);
        let delivered = node.on_link(&t, link, seq, body);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].msg.id, MessageId(1));
        // Deferred acks: the node sent nothing back yet.
        assert!(node.take_out().is_empty());
        // Snapshot time: the node acks through the received prefix.
        node.send_ack_through(&t, Peer::Publisher, seq);
        let acks = node.take_out();
        assert_eq!(acks.len(), 1);
        let (_, WireMsg::Link { link, seq, body }) = acks.into_iter().next().expect("ack") else {
            panic!("expected ack frame");
        };
        assert!(matches!(body, WireBody::AckThrough));
        publisher.on_link(&t, link, seq, body);
        publisher.retransmit_due(&t);
        assert!(
            publisher.take_out().is_empty(),
            "acked frame must not retransmit"
        );
    }

    #[test]
    fn snapshot_roundtrip_restores_sender_and_receiver_state() {
        let t = topo();
        let ingress = t
            .links
            .iter()
            .find(|(f, _)| *f == Peer::Publisher)
            .expect("publisher link")
            .1;
        let mut node = engine(ingress, true);
        let link = t.link_between(Peer::Publisher, ingress);
        // Receive two frames, stage one output.
        node.on_link(&t, link, 1, WireBody::Data(frame(1)));
        node.on_link(&t, link, 2, WireBody::Data(frame(2)));
        let host_link = t
            .links
            .iter()
            .position(|(f, _)| *f == ingress)
            .expect("outgoing link") as u32;
        let to = t.links[host_link as usize].1;
        node.send_data_held(&t, to, frame(3));
        let (rx, tx) = node.snapshot_links();
        assert!(rx.contains(&(link, 3)), "next expected is 3: {rx:?}");
        assert_eq!(tx.iter().find(|e| e.0 == host_link).expect("tx").2.len(), 1);

        let mut restored = engine(ingress, true);
        restored.restore_links(&rx, &tx);
        // Duplicate of an already-snapshotted frame: dropped, and the
        // stale-retransmission rule re-advertises the floor.
        restored.send_ack_through(&t, Peer::Publisher, 2);
        let _ = restored.take_out();
        let out = restored.on_link(&t, link, 1, WireBody::Data(frame(1)));
        assert!(out.is_empty(), "below-floor frame is a duplicate");
        let msgs = restored.take_out();
        assert!(
            msgs.iter().any(|(_, m)| matches!(
                m,
                WireMsg::Link {
                    body: WireBody::AckThrough,
                    seq: 2,
                    ..
                }
            )),
            "floor re-advertised: {msgs:?}"
        );
        // The restored staged frame is due for retransmission.
        std::thread::sleep(Duration::from_millis(12));
        restored.retransmit_due(&t);
        let due = restored.take_out();
        assert!(
            due.iter()
                .any(|(_, m)| matches!(m, WireMsg::Link { seq: 1, body: WireBody::Data(_), .. })),
            "restored tx frame retransmits: {due:?}"
        );
    }

    #[test]
    fn reconnect_replay_runs_once_per_epoch() {
        let t = topo();
        let ingress = t
            .links
            .iter()
            .find(|(f, _)| *f == Peer::Publisher)
            .expect("publisher link")
            .1;
        let Peer::Node(node_idx) = ingress else {
            panic!("ingress is a node");
        };
        let mut publisher = engine(Peer::Publisher, false);
        publisher.send_data(&t, ingress, frame(1));
        publisher.send_data(&t, ingress, frame(2));
        let _ = publisher.take_out();
        publisher.reconnect_replay_to(&t, Proc::Node(node_idx), 1);
        assert_eq!(publisher.take_out().len(), 2, "both unacked frames replay");
        publisher.reconnect_replay_to(&t, Proc::Node(node_idx), 1);
        assert!(publisher.take_out().is_empty(), "same epoch replays nothing");
        publisher.reconnect_replay_to(&t, Proc::Node(node_idx), 2);
        assert_eq!(publisher.take_out().len(), 2, "new epoch replays again");
    }
}
