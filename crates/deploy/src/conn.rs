//! Non-blocking connection machinery: framed streams, partial-write
//! buffering, and redial-with-backoff.
//!
//! The deployment never blocks on the network. Every [`Conn`] wraps a
//! non-blocking `TcpStream`: reads drain whatever the kernel has into a
//! [`FrameBuffer`] (tolerating arbitrarily short reads), writes spill into
//! an outbound buffer whenever the kernel accepts less than a full frame
//! (tolerating short writes), and both are pumped from the owner's poll
//! loop. A codec error quarantines the connection — framing cannot be
//! resynchronized — and the dialing side falls back to [`Dialer`], which
//! retries with capped exponential backoff.

use crate::wire::{encode, CodecError, FrameBuffer, WireMsg};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a connection must be discarded.
#[derive(Debug)]
pub enum ConnError {
    /// The peer closed the stream (or the kernel reported a hard error —
    /// a SIGKILLed peer surfaces here as reset-by-peer).
    Closed(io::Error),
    /// The stream produced undecodable bytes; the connection is
    /// quarantined because framing is unrecoverable.
    Quarantined(CodecError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Closed(e) => write!(f, "connection closed: {e}"),
            ConnError::Quarantined(e) => write!(f, "connection quarantined: {e}"),
        }
    }
}

/// A framed, non-blocking, buffered TCP connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    rx: FrameBuffer,
    out: Vec<u8>,
    out_at: usize,
    /// A close observed while complete messages were still buffered; those
    /// messages are delivered first, the close surfaces on the next poll.
    closing: Option<io::ErrorKind>,
    /// Reads and writes are suppressed until this instant (chaos
    /// injection: a stalled link looks alive but moves no bytes).
    pub stalled_until: Option<Instant>,
}

impl Conn {
    /// Wraps a freshly established stream: non-blocking, Nagle off (the
    /// deployment's frames are latency-sensitive and tiny).
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rx: FrameBuffer::new(),
            out: Vec::new(),
            out_at: 0,
            closing: None,
            stalled_until: None,
        })
    }

    fn stalled(&mut self) -> bool {
        match self.stalled_until {
            Some(t) if Instant::now() < t => true,
            Some(_) => {
                self.stalled_until = None;
                false
            }
            None => false,
        }
    }

    /// Queues one message for transmission (appended to the outbound
    /// buffer; bytes leave via [`poll_write`](Self::poll_write)).
    pub fn queue(&mut self, msg: &WireMsg) {
        encode(msg, &mut self.out);
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn backlog(&self) -> usize {
        self.out.len() - self.out_at
    }

    /// Drains readable bytes and returns every complete message. A close
    /// racing with final messages (a peer that replies and exits — its
    /// data and FIN can land in one poll) delivers those messages first
    /// and surfaces [`ConnError::Closed`] on the next call.
    ///
    /// # Errors
    ///
    /// [`ConnError::Closed`] on EOF or a hard socket error,
    /// [`ConnError::Quarantined`] on a codec failure.
    pub fn poll_read(&mut self) -> Result<Vec<WireMsg>, ConnError> {
        let mut msgs = Vec::new();
        self.poll_read_into(&mut msgs)?;
        Ok(msgs)
    }

    /// Caller-owned-buffer variant of [`poll_read`](Self::poll_read):
    /// appends decoded messages to `msgs` (the hot-path poll loops reuse
    /// one `Vec` across iterations so a quiet poll allocates nothing) and
    /// returns how many were appended.
    ///
    /// # Errors
    ///
    /// Same contract as [`poll_read`](Self::poll_read); messages appended
    /// before a codec failure stay in `msgs`.
    pub fn poll_read_into(&mut self, msgs: &mut Vec<WireMsg>) -> Result<usize, ConnError> {
        if self.stalled() {
            return Ok(0);
        }
        let before = msgs.len();
        let mut chunk = [0u8; 65536];
        while self.closing.is_none() {
            match self.stream.read(&mut chunk) {
                Ok(0) => self.closing = Some(io::ErrorKind::UnexpectedEof),
                Ok(n) => self.rx.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => self.closing = Some(e.kind()),
            }
        }
        loop {
            match self.rx.next() {
                Ok(Some(m)) => msgs.push(m),
                Ok(None) => break,
                Err(e) => return Err(ConnError::Quarantined(e)),
            }
        }
        if msgs.len() == before {
            if let Some(kind) = self.closing {
                return Err(ConnError::Closed(io::Error::new(kind, "peer closed")));
            }
        }
        Ok(msgs.len() - before)
    }

    /// Writes as much of the outbound buffer as the kernel accepts.
    ///
    /// # Errors
    ///
    /// [`ConnError::Closed`] on a hard socket error (e.g. the peer was
    /// SIGKILLed mid-stream).
    pub fn poll_write(&mut self) -> Result<(), ConnError> {
        if self.stalled() || self.out_at == self.out.len() {
            return Ok(());
        }
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => {
                    return Err(ConnError::Closed(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "kernel accepted zero bytes",
                    )))
                }
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ConnError::Closed(e)),
            }
        }
        if self.out_at == self.out.len() {
            self.out.clear();
            self.out_at = 0;
        } else if self.out_at > 65536 {
            self.out.drain(..self.out_at);
            self.out_at = 0;
        }
        Ok(())
    }
}

/// Redials a peer with capped exponential backoff. Created whenever the
/// dialing side loses (or has yet to make) its connection; polled from the
/// owner's loop until it yields a stream.
#[derive(Debug)]
pub struct Dialer {
    addr: SocketAddr,
    next_attempt: Instant,
    backoff: Duration,
    base: Duration,
    cap: Duration,
}

impl Dialer {
    /// A dialer whose first attempt is due immediately. `base` is the
    /// delay after the first failure; it doubles per failure up to `cap`.
    pub fn new(addr: SocketAddr, base: Duration, cap: Duration) -> Self {
        Dialer {
            addr,
            next_attempt: Instant::now(),
            backoff: base.max(Duration::from_millis(1)),
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
        }
    }

    /// Attempts the connection if one is due. Returns the stream on
    /// success; on failure schedules the next attempt and returns `None`.
    pub fn poll(&mut self) -> Option<TcpStream> {
        if Instant::now() < self.next_attempt {
            return None;
        }
        // A refused localhost connect fails immediately; the timeout only
        // bounds pathological cases so the poll loop cannot wedge.
        match TcpStream::connect_timeout(&self.addr, Duration::from_millis(50)) {
            Ok(stream) => {
                self.backoff = self.base;
                Some(stream)
            }
            Err(_) => {
                self.next_attempt = Instant::now() + self.backoff;
                self.backoff = (self.backoff * 2).min(self.cap);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireBody;
    use seqnet_core::proto::Peer;

    fn pair() -> (Conn, Conn) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (Conn::new(a).expect("conn a"), Conn::new(b).expect("conn b"))
    }

    fn drain(conn: &mut Conn, want: usize) -> Vec<WireMsg> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(conn.poll_read().expect("readable"));
            std::thread::sleep(Duration::from_micros(200));
        }
        got
    }

    #[test]
    fn framed_messages_survive_the_socket() {
        let (mut a, mut b) = pair();
        let msgs = vec![
            WireMsg::Hello {
                party: Peer::Node(1),
                incarnation: 0,
            },
            WireMsg::Link {
                link: 3,
                seq: 1,
                body: WireBody::Heartbeat,
            },
            WireMsg::Shutdown,
        ];
        for m in &msgs {
            a.queue(m);
        }
        while a.backlog() > 0 {
            a.poll_write().expect("write");
        }
        assert_eq!(drain(&mut b, msgs.len()), msgs);
    }

    #[test]
    fn garbled_stream_quarantines_the_connection() {
        let (a, mut b) = pair();
        let mut raw = a;
        // Bypass the codec: push a hostile length prefix straight into the
        // outbound buffer.
        raw.out.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.out.extend_from_slice(&[0xAB; 32]);
        while raw.backlog() > 0 {
            raw.poll_write().expect("write");
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match b.poll_read() {
                Err(ConnError::Quarantined(_)) => break,
                Err(other) => panic!("expected quarantine, got {other}"),
                Ok(_) if Instant::now() > deadline => panic!("no quarantine"),
                Ok(_) => std::thread::sleep(Duration::from_micros(200)),
            }
        }
    }

    #[test]
    fn final_messages_survive_a_racing_close() {
        // A peer that replies and exits: its data and FIN can arrive in
        // the same poll. The reply must not be lost to the close error.
        let (mut a, mut b) = pair();
        a.queue(&WireMsg::Shutdown);
        while a.backlog() > 0 {
            a.poll_write().expect("write");
        }
        drop(a);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        let closed = loop {
            match b.poll_read() {
                Ok(msgs) => got.extend(msgs),
                Err(ConnError::Closed(_)) => break true,
                Err(other) => panic!("unexpected: {other}"),
            }
            assert!(Instant::now() < deadline, "never saw the close");
            std::thread::sleep(Duration::from_micros(200));
        };
        assert!(closed);
        assert_eq!(got, vec![WireMsg::Shutdown], "reply arrived before close");
    }

    #[test]
    fn dialer_backs_off_and_eventually_connects() {
        // A port with nothing listening: grab one, note it, release it.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = probe.local_addr().expect("addr");
        drop(probe);
        let mut dialer = Dialer::new(addr, Duration::from_millis(2), Duration::from_millis(20));
        let mut failures = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while failures < 3 && Instant::now() < deadline {
            if dialer.poll().is_none() {
                failures += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(failures >= 3, "refused connects should fail");
        let listener = crate::sys::listen_reuseaddr(addr.port()).expect("rebind");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(stream) = dialer.poll() {
                drop(stream);
                break;
            }
            assert!(Instant::now() < deadline, "dialer never connected");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(listener);
    }
}
