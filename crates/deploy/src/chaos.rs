//! Process-level fault schedules — the deployment analogue of the
//! simulator's [`FaultPlan`].
//!
//! Where a `FaultPlan` crash window flips a bit in the simulator and kills
//! a thread in the threaded runtime, a [`ChaosPlan`] event acts on real
//! operating-system state: `Kill` SIGKILLs a child process and respawns
//! it, `DropConn` severs the coordinator's TCP connection to a node
//! mid-stream, and `StallLink` freezes that connection (alive but moving
//! no bytes) for a window. Plans are deterministic values: built
//! explicitly, derived from a `FaultPlan` (so the three-way oracle can
//! replay one schedule on all drivers), or generated from a seed.
//!
//! [`FaultPlan`]: seqnet_runtime::FaultPlan

use seqnet_runtime::FaultPlan;
use std::time::Duration;

/// What a chaos event does to its target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// SIGKILL the node's process at the event time and respawn it
    /// `down_for` later. The respawned incarnation restores its disk
    /// snapshot and replays from upstream retransmission buffers.
    Kill {
        /// Outage length before the respawn.
        down_for: Duration,
    },
    /// Close the coordinator↔node TCP connection mid-stream. Both sides
    /// reconnect with capped backoff and replay unacknowledged frames.
    DropConn,
    /// Freeze the coordinator↔node connection for the window: the socket
    /// stays open but neither side's bytes move, exercising the
    /// retransmission and backoff machinery without a connection error.
    StallLink {
        /// How long the connection stays frozen.
        stall_for: Duration,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the fault fires, relative to plan start.
    pub at: Duration,
    /// The sequencing node it targets.
    pub node: usize,
    /// What happens.
    pub kind: ChaosKind,
}

/// A deterministic schedule of process-level faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kill/respawn cycle: SIGKILL `node` at `down_at`, respawn at
    /// `up_at`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn kill(mut self, node: usize, down_at: Duration, up_at: Duration) -> Self {
        assert!(down_at < up_at, "kill window must have positive length");
        self.events.push(ChaosEvent {
            at: down_at,
            node,
            kind: ChaosKind::Kill {
                down_for: up_at - down_at,
            },
        });
        self
    }

    /// Adds a mid-stream connection drop at `at`.
    pub fn drop_conn(mut self, node: usize, at: Duration) -> Self {
        self.events.push(ChaosEvent {
            at,
            node,
            kind: ChaosKind::DropConn,
        });
        self
    }

    /// Adds a connection stall of `stall_for` starting at `at`.
    pub fn stall_link(mut self, node: usize, at: Duration, stall_for: Duration) -> Self {
        self.events.push(ChaosEvent {
            at,
            node,
            kind: ChaosKind::StallLink { stall_for },
        });
        self
    }

    /// The events in firing order (stable for equal times).
    pub fn events(&self) -> Vec<ChaosEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maps a simulator [`FaultPlan`]'s crash windows onto real process
    /// kills, 1 simulated microsecond = 1 wall microsecond — the bridge
    /// that lets one fault schedule drive the simulator (flag flip), the
    /// threaded runtime (thread kill), and the socket cluster (SIGKILL)
    /// in the three-way differential oracle. Partition and loss windows
    /// have no process-level analogue and are skipped.
    pub fn from_fault_plan(plan: &FaultPlan) -> Self {
        let mut out = ChaosPlan::new();
        for w in plan.crash_windows() {
            out = out.kill(
                w.node,
                Duration::from_micros(w.down_at.as_micros()),
                Duration::from_micros(w.up_at.as_micros()),
            );
        }
        out
    }

    /// A seed-derived plan over `nodes` sequencing nodes within
    /// `horizon`: one kill/respawn cycle plus one connection drop and one
    /// stall, targets and times drawn from a splitmix64 stream. Equal
    /// seeds give equal plans.
    pub fn seeded(seed: u64, nodes: usize, horizon: Duration) -> Self {
        use seqnet_core::proto::testing::splitmix64;
        if nodes == 0 {
            return ChaosPlan::new();
        }
        let mut state = seed ^ 0xC4A0_5EED;
        let span = horizon.as_micros().max(10) as u64;
        let mut draw = |lo: u64, hi: u64| lo + splitmix64(&mut state) % (hi - lo).max(1);
        let kill_node = draw(0, nodes as u64) as usize;
        let down_at = draw(span / 10, span / 2);
        let up_at = down_at + draw(span / 10, span / 4).max(1);
        let drop_node = draw(0, nodes as u64) as usize;
        let drop_at = draw(span / 10, (span * 3) / 4);
        let stall_node = draw(0, nodes as u64) as usize;
        let stall_at = draw(span / 10, (span * 3) / 4);
        let stall_for = draw(span / 20, span / 5).max(1);
        ChaosPlan::new()
            .kill(
                kill_node,
                Duration::from_micros(down_at),
                Duration::from_micros(up_at),
            )
            .drop_conn(drop_node, Duration::from_micros(drop_at))
            .stall_link(
                stall_node,
                Duration::from_micros(stall_at),
                Duration::from_micros(stall_for),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_sim::SimTime;

    #[test]
    fn events_come_back_in_firing_order() {
        let plan = ChaosPlan::new()
            .drop_conn(1, Duration::from_millis(30))
            .kill(0, Duration::from_millis(10), Duration::from_millis(20))
            .stall_link(2, Duration::from_millis(5), Duration::from_millis(3));
        let at: Vec<Duration> = plan.events().iter().map(|e| e.at).collect();
        assert!(at.windows(2).all(|w| w[0] <= w[1]), "sorted: {at:?}");
    }

    #[test]
    fn fault_plan_crash_windows_map_to_kills() {
        let fp = seqnet_runtime::FaultPlan::new().crash(
            1,
            SimTime::from_micros(5_000),
            SimTime::from_micros(40_000),
        );
        let plan = ChaosPlan::from_fault_plan(&fp);
        let events = plan.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].node, 1);
        assert_eq!(events[0].at, Duration::from_micros(5_000));
        assert_eq!(
            events[0].kind,
            ChaosKind::Kill {
                down_for: Duration::from_micros(35_000)
            }
        );
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = ChaosPlan::seeded(7, 3, Duration::from_secs(2));
        let b = ChaosPlan::seeded(7, 3, Duration::from_secs(2));
        assert_eq!(a, b);
        let c = ChaosPlan::seeded(8, 3, Duration::from_secs(2));
        assert_ne!(a, c, "different seeds draw different plans");
        for e in a.events() {
            assert!(e.node < 3);
            assert!(e.at <= Duration::from_secs(2));
        }
        assert!(ChaosPlan::seeded(1, 0, Duration::from_secs(1)).is_empty());
    }
}
