//! The `cluster-node` child entry point.
//!
//! Any binary that may host sequencing-node processes calls
//! [`run_if_child`] first thing in `main`. When the coordinator spawned
//! this process (`argv[1] == "cluster-node"`), the call runs the node to
//! completion and exits; otherwise it returns immediately and `main`
//! proceeds as usual. This is how one executable serves as CLI,
//! benchmark, and cluster node at once — the coordinator simply respawns
//! its own binary.

use crate::node::run_node;
use crate::spec::ClusterSpec;
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("cluster-node: {msg}");
    std::process::exit(2);
}

/// Dispatches to the node main loop when this process was spawned as
/// `<bin> cluster-node --spec <path> --node <idx> --incarnation <k>`.
/// Exits the process when it was; returns otherwise.
pub fn run_if_child() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some("cluster-node") {
        return;
    }
    let mut spec_path: Option<PathBuf> = None;
    let mut node: Option<usize> = None;
    let mut incarnation: u64 = 0;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => die(&format!("{what} requires a value")),
            }
        };
        match flag.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(value("--spec"))),
            "--node" => match value("--node").parse() {
                Ok(v) => node = Some(v),
                Err(_) => die("--node must be an index"),
            },
            "--incarnation" => match value("--incarnation").parse() {
                Ok(v) => incarnation = v,
                Err(_) => die("--incarnation must be a number"),
            },
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let Some(spec_path) = spec_path else {
        die("--spec is required");
    };
    let Some(node) = node else {
        die("--node is required");
    };
    let spec = match ClusterSpec::load(&spec_path) {
        Ok(spec) => spec,
        Err(e) => die(&e),
    };
    match run_node(&spec, node, incarnation) {
        Ok(()) => std::process::exit(0),
        Err(e) => die(&format!("node {node}: {e}")),
    }
}
