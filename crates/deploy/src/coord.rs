//! The coordinator: publisher front-end, in-process subscriber hosts, and
//! the chaos controller for a multi-process cluster.
//!
//! [`DeployCluster::start`] reserves one localhost port per sequencing
//! node, writes the spec file, spawns one real OS process per node, and
//! dials each of them. The coordinator terminates every
//! publisher-and-host end of the link table in a single [`WireEngine`]
//! (immediate acks — the coordinator never crashes) and runs the
//! unchanged [`ReceiverCore`] per subscriber host, so delivery order is
//! produced by exactly the protocol code the simulator and the threaded
//! runtime execute. Chaos is real: [`DeployCluster::kill_node`] SIGKILLs
//! the child process, [`DeployCluster::drop_conn`] severs a live TCP
//! connection, [`DeployCluster::stall_link`] freezes one without closing
//! it.

use crate::chaos::{ChaosKind, ChaosPlan};
use crate::conn::{Conn, Dialer};
use crate::engine::WireEngine;
use crate::node::unix_micros;
use crate::spec::ClusterSpec;
use crate::topo::{Proc, Topology};
use crate::wire::{NodeTelemetry, NodeWireStats, WireMsg};
use seqnet_core::proto::trace::{Actor, EventKind, TraceEvent, TraceSink};
use seqnet_core::proto::{Command, CommandBuf, Event, Frame, Peer, ReceiverCore, RecoveryStats};
use seqnet_core::{Message, MessageId};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_obs::{prom, Recorder, Registry};
use seqnet_runtime::{ClusterConfig, RuntimeError};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Run-directory disambiguator for clusters started by one process.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How often the coordinator polls every node process for a live
/// [`NodeTelemetry`] snapshot over the existing control connections.
const TELEMETRY_INTERVAL: Duration = Duration::from_millis(200);

/// Aggregated statistics for a socket deployment, shaped like the
/// threaded runtime's `RuntimeStats` with deployment extras.
#[derive(Debug, Clone, Default)]
pub struct DeployStats {
    /// Data frames put on any wire (coordinator + all node processes,
    /// retransmissions included).
    pub frames_sent: u64,
    /// Frames discarded by loss injectors before the transport.
    pub frames_dropped: u64,
    /// Retransmissions performed by link senders.
    pub retransmissions: u64,
    /// Duplicate frames discarded by link receivers.
    pub duplicates: u64,
    /// Peer-failure detections across node processes.
    pub heartbeat_misses: u64,
    /// Crash-recovery counters: `crashes` counts real SIGKILLs,
    /// `frames_replayed` and `recovery_micros` come from the respawned
    /// processes' own measurements.
    pub recovery: RecoveryStats,
    /// Disk checkpoints written across node processes.
    pub snapshots: u64,
    /// Frames-per-wire-write histogram, merged across processes.
    pub batch_sizes: BTreeMap<usize, u64>,
}

/// A running socket-based multi-process deployment.
///
/// Mirrors the threaded [`seqnet_runtime::Cluster`] API — `publish`,
/// `next_delivery`, `wait_for_deliveries`, crash injection — with real
/// processes behind it.
#[derive(Debug)]
pub struct DeployCluster {
    spec: ClusterSpec,
    topo: Topology,
    binary: PathBuf,
    children: HashMap<usize, Child>,
    incarnations: Vec<u64>,
    conns: HashMap<usize, Conn>,
    dialers: HashMap<usize, Dialer>,
    epochs: HashMap<usize, u64>,
    engine: WireEngine,
    receivers: HashMap<NodeId, ReceiverCore>,
    cmdbuf: CommandBuf,
    deliveries: VecDeque<(NodeId, Message)>,
    node_stats: HashMap<usize, NodeWireStats>,
    next_id: u64,
    crashes: u64,
    shut_down: bool,
    /// A staged online reconfiguration (see
    /// [`DeployCluster::begin_reconfigure`]): publishes accepted while it
    /// is pending park here until the current epoch drains.
    pending: Option<PendingReconfig>,
    /// Total deliveries owed by everything published so far; the handoff
    /// drains until `deliveries_seen` catches up.
    expected_deliveries: usize,
    /// Deliveries produced by the receiver cores so far, across epochs.
    deliveries_seen: usize,
    /// Counters accumulated by earlier epochs' deployments, folded into
    /// [`DeployCluster::stats`].
    prior_stats: DeployStats,
    /// Coordinator-side trace recorder when `config.trace` is set:
    /// `Publish` events plus the receiver cores' `Arrive`/`Buffer`/
    /// `Deliver` lifecycle, stamped with UNIX-epoch microseconds so they
    /// join the node processes' JSONL logs on one timebase.
    trace: Option<Recorder>,
    /// Trace events carried over from earlier epochs' coordinators.
    prior_trace: Vec<TraceEvent>,
    /// Latest live telemetry snapshot received from each node process.
    telemetry: HashMap<usize, NodeTelemetry>,
    /// When the last `TelemetryRequest` round was broadcast.
    last_telemetry_poll: Instant,
    /// Publishes accepted in steady state.
    publishes_steady: u64,
    /// Publishes parked behind a staged reconfiguration.
    publishes_parked: u64,
}

/// A reconfiguration staged by [`DeployCluster::begin_reconfigure`]: the
/// next membership plus every publish parked behind the handoff.
#[derive(Debug)]
struct PendingReconfig {
    membership: Membership,
    parked: Vec<(MessageId, NodeId, GroupId, bytes::Bytes)>,
}

fn node_addr(spec: &ClusterSpec, node: usize) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], spec.ports[node]))
}

/// Picks the binary that hosts the `cluster-node` entry point: an explicit
/// override, the `SEQNET_BIN` environment variable, or this executable.
fn resolve_binary(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(bin) = explicit {
        return Ok(bin);
    }
    if let Ok(bin) = std::env::var("SEQNET_BIN") {
        return Ok(PathBuf::from(bin));
    }
    std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))
}

impl DeployCluster {
    /// Starts a cluster whose node processes run the `cluster-node` entry
    /// point of `SEQNET_BIN` (or, absent that, of the current executable —
    /// any binary whose `main` calls [`crate::run_if_child`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the failure: invalid config, port
    /// reservation, spec write, or child spawn.
    pub fn start(membership: &Membership, config: ClusterConfig) -> Result<Self, String> {
        Self::start_with_binary(membership, config, None)
    }

    /// [`start`](Self::start) with an explicit child binary.
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start).
    pub fn start_with_binary(
        membership: &Membership,
        config: ClusterConfig,
        binary: Option<PathBuf>,
    ) -> Result<Self, String> {
        Self::start_inner(membership, config, binary, 0)
    }

    /// [`start_with_binary`](Self::start_with_binary) with an explicit
    /// configuration epoch — 0 for a fresh deployment, N+1 when
    /// [`complete_reconfigure`](Self::complete_reconfigure) rebuilds the
    /// process tree for the next configuration (each epoch gets a fresh
    /// run directory, so stale-epoch snapshots cannot be restored).
    fn start_inner(
        membership: &Membership,
        config: ClusterConfig,
        binary: Option<PathBuf>,
        config_epoch: u64,
    ) -> Result<Self, String> {
        config.validate()?;
        let binary = resolve_binary(binary)?;
        let topo = Topology::derive(membership, config.seed);

        let dir = std::env::temp_dir().join(format!(
            "seqnet-cluster-{}-{}",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

        // Reserve one port per node: bind :0, note the port, release it.
        // Children rebind with SO_REUSEADDR plus a retry loop, absorbing
        // both this race and post-SIGKILL TIME_WAIT.
        let mut ports = Vec::with_capacity(topo.num_nodes);
        for _ in 0..topo.num_nodes {
            let probe = std::net::TcpListener::bind("127.0.0.1:0")
                .map_err(|e| format!("reserve port: {e}"))?;
            ports.push(
                probe
                    .local_addr()
                    .map_err(|e| format!("reserve port: {e}"))?
                    .port(),
            );
        }

        let spec = ClusterSpec {
            config: config.clone(),
            membership: membership.clone(),
            epoch: config_epoch,
            ports,
            dir: dir.clone(),
        };
        let spec_path = dir.join("spec.txt");
        std::fs::write(&spec_path, spec.encode())
            .map_err(|e| format!("write {}: {e}", spec_path.display()))?;

        let mut cluster = DeployCluster {
            engine: WireEngine::new(
                Peer::Publisher,
                config.seed ^ 0x517c_c1b7_2722_0a95,
                false,
                config.retransmit_timeout,
                config.backoff_cap,
                config.coalesce,
                config.drop_probability,
            ),
            receivers: membership
                .nodes()
                .map(|h| (h, ReceiverCore::new(h, membership, &topo.graph)))
                .collect(),
            incarnations: vec![0; topo.num_nodes],
            children: HashMap::new(),
            conns: HashMap::new(),
            dialers: HashMap::new(),
            epochs: HashMap::new(),
            cmdbuf: CommandBuf::new(),
            deliveries: VecDeque::new(),
            node_stats: HashMap::new(),
            next_id: 0,
            crashes: 0,
            shut_down: false,
            pending: None,
            expected_deliveries: 0,
            deliveries_seen: 0,
            prior_stats: DeployStats::default(),
            trace: config.trace.then(Recorder::new),
            prior_trace: Vec::new(),
            telemetry: HashMap::new(),
            last_telemetry_poll: Instant::now(),
            publishes_steady: 0,
            publishes_parked: 0,
            binary,
            spec,
            topo,
        };
        for idx in 0..cluster.topo.num_nodes {
            cluster.spawn_child(idx)?;
            cluster.dialers.insert(
                idx,
                Dialer::new(
                    node_addr(&cluster.spec, idx),
                    Duration::from_millis(5),
                    cluster.spec.config.backoff_cap,
                ),
            );
        }
        Ok(cluster)
    }

    fn spawn_child(&mut self, idx: usize) -> Result<(), String> {
        let child = ProcessCommand::new(&self.binary)
            .arg("cluster-node")
            .arg("--spec")
            .arg(self.spec.dir.join("spec.txt"))
            .arg("--node")
            .arg(idx.to_string())
            .arg("--incarnation")
            .arg(self.incarnations[idx].to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn node {idx} ({}): {e}", self.binary.display()))?;
        self.children.insert(idx, child);
        Ok(())
    }

    fn redial(&mut self, idx: usize) {
        self.dialers.entry(idx).or_insert_with(|| {
            Dialer::new(
                node_addr(&self.spec, idx),
                Duration::from_millis(5),
                self.spec.config.backoff_cap,
            )
        });
    }

    /// One poll round: dial, read, process, retransmit, write. Called
    /// from every front-end entry point; the coordinator has no thread of
    /// its own.
    fn pump(&mut self) {
        // Establish due connections.
        let due: Vec<usize> = self.dialers.keys().copied().collect();
        for idx in due {
            let Some(stream) = self.dialers.get_mut(&idx).and_then(Dialer::poll) else {
                continue;
            };
            let Ok(mut conn) = Conn::new(stream) else {
                continue;
            };
            conn.queue(&WireMsg::Hello {
                party: Peer::Publisher,
                incarnation: 0,
            });
            // Prime the live-telemetry plane right away — a short-lived
            // run would otherwise end before the first periodic poll.
            conn.queue(&WireMsg::TelemetryRequest);
            self.dialers.remove(&idx);
            self.conns.insert(idx, conn);
            let epoch = self.epochs.entry(idx).or_insert(0);
            *epoch += 1;
            let epoch = *epoch;
            self.engine
                .reconnect_replay_to(&self.topo, Proc::Node(idx), epoch);
        }

        // Drain every connection.
        let ids: Vec<usize> = self.conns.keys().copied().collect();
        for idx in ids {
            let msgs = match self.conns.get_mut(&idx).expect("conn exists").poll_read() {
                Ok(msgs) => msgs,
                Err(_) => {
                    self.conns.remove(&idx);
                    self.redial(idx);
                    continue;
                }
            };
            for msg in msgs {
                match msg {
                    WireMsg::Hello { .. } | WireMsg::Shutdown | WireMsg::TelemetryRequest => {}
                    WireMsg::Stats(stats) => {
                        self.node_stats.insert(idx, stats);
                    }
                    WireMsg::Telemetry(telemetry) => {
                        self.telemetry.insert(idx, telemetry);
                    }
                    WireMsg::Link { link, seq, body } => {
                        let frames = self.engine.on_link(&self.topo, link, seq, body);
                        if frames.is_empty() {
                            continue;
                        }
                        let Peer::Host(host) = self.topo.links[link as usize].1 else {
                            // In-order data can only arrive on node→host
                            // links; anything else has no receiving core.
                            continue;
                        };
                        let receiver = self.receivers.get_mut(&host).expect("host receiver");
                        let events = frames
                            .into_iter()
                            .map(|data| Event::FrameArrived { frame: data });
                        self.cmdbuf.clear();
                        if let Some(rec) = &mut self.trace {
                            rec.now(unix_micros());
                            receiver.offer_batch_traced(events, rec, &mut self.cmdbuf);
                        } else {
                            receiver.offer_batch(events, &mut self.cmdbuf);
                        }
                        for cmd in self.cmdbuf.drain() {
                            match cmd {
                                Command::Deliver { host, msg } => {
                                    self.deliveries_seen += 1;
                                    self.deliveries.push_back((host, msg));
                                }
                                other => unreachable!("receivers only deliver: {other:?}"),
                            }
                        }
                    }
                }
            }
        }

        // Periodically ask every connected node for a live counter
        // snapshot; replies land in `telemetry` on a later pump round.
        if self.last_telemetry_poll.elapsed() >= TELEMETRY_INTERVAL {
            self.last_telemetry_poll = Instant::now();
            for conn in self.conns.values_mut() {
                conn.queue(&WireMsg::TelemetryRequest);
            }
        }

        self.engine.retransmit_due(&self.topo);
        for (to, msg) in self.engine.take_out() {
            let Proc::Node(idx) = Topology::owner(to) else {
                unreachable!("coordinator transmissions target node processes");
            };
            if let Some(conn) = self.conns.get_mut(&idx) {
                conn.queue(&msg);
            }
            // No connection: drop. The link layer's retransmission
            // schedule and reconnect replay recover the frame.
        }
        let ids: Vec<usize> = self.conns.keys().copied().collect();
        for idx in ids {
            if self
                .conns
                .get_mut(&idx)
                .expect("conn exists")
                .poll_write()
                .is_err()
            {
                self.conns.remove(&idx);
                self.redial(idx);
            }
        }
    }

    /// Publishes a message to `group`'s ingress sequencing node over the
    /// reliable publisher link, exactly as the threaded runtime does.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownGroup`] for groups with no members.
    /// While a reconfiguration is staged (between
    /// [`begin_reconfigure`](Self::begin_reconfigure) and
    /// [`complete_reconfigure`](Self::complete_reconfigure)) the publish
    /// is validated against the *next* membership and parked until the
    /// current epoch drains, exactly like the threaded runtime.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<bytes::Bytes>,
    ) -> Result<MessageId, RuntimeError> {
        let payload = payload.into();
        if let Some(pending) = &mut self.pending {
            if pending.membership.group_size(group) == 0 {
                return Err(RuntimeError::UnknownGroup(group));
            }
            let id = MessageId(self.next_id);
            self.next_id += 1;
            self.publishes_parked += 1;
            pending.parked.push((id, sender, group, payload));
            return Ok(id);
        }
        let id = MessageId(self.next_id);
        self.next_id += 1;
        self.publishes_steady += 1;
        self.publish_now(id, sender, group, payload)?;
        Ok(id)
    }

    /// Injects an already-identified message into the running deployment:
    /// the body of [`publish`](Self::publish), also used to replay parked
    /// publishes into the next epoch after a handoff.
    fn publish_now(
        &mut self,
        id: MessageId,
        sender: NodeId,
        group: GroupId,
        payload: bytes::Bytes,
    ) -> Result<(), RuntimeError> {
        let Some(ingress) = self.topo.graph.ingress(group) else {
            return Err(RuntimeError::UnknownGroup(group));
        };
        self.expected_deliveries += self.spec.membership.group_size(group);
        let msg = Message::new(id, sender, group, payload);
        let node = self.topo.atom_node[&ingress];
        if let Some(rec) = &mut self.trace {
            rec.now(unix_micros());
            rec.record(TraceEvent {
                msg: Some(id.0),
                group: Some(u64::from(group.0)),
                detail: Some(u64::from(sender.0)),
                ..TraceEvent::new(EventKind::Publish, Actor::Publisher)
            });
        }
        self.engine.send_data(
            &self.topo,
            Peer::Node(node),
            Frame {
                msg,
                target_atom: Some(ingress),
            },
        );
        self.pump();
        Ok(())
    }

    /// The configuration epoch this deployment is currently running.
    pub fn epoch(&self) -> u64 {
        self.spec.epoch
    }

    /// Whether a reconfiguration is staged but has not activated yet.
    pub fn reconfig_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Publishes parked behind the staged reconfiguration.
    pub fn parked_publishes(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.parked.len())
    }

    /// Stages an online reconfiguration to `membership` without stopping
    /// traffic; the socket twin of the threaded runtime's
    /// `begin_reconfigure`. Returns the epoch that will activate.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ReconfigPending`] if one is already staged.
    pub fn begin_reconfigure(&mut self, membership: &Membership) -> Result<u64, RuntimeError> {
        if self.pending.is_some() {
            return Err(RuntimeError::ReconfigPending {
                next_epoch: self.spec.epoch + 1,
            });
        }
        self.pending = Some(PendingReconfig {
            membership: membership.clone(),
            parked: Vec::new(),
        });
        Ok(self.spec.epoch + 1)
    }

    /// Completes a staged reconfiguration: drains every delivery the
    /// current epoch still owes, shuts the old process tree down, starts a
    /// fresh one (new run directory, epoch N+1 in its spec), and injects
    /// the parked publishes in their accepted order. Already-drained
    /// deliveries stay queued for [`next_delivery`](Self::next_delivery).
    /// Returns the epoch that just activated.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure. A drain timeout leaves the
    /// reconfiguration pending, so the caller can respawn a crashed node
    /// and retry.
    pub fn complete_reconfigure(&mut self, timeout: Duration) -> Result<u64, String> {
        if self.pending.is_none() {
            return Err("no reconfiguration pending".into());
        }
        let deadline = Instant::now() + timeout;
        while self.deliveries_seen < self.expected_deliveries {
            if Instant::now() >= deadline {
                return Err(format!(
                    "handoff drain timed out with {}/{} deliveries",
                    self.deliveries_seen, self.expected_deliveries
                ));
            }
            self.pump();
            std::thread::sleep(Duration::from_micros(200));
        }
        let pending = self.pending.take().expect("pending reconfiguration checked");
        let next_epoch = self.spec.epoch + 1;
        let carried = std::mem::take(&mut self.deliveries);
        let prior_trace = self.trace_events();
        let prior = self.shutdown();

        let mut next = Self::start_inner(
            &pending.membership,
            self.spec.config.clone(),
            Some(self.binary.clone()),
            next_epoch,
        )?;
        next.next_id = self.next_id;
        next.expected_deliveries = self.expected_deliveries;
        next.deliveries_seen = self.deliveries_seen;
        next.deliveries = carried;
        next.prior_stats = prior;
        next.prior_trace = prior_trace;
        next.publishes_steady = self.publishes_steady;
        next.publishes_parked = self.publishes_parked;
        if let Some(rec) = &mut next.trace {
            rec.now(unix_micros());
            rec.record(TraceEvent {
                detail: Some(next_epoch),
                ..TraceEvent::new(EventKind::EpochAdvance, Actor::Publisher)
            });
        }
        for (id, sender, group, payload) in pending.parked {
            next.publish_now(id, sender, group, payload)
                .map_err(|e| format!("inject parked publish: {e}"))?;
        }
        *self = next;
        Ok(next_epoch)
    }

    /// Receives the next delivery from any host within `timeout`, pumping
    /// the network while waiting.
    pub fn next_delivery(&mut self, timeout: Duration) -> Option<(NodeId, Message)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(d) = self.deliveries.pop_front() {
                return Some(d);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.pump();
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Collects exactly `expected` deliveries (across all hosts), grouped
    /// by host in delivery order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] if they do not all arrive in time.
    pub fn wait_for_deliveries(
        &mut self,
        expected: usize,
        timeout: Duration,
    ) -> Result<BTreeMap<NodeId, Vec<Message>>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut out: BTreeMap<NodeId, Vec<Message>> = BTreeMap::new();
        let mut received = 0usize;
        while received < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RuntimeError::Timeout { expected, received });
            }
            if let Some((host, msg)) = self.next_delivery(remaining.min(Duration::from_millis(5)))
            {
                out.entry(host).or_default().push(msg);
                received += 1;
            }
        }
        Ok(out)
    }

    /// SIGKILLs sequencing node `node` — a real `kill -9`, no shutdown
    /// handshake; everything volatile in that process is gone. Returns
    /// `true` if a running process was killed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid sequencing-node index.
    pub fn kill_node(&mut self, node: usize) -> bool {
        assert!(node < self.topo.num_nodes, "no sequencing node {node}");
        let Some(mut child) = self.children.remove(&node) else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        self.crashes += 1;
        // Our side of the connection dies with the peer; close it now and
        // start redialing for the respawn.
        self.conns.remove(&node);
        self.redial(node);
        true
    }

    /// Respawns a killed node with a bumped incarnation; it restores its
    /// disk snapshot and replays the rest from upstream. Returns `true`
    /// if a respawn happened, `false` if the node was already running.
    ///
    /// # Errors
    ///
    /// Returns the spawn failure.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid sequencing-node index.
    pub fn respawn_node(&mut self, node: usize) -> Result<bool, String> {
        assert!(node < self.topo.num_nodes, "no sequencing node {node}");
        if self.children.contains_key(&node) {
            return Ok(false);
        }
        self.incarnations[node] += 1;
        self.spawn_child(node)?;
        self.redial(node);
        Ok(true)
    }

    /// Severs the coordinator's TCP connection to `node` mid-stream. Both
    /// sides reconnect (capped backoff) and replay unacknowledged frames.
    pub fn drop_conn(&mut self, node: usize) {
        self.conns.remove(&node);
        self.redial(node);
    }

    /// Freezes the coordinator↔`node` connection for `window`: the socket
    /// stays open, no bytes move in either direction on our side.
    pub fn stall_link(&mut self, node: usize, window: Duration) {
        if let Some(conn) = self.conns.get_mut(&node) {
            conn.stalled_until = Some(Instant::now() + window);
        }
    }

    /// Replays a [`ChaosPlan`] against the running cluster, mapping plan
    /// time 1:1 onto the wall clock and pumping the network between
    /// events. Kills respawn automatically at the end of their windows.
    ///
    /// # Errors
    ///
    /// Returns the first respawn failure.
    pub fn run_chaos_plan(&mut self, plan: &ChaosPlan) -> Result<(), String> {
        enum Action {
            Down,
            Up,
            Drop,
            Stall(Duration),
        }
        let mut timeline: Vec<(Duration, usize, Action)> = Vec::new();
        for event in plan.events() {
            if event.node >= self.topo.num_nodes {
                continue;
            }
            match event.kind {
                ChaosKind::Kill { down_for } => {
                    timeline.push((event.at, event.node, Action::Down));
                    timeline.push((event.at + down_for, event.node, Action::Up));
                }
                ChaosKind::DropConn => timeline.push((event.at, event.node, Action::Drop)),
                ChaosKind::StallLink { stall_for } => {
                    timeline.push((event.at, event.node, Action::Stall(stall_for)));
                }
            }
        }
        timeline.sort_by_key(|&(at, node, _)| (at, node));
        let t0 = Instant::now();
        for (at, node, action) in timeline {
            let target = t0 + at;
            loop {
                self.pump();
                let now = Instant::now();
                if now >= target {
                    break;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(1)));
            }
            match action {
                Action::Down => {
                    self.kill_node(node);
                }
                Action::Up => {
                    self.respawn_node(node)?;
                }
                Action::Drop => self.drop_conn(node),
                Action::Stall(window) => self.stall_link(node, window),
            }
        }
        Ok(())
    }

    /// The run directory (spec, snapshots, per-node obs JSONL traces).
    pub fn dir(&self) -> &std::path::Path {
        &self.spec.dir
    }

    /// Number of sequencing-node processes.
    pub fn num_sequencing_nodes(&self) -> usize {
        self.topo.num_nodes
    }

    /// Stops every node process — a `Shutdown` frame each, stats replies
    /// collected with a deadline, stragglers SIGKILLed — and returns the
    /// aggregated statistics. Safe to call twice.
    pub fn shutdown(&mut self) -> DeployStats {
        if !self.shut_down {
            self.shut_down = true;
            let running: Vec<usize> = self.children.keys().copied().collect();
            for &idx in &running {
                if let Some(conn) = self.conns.get_mut(&idx) {
                    conn.queue(&WireMsg::Shutdown);
                }
            }
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline
                && running.iter().any(|idx| !self.node_stats.contains_key(idx))
            {
                self.pump();
                std::thread::sleep(Duration::from_micros(500));
            }
            for (_, mut child) in self.children.drain() {
                let _ = child.kill();
                let _ = child.wait();
            }
            self.conns.clear();
            self.dialers.clear();
            // Persist the coordinator's side of the trace next to the
            // node logs, so span reconstruction gets the Publish and
            // Arrive/Buffer/Deliver events only this process saw.
            if self.trace.is_some() || !self.prior_trace.is_empty() {
                let mut out = String::new();
                for event in self.trace_events() {
                    out.push_str(&seqnet_obs::jsonl::to_jsonl(&event));
                    out.push('\n');
                }
                let _ = std::fs::write(self.spec.dir.join("coord.obs.jsonl"), out);
            }
        }
        self.stats()
    }

    /// The coordinator-side structured trace recorded so far (earlier
    /// epochs included), in emission order; empty unless the cluster was
    /// started with [`ClusterConfig::trace`]. Node-side events live in the
    /// run directory's `node{i}.obs.jsonl` files.
    ///
    /// [`ClusterConfig::trace`]: seqnet_runtime::ClusterConfig
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut out = self.prior_trace.clone();
        if let Some(rec) = &self.trace {
            out.extend_from_slice(rec.events());
        }
        out
    }

    /// Latest live telemetry snapshot from each node process, keyed by
    /// node index. Populated by the periodic in-band telemetry poll; a
    /// node that never answered (crashed early, never connected) is
    /// absent.
    pub fn telemetry(&self) -> &HashMap<usize, NodeTelemetry> {
        &self.telemetry
    }

    /// One human-readable cluster health line: epoch, reconfiguration
    /// state, parked publishes, receiver-side buffered messages, total
    /// deliveries, then per-node liveness with each node's last-reported
    /// incarnation, staged (in-flight) frames, and processed frames.
    pub fn health_line(&self) -> String {
        let buffered: usize = self.receivers.values().map(|r| r.queue().pending()).sum();
        let mut line = format!(
            "epoch={} reconfig_pending={} parked={} buffered={} delivered={}",
            self.spec.epoch,
            self.pending.is_some(),
            self.parked_publishes(),
            buffered,
            self.deliveries_seen,
        );
        for idx in 0..self.topo.num_nodes {
            let state = if self.children.contains_key(&idx) {
                "up"
            } else {
                "down"
            };
            match self.telemetry.get(&idx) {
                Some(t) => line.push_str(&format!(
                    " node{idx}={state}:inc{}:staged={}:processed={}",
                    t.incarnation, t.staged_frames, t.frames_processed
                )),
                None => line.push_str(&format!(" node{idx}={state}:no-telemetry")),
            }
        }
        line
    }

    /// Aggregated statistics: counters accumulated by earlier epochs plus
    /// the coordinator's own engine counters plus every stats reply
    /// received from node processes. Complete after
    /// [`shutdown`](Self::shutdown).
    pub fn stats(&self) -> DeployStats {
        let mut stats = self.prior_stats.clone();
        stats.frames_sent += self.engine.stats.frames_sent;
        stats.frames_dropped += self.engine.stats.frames_dropped;
        stats.retransmissions += self.engine.stats.retransmissions;
        stats.duplicates += self.engine.stats.duplicates;
        stats.recovery.crashes += self.crashes;
        for (&size, &count) in &self.engine.stats.batch_sizes {
            *stats.batch_sizes.entry(size).or_insert(0) += count;
        }
        for node in self.node_stats.values() {
            stats.frames_sent += node.frames_sent;
            stats.retransmissions += node.retransmissions;
            stats.duplicates += node.duplicates;
            stats.heartbeat_misses += node.heartbeat_misses;
            stats.recovery.frames_replayed += node.frames_replayed;
            stats.recovery.recovery_micros += node.recovery_micros;
            stats.snapshots += node.snapshots;
            for (&size, &count) in &node.batch_sizes {
                *stats.batch_sizes.entry(size).or_insert(0) += count;
            }
        }
        stats
    }

    /// Wire-write size histogram, the socket twin of the runtime's
    /// `batch_size_counts`. Complete after [`shutdown`](Self::shutdown).
    pub fn batch_size_counts(&self) -> BTreeMap<usize, u64> {
        self.stats().batch_sizes
    }

    /// The sum of every node's live telemetry as one registry, each
    /// family labelled with the current configuration epoch. This is
    /// exactly the node-scoped (`node_*`) portion of
    /// [`prometheus_text`](Self::prometheus_text), exposed separately so
    /// tests can verify the merge is a plain sum of [`node_registry`]
    /// outputs over the same telemetry snapshot.
    pub fn merged_node_registry(&self) -> Registry {
        let mut merged = Registry::new();
        for telemetry in self.telemetry.values() {
            merged.merge(&node_registry(telemetry, Some(self.spec.epoch)));
        }
        merged
    }

    /// Prometheus text exposition of the whole deployment: the merged
    /// epoch-labelled per-node telemetry
    /// ([`merged_node_registry`](Self::merged_node_registry)) plus the
    /// coordinator's own end-of-run aggregates and publish counters.
    pub fn prometheus_text(&self) -> String {
        let stats = self.stats();
        let mut reg = self.merged_node_registry();
        reg.inc("crashes_total", None, stats.recovery.crashes);
        reg.inc("duplicate_frames_total", None, stats.duplicates);
        reg.inc("frames_dropped_total", None, stats.frames_dropped);
        reg.inc("frames_replayed_total", None, stats.recovery.frames_replayed);
        reg.inc("frames_sent_total", None, stats.frames_sent);
        reg.inc("heartbeat_misses_total", None, stats.heartbeat_misses);
        reg.inc("publishes_parked_total", None, self.publishes_parked);
        reg.inc("publishes_steady_total", None, self.publishes_steady);
        reg.inc("recovery_micros_total", None, stats.recovery.recovery_micros);
        reg.inc("retransmissions_total", None, stats.retransmissions);
        reg.inc("snapshots_total", None, stats.snapshots);
        prom::exposition(&reg, "seqnet_deploy", node_or_group_label)
    }
}

/// Label key for the deployment exposition: node-telemetry families carry
/// the configuration epoch, everything else keeps the legacy group label.
fn node_or_group_label(family: &'static str) -> &'static str {
    if family.starts_with("node_") {
        "epoch"
    } else {
        "group"
    }
}

/// One node's live telemetry snapshot as a metrics registry, every family
/// labelled `label` (the configuration epoch in the merged exposition).
/// The coordinator's cluster-wide registry is the [`Registry::merge`] of
/// these over all nodes — counters add, histograms add bucket-wise — so a
/// test can recompute the merge independently from the same snapshots.
pub fn node_registry(telemetry: &NodeTelemetry, label: Option<u64>) -> Registry {
    let mut reg = Registry::new();
    let s = &telemetry.stats;
    reg.inc("node_duplicate_frames_total", label, s.duplicates);
    reg.inc("node_frames_processed_total", label, telemetry.frames_processed);
    reg.inc("node_frames_replayed_total", label, s.frames_replayed);
    reg.inc("node_frames_sent_total", label, s.frames_sent);
    reg.inc("node_heartbeat_misses_total", label, s.heartbeat_misses);
    reg.inc("node_obs_dropped_events_total", label, telemetry.obs_dropped);
    reg.inc("node_recovery_micros_total", label, s.recovery_micros);
    reg.inc("node_retransmissions_total", label, s.retransmissions);
    reg.inc("node_snapshots_total", label, s.snapshots);
    reg.inc("node_staged_frames", label, telemetry.staged_frames);
    let batches = reg.histogram("node_batch_frames", label);
    for (&size, &count) in &s.batch_sizes {
        batches.record_n(size as u64, count);
    }
    reg
}

impl Drop for DeployCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
