//! The sequencing-node child process.
//!
//! `run_node` is the entire life of one node process: it re-derives the
//! topology from the spec, restores its last disk snapshot (if any),
//! listens for the coordinator and lower-index peers, dials higher-index
//! peers, and then runs the same group-commit loop as the threaded
//! runtime's `node_thread` — frames in through [`WireEngine`], events
//! through the unchanged [`NodeCore`], staged outputs released only after
//! the snapshot recording them has been renamed into place. SIGKILL can
//! land anywhere in this loop; correctness rests solely on the snapshot
//! discipline, never on a clean shutdown path.

use crate::conn::{Conn, ConnError, Dialer};
use crate::engine::WireEngine;
use crate::snapshot::{snapshot_path, DiskSnapshot};
use crate::spec::ClusterSpec;
use crate::topo::{Proc, Topology};
use crate::wire::{NodeTelemetry, NodeWireStats, WireMsg};
use seqnet_core::proto::trace::{Actor, EventKind, TraceEvent, TraceSink};
use seqnet_core::proto::{Command, CommandBuf, Event, NodeCore, Peer, ProtocolState, Routing};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock microseconds since the UNIX epoch — the shared timebase of
/// every process's trace, so spans can be joined across node logs and the
/// coordinator's log without a distributed clock protocol. Skew between
/// processes on one machine is bounded by the kernel clock; the span
/// reconstructor clamps components to non-negative to absorb it.
pub(crate) fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Incremental observability log: one JSONL line per protocol event,
/// flushed immediately so the record survives a SIGKILL mid-run.
///
/// Doubles as the node's [`TraceSink`]: when the spec enables tracing the
/// protocol core's message-lifecycle events (`AtomStamp`, `FrameForward`)
/// stream through [`TraceSink::record`] into the same file the lifecycle
/// events (`Crash`, `Replay`, `SnapshotFlush`, `HeartbeatMiss`) go to.
/// Lifecycle events are always written; message events are gated on
/// `config.trace`. Write failures are never silently ignored — they bump
/// [`ObsLog::dropped`], which the telemetry reply reports upstream.
#[derive(Debug)]
struct ObsLog {
    file: Option<std::fs::File>,
    msg_trace: bool,
    now: u64,
    dropped: u64,
}

impl ObsLog {
    fn open(path: &Path, msg_trace: bool) -> Self {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok();
        ObsLog {
            file,
            msg_trace,
            now: 0,
            dropped: 0,
        }
    }

    /// Events lost to open/write failures since startup.
    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn write(&mut self, event: &TraceEvent) {
        let Some(file) = &mut self.file else {
            self.dropped += 1;
            return;
        };
        let ok = file
            .write_all(seqnet_obs::jsonl::to_jsonl(event).as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush());
        if ok.is_err() {
            self.dropped += 1;
        }
    }

    fn record(&mut self, kind: EventKind, actor: Actor, detail: Option<u64>) {
        let event = TraceEvent {
            at: unix_micros(),
            detail,
            ..TraceEvent::new(kind, actor)
        };
        self.write(&event);
    }
}

impl TraceSink for ObsLog {
    fn enabled(&self) -> bool {
        self.msg_trace
    }

    fn now(&mut self, at: u64) {
        self.now = at;
    }

    fn record(&mut self, mut event: TraceEvent) {
        event.at = self.now;
        let event = event;
        self.write(&event);
    }
}

/// Binds the node's listening port, absorbing the TIME_WAIT / rebind race
/// after a SIGKILL-respawn cycle: SO_REUSEADDR plus a bounded retry loop.
fn bind_with_retry(port: u16) -> io::Result<TcpListener> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match crate::sys::listen_reuseaddr(port) {
            Ok(l) => {
                l.set_nonblocking(true)?;
                return Ok(l);
            }
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn peer_addr(spec: &ClusterSpec, node: usize) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], spec.ports[node]))
}

/// Runs sequencing node `idx` to completion: until a `Shutdown` frame
/// arrives (clean exit, stats reply) or the process is killed.
///
/// # Errors
///
/// Returns the I/O failure that made the node unable to run (listener
/// bind, snapshot store).
pub fn run_node(spec: &ClusterSpec, idx: usize, incarnation: u64) -> io::Result<()> {
    let config = &spec.config;
    let topo = Topology::derive(&spec.membership, config.seed);
    let mut obs = ObsLog::open(
        &spec.dir.join(format!("node{idx}.obs.jsonl")),
        config.trace,
    );
    let actor = Actor::Node(idx as u64);

    let mut engine = WireEngine::new(
        Peer::Node(idx),
        config.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx as u64 + 1),
        true,
        config.retransmit_timeout,
        config.backoff_cap,
        config.coalesce,
        config.drop_probability,
    );
    let mut protocol = ProtocolState::new(&topo.graph);
    // Messages sequenced by this process are stamped with the spec's
    // configuration epoch.
    protocol.set_epoch(spec.epoch);
    // Group-commit mode: the core stages every output frame; this driver
    // releases them only after a snapshot records them.
    let mut core = NodeCore::new(idx, true);
    let mut cmdbuf = CommandBuf::new();
    let routing = Routing::colocated(&topo.membership, &topo.graph, &topo.atom_node);

    let started = Instant::now();
    let restarted = incarnation > 0;
    let mut replaying = restarted;
    let mut replayed: u64 = 0;
    let mut heartbeat_misses: u64 = 0;
    let mut frames_replayed_total: u64 = 0;
    let mut recovery_micros: u64 = 0;
    let mut snapshots: u64 = 0;
    let mut frames_processed: u64 = 0;

    if restarted {
        match DiskSnapshot::load(&snapshot_path(&spec.dir, idx))? {
            // A snapshot from another epoch indexes a retired sequencing
            // graph: restoring it would misapply every counter. Nothing
            // of the old epoch is owed by this node (the handoff drained
            // epoch N before the epoch-N+1 spec was written), so a node
            // that crashed mid-reconfiguration recovers fresh into the
            // epoch its spec names.
            Some(snap) if snap.epoch == spec.epoch => {
                protocol =
                    ProtocolState::import_counters(&topo.graph, &snap.overlaps, &snap.groups);
                protocol.set_epoch(spec.epoch);
                engine.restore_links(&snap.rx_next, &snap.tx);
                // Seed the core's ack floors to match what the snapshot had
                // advertised, so the next snapshot only acks real progress.
                for &(link, next) in &snap.rx_next {
                    let (from, _to) = topo.links[link as usize];
                    core.restore_floor(from, next.saturating_sub(1));
                }
                obs.record(EventKind::Crash, actor, Some(incarnation));
            }
            _ => {}
        }
        // No snapshot (or a stale-epoch one): nothing this epoch ever
        // escaped the node (outputs and acks only leave at snapshot
        // time), so a fresh start is consistent.
    }

    let listener = bind_with_retry(spec.ports[idx])?;

    // Dialing rule: node i dials node j iff i < j (ties broken by index so
    // each process pair has exactly one connection); the coordinator dials
    // every node. So this node dials its higher-index peers and accepts
    // everyone else.
    let mut dialers: HashMap<Proc, Dialer> = HashMap::new();
    let dial_base = Duration::from_millis(5);
    for &j in topo.node_peers(idx).iter().filter(|&&j| j > idx) {
        dialers.insert(
            Proc::Node(j),
            Dialer::new(peer_addr(spec, j), dial_base, config.backoff_cap),
        );
    }
    let mut conns: HashMap<Proc, Conn> = HashMap::new();
    let mut pending: Vec<Conn> = Vec::new();
    let mut epochs: HashMap<Proc, u64> = HashMap::new();

    let (watched_peers, hb_out) = topo.heartbeat_plan(idx);
    let mut watched: HashMap<usize, (Instant, bool)> = watched_peers
        .iter()
        .map(|&p| (p, (Instant::now(), false)))
        .collect();

    let mut last_snapshot = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut shutdown_via: Option<Proc> = None;
    let mut telemetry_via: Option<Proc> = None;
    let mut poll_procs: Vec<Proc> = Vec::new();
    let mut poll_msgs: Vec<WireMsg> = Vec::new();

    'main: loop {
        // Accept new connections; they become routable once they say Hello.
        loop {
            match listener.accept() {
                Ok((stream, _)) => match Conn::new(stream) {
                    Ok(conn) => pending.push(conn),
                    Err(_) => continue,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Dial higher-index peers that are due.
        let due: Vec<Proc> = dialers.keys().copied().collect();
        for proc in due {
            let Some(stream) = dialers.get_mut(&proc).and_then(Dialer::poll) else {
                continue;
            };
            let Ok(mut conn) = Conn::new(stream) else {
                continue;
            };
            conn.queue(&WireMsg::Hello {
                party: Peer::Node(idx),
                incarnation,
            });
            dialers.remove(&proc);
            conns.insert(proc, conn);
            let epoch = epochs.entry(proc).or_insert(0);
            *epoch += 1;
            engine.reconnect_replay_to(&topo, proc, *epoch);
        }

        // Promote pending connections on their Hello; anything else as a
        // first message (or a read error) discards the connection.
        let mut promoted: Vec<(Proc, Conn, Vec<WireMsg>)> = Vec::new();
        let mut i = 0;
        while i < pending.len() {
            match pending[i].poll_read() {
                Ok(msgs) if msgs.is_empty() => i += 1,
                Ok(mut msgs) => {
                    let conn = pending.swap_remove(i);
                    if let WireMsg::Hello { party, .. } = msgs[0] {
                        let proc = Topology::owner(party);
                        let rest = msgs.split_off(1);
                        promoted.push((proc, conn, rest));
                    }
                }
                Err(_) => {
                    pending.swap_remove(i);
                }
            }
        }
        for (proc, conn, rest) in promoted {
            conns.insert(proc, conn);
            let epoch = epochs.entry(proc).or_insert(0);
            *epoch += 1;
            engine.reconnect_replay_to(&topo, proc, *epoch);
            for msg in rest {
                handle_msg(
                    msg,
                    proc,
                    &topo,
                    &mut engine,
                    &mut core,
                    &mut protocol,
                    &routing,
                    &mut cmdbuf,
                    &mut obs,
                    &mut watched,
                    replaying,
                    &mut replayed,
                    &mut frames_processed,
                    &mut shutdown_via,
                    &mut telemetry_via,
                );
            }
        }

        // Drain every established connection. The message scratch and the
        // proc list are reused across poll iterations so a quiet poll
        // allocates nothing.
        poll_procs.clear();
        poll_procs.extend(conns.keys().copied());
        for &proc in &poll_procs {
            poll_msgs.clear();
            match conns
                .get_mut(&proc)
                .expect("conn exists")
                .poll_read_into(&mut poll_msgs)
            {
                Ok(_) => {}
                Err(_) => {
                    conns.remove(&proc);
                    if let Proc::Node(j) = proc {
                        if j > idx {
                            dialers.insert(
                                proc,
                                Dialer::new(peer_addr(spec, j), dial_base, config.backoff_cap),
                            );
                        }
                    }
                    continue;
                }
            }
            for msg in poll_msgs.drain(..) {
                handle_msg(
                    msg,
                    proc,
                    &topo,
                    &mut engine,
                    &mut core,
                    &mut protocol,
                    &routing,
                    &mut cmdbuf,
                    &mut obs,
                    &mut watched,
                    replaying,
                    &mut replayed,
                    &mut frames_processed,
                    &mut shutdown_via,
                    &mut telemetry_via,
                );
            }
        }
        if let Some(via) = telemetry_via.take() {
            // A live snapshot of this node's counters, replied over the
            // control connection that asked. Cheap enough to answer every
            // poll: all fields are already-maintained counters.
            let telemetry = NodeTelemetry {
                incarnation,
                epoch: spec.epoch,
                staged_frames: engine.staged_len() as u64,
                frames_processed,
                obs_dropped: obs.dropped(),
                stats: NodeWireStats {
                    frames_sent: engine.stats.frames_sent,
                    retransmissions: engine.stats.retransmissions,
                    duplicates: engine.stats.duplicates,
                    heartbeat_misses,
                    frames_replayed: frames_replayed_total + replayed,
                    recovery_micros,
                    snapshots,
                    batch_sizes: engine.stats.batch_sizes.clone(),
                },
            };
            if let Some(conn) = conns.get_mut(&via) {
                conn.queue(&WireMsg::Telemetry(telemetry));
            }
        }
        if let Some(via) = shutdown_via {
            // Reply with the node's counters, then drain the socket.
            let stats = NodeWireStats {
                frames_sent: engine.stats.frames_sent,
                retransmissions: engine.stats.retransmissions,
                duplicates: engine.stats.duplicates,
                heartbeat_misses,
                frames_replayed: frames_replayed_total + replayed,
                recovery_micros,
                snapshots,
                batch_sizes: engine.stats.batch_sizes.clone(),
            };
            if let Some(conn) = conns.get_mut(&via) {
                conn.queue(&WireMsg::Stats(stats));
                let deadline = Instant::now() + Duration::from_secs(2);
                while conn.backlog() > 0 && Instant::now() < deadline {
                    if conn.poll_write().is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            break 'main;
        }

        let now = Instant::now();
        if now.duration_since(last_snapshot) >= config.snapshot_interval {
            let (overlaps, groups) = protocol.export_counters();
            let (rx_next, tx) = engine.snapshot_links();
            let staged_frames = engine.staged_len() as u64;
            DiskSnapshot {
                epoch: spec.epoch,
                overlaps,
                groups,
                rx_next: rx_next.clone(),
                tx,
            }
            .save(&snapshot_path(&spec.dir, idx))?;
            snapshots += 1;
            let mut by_peer: Vec<(Peer, u64)> = rx_next
                .iter()
                .map(|&(link, next)| (topo.links[link as usize].0, next))
                .collect();
            by_peer.sort_unstable();
            for cmd in core.on_event(
                &routing,
                &mut protocol,
                Event::SnapshotTaken { rx_next: by_peer },
            ) {
                match cmd {
                    Command::Flush => {
                        obs.record(EventKind::SnapshotFlush, actor, Some(staged_frames));
                        engine.flush_staged();
                    }
                    Command::Ack { to, through } => {
                        engine.send_ack_through(&topo, to, through);
                    }
                    other => unreachable!("snapshots only flush and ack: {other:?}"),
                }
            }
            last_snapshot = now;
            if replaying && replayed > 0 {
                // Recovery complete: the replayed input is durable again.
                replaying = false;
                frames_replayed_total += replayed;
                obs.record(EventKind::Replay, actor, Some(replayed));
                replayed = 0;
                recovery_micros += started.elapsed().as_micros() as u64;
            }
        }

        if now.duration_since(last_heartbeat) >= config.heartbeat_interval {
            for &(to, link) in &hb_out {
                engine.heartbeat(to, link);
            }
            last_heartbeat = now;
        }
        for (&peer, (seen, suspected)) in watched.iter_mut() {
            if !*suspected
                && now.duration_since(*seen)
                    >= config.heartbeat_interval * config.heartbeat_miss_threshold
            {
                *suspected = true;
                heartbeat_misses += 1;
                obs.record(EventKind::HeartbeatMiss, actor, Some(peer as u64));
                // Tear the connection down so reconnect (with its replay)
                // rather than a half-dead socket carries the recovery.
                let proc = Proc::Node(peer);
                if conns.remove(&proc).is_some() && peer > idx {
                    dialers.insert(
                        proc,
                        Dialer::new(peer_addr(spec, peer), dial_base, config.backoff_cap),
                    );
                }
            }
        }

        engine.retransmit_due(&topo);

        // Route the engine's transmissions onto connections. A missing
        // connection silently drops the message — the link layer's
        // retransmission schedule (and reconnect replay) recovers it.
        for (to, msg) in engine.take_out() {
            if let Some(conn) = conns.get_mut(&Topology::owner(to)) {
                conn.queue(&msg);
            }
        }
        let procs: Vec<Proc> = conns.keys().copied().collect();
        for proc in procs {
            if conns
                .get_mut(&proc)
                .expect("conn exists")
                .poll_write()
                .is_err()
            {
                conns.remove(&proc);
                if let Proc::Node(j) = proc {
                    if j > idx {
                        dialers.insert(
                            proc,
                            Dialer::new(peer_addr(spec, j), dial_base, config.backoff_cap),
                        );
                    }
                }
            }
        }

        std::thread::sleep(Duration::from_micros(500));
    }
    Ok(())
}

/// Feeds one wire message through the link engine and the protocol core.
#[allow(clippy::too_many_arguments)]
fn handle_msg(
    msg: WireMsg,
    from_proc: Proc,
    topo: &Topology,
    engine: &mut WireEngine,
    core: &mut NodeCore,
    protocol: &mut ProtocolState,
    routing: &Routing<'_>,
    cmdbuf: &mut CommandBuf,
    obs: &mut ObsLog,
    watched: &mut HashMap<usize, (Instant, bool)>,
    replaying: bool,
    replayed: &mut u64,
    frames_processed: &mut u64,
    shutdown_via: &mut Option<Proc>,
    telemetry_via: &mut Option<Proc>,
) {
    match msg {
        WireMsg::Hello { .. } => {}
        WireMsg::Stats(_) | WireMsg::Telemetry(_) => {}
        WireMsg::Shutdown => *shutdown_via = Some(from_proc),
        WireMsg::TelemetryRequest => *telemetry_via = Some(from_proc),
        WireMsg::Link { link, seq, body } => {
            if let Proc::Node(p) = from_proc {
                if let Some(entry) = watched.get_mut(&p) {
                    *entry = (Instant::now(), false);
                }
            }
            let frames = engine.on_link(topo, link, seq, body);
            if frames.is_empty() {
                return;
            }
            if replaying {
                *replayed += frames.len() as u64;
            }
            *frames_processed += frames.len() as u64;
            let events = frames
                .into_iter()
                .map(|data| Event::FrameArrived { frame: data });
            cmdbuf.clear();
            obs.now(unix_micros());
            core.on_events_traced(routing, protocol, events, obs, cmdbuf);
            for cmd in cmdbuf.drain() {
                match cmd {
                    Command::Stage { to, frame } => {
                        engine.send_data_held(topo, to, frame);
                    }
                    other => unreachable!("group-commit frames only stage: {other:?}"),
                }
            }
        }
    }
}
