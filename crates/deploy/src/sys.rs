//! The one OS-specific corner of the deployment: binding a listener with
//! `SO_REUSEADDR`.
//!
//! A SIGKILLed node's accepted connections share its listening port; the
//! kernel closes them on its behalf, leaving that port in `TIME_WAIT`.
//! Without `SO_REUSEADDR` the respawned incarnation cannot rebind for a
//! minute — longer than any recovery budget — so on Linux the listener is
//! created by hand (socket → setsockopt → bind → listen) through a minimal
//! FFI surface and wrapped back into a [`TcpListener`]. This module is the
//! only `unsafe` code in the crate.

use std::io;
use std::net::TcpListener;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::*;
    use std::os::unix::io::FromRawFd;

    /// `struct sockaddr_in` for `AF_INET`; `sin_port` and `sin_addr` are
    /// in network byte order.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    pub fn listen_reuseaddr(port: u16) -> io::Result<TcpListener> {
        // SAFETY: plain libc socket calls on a freshly created fd; the fd
        // is closed on every error path and ownership passes to the
        // returned TcpListener on success.
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0 {
                return Err(fail(fd));
            }
            let addr = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: port.to_be(),
                // 127.0.0.1 in network byte order: the first byte in
                // memory is 127.
                sin_addr: u32::from_ne_bytes([127, 0, 0, 1]),
                sin_zero: [0; 8],
            };
            if bind(fd, &addr, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
                return Err(fail(fd));
            }
            if listen(fd, 128) < 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    pub fn listen_reuseaddr(port: u16) -> io::Result<TcpListener> {
        TcpListener::bind(("127.0.0.1", port))
    }
}

/// Binds a localhost listener on `port` with `SO_REUSEADDR` set, so a
/// respawned node can reclaim its port while the killed incarnation's
/// connections sit in `TIME_WAIT`.
///
/// # Errors
///
/// Propagates the failing socket call's `errno`.
pub fn listen_reuseaddr(port: u16) -> io::Result<TcpListener> {
    imp::listen_reuseaddr(port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn reuseaddr_listener_accepts_connections() {
        // Port 0: the kernel picks; we read it back and connect.
        let listener = listen_reuseaddr(0).expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(b"ping").expect("write");
        let (mut server, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn rebinding_a_just_used_port_succeeds() {
        let first = listen_reuseaddr(0).expect("bind");
        let port = first.local_addr().expect("addr").port();
        // Hold a connection through the listener's death so the port has
        // live TCP state, then rebind immediately.
        let client = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let (server, _) = first.accept().expect("accept");
        drop(first);
        drop(server);
        drop(client);
        listen_reuseaddr(port).expect("rebind with SO_REUSEADDR");
    }
}
