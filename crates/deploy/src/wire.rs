//! Length-prefixed wire codec for the socket deployment.
//!
//! Every TCP connection carries a stream of frames, each encoded as a
//! 4-byte little-endian length followed by that many payload bytes. The
//! payload starts with a one-byte message kind. Decoding is fully
//! incremental — [`FrameBuffer`] accepts bytes in arbitrary chunks (short
//! reads, dribble transports) and yields complete messages as they become
//! available — and fully defensive: truncated, garbled, or oversized input
//! produces a [`CodecError`], never a panic, so the connection owner can
//! quarantine the peer.
//!
//! The codec is hand-rolled (no serde): the workspace treats the wire
//! format as part of the protocol surface (PROTOCOL.md §13/§16), and the
//! explicit byte layout keeps it inspectable and stable. The frame-level
//! layout and primitive readers/writers live in
//! [`seqnet_runtime::codec`], shared with the threaded runtime; this
//! module layers the connection-message envelope ([`WireMsg`]) on top.

use seqnet_core::proto::{Frame, Peer};
use seqnet_runtime::codec::{put_peer, put_u32, put_u64, Reader};
use std::collections::BTreeMap;

pub use seqnet_runtime::codec::CodecError;
pub(crate) use seqnet_runtime::codec::{put_frame, take_frame};

/// Upper bound on one wire frame's payload. Anything larger is treated as
/// a garbled or hostile length prefix and rejected before allocation.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Per-node counters shipped to the coordinator at orderly shutdown,
/// mirroring the threaded runtime's `RuntimeStats` fields plus the wire
/// batch-size histogram (the coordinator folds them into `DeployStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeWireStats {
    /// Data frames this node put on the wire (incl. retransmissions).
    pub frames_sent: u64,
    /// Retransmissions performed by this node's link senders.
    pub retransmissions: u64,
    /// Duplicate frames discarded by this node's link receivers.
    pub duplicates: u64,
    /// Peer-failure detections (heartbeat silence past the threshold).
    pub heartbeat_misses: u64,
    /// Data frames replayed to this node after restarts, before recovery
    /// completed.
    pub frames_replayed: u64,
    /// Summed recovery latency (process start to first covering snapshot)
    /// over this incarnation, in microseconds.
    pub recovery_micros: u64,
    /// Snapshots persisted by this incarnation.
    pub snapshots: u64,
    /// Wire-write size histogram: frames per write.
    pub batch_sizes: BTreeMap<usize, u64>,
}

/// A live per-node telemetry snapshot, pulled periodically by the
/// coordinator over the existing control connections (the trace plane's
/// scrape path — PROTOCOL.md §15). Unlike [`WireMsg::Stats`] this is
/// sent while the node keeps running, so the counters are a consistent
/// point-in-time read, monotone across snapshots of one incarnation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeTelemetry {
    /// Respawn count of the reporting process.
    pub incarnation: u64,
    /// Configuration epoch the node is serving.
    pub epoch: u64,
    /// Frames staged under group commit, not yet flushed by a snapshot
    /// (the node-side in-flight measure).
    pub staged_frames: u64,
    /// Protocol frames fed through the node's core since launch.
    pub frames_processed: u64,
    /// Observability events the node failed to persist (write errors on
    /// the JSONL log) — non-zero means span reconstruction over this
    /// node's file is incomplete.
    pub obs_dropped: u64,
    /// The cumulative counters, same shape as the shutdown report.
    pub stats: NodeWireStats,
}

/// One message on a deployment connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Connection handshake: the first message on every connection names
    /// the dialing process and its incarnation (respawn count).
    Hello {
        /// The party that owns the dialing process (the coordinator
        /// announces itself as [`Peer::Publisher`]).
        party: Peer,
        /// Respawn count of the dialing process, 0 for the first launch.
        incarnation: u64,
    },
    /// A reliable-link frame: the link id is an index into the shared
    /// deterministic link table, `seq` is the link sequence number (or the
    /// ack floor for ack bodies, 0 for heartbeats).
    Link {
        /// Index into the deterministic link table.
        link: u32,
        /// Link sequence number / cumulative ack floor.
        seq: u64,
        /// The frame body.
        body: WireBody,
    },
    /// Coordinator → node: checkpoint, report stats, and exit cleanly.
    Shutdown,
    /// Node → coordinator: final counters, sent in response to
    /// [`WireMsg::Shutdown`].
    Stats(NodeWireStats),
    /// Coordinator → node: report a live telemetry snapshot. Does not
    /// disturb the node; answered with [`WireMsg::Telemetry`].
    TelemetryRequest,
    /// Node → coordinator: the live snapshot, sent in response to
    /// [`WireMsg::TelemetryRequest`].
    Telemetry(NodeTelemetry),
}

/// Body of a [`WireMsg::Link`] frame — the socket analogue of the
/// threaded runtime's internal `Body` enum.
#[derive(Debug, Clone, PartialEq)]
pub enum WireBody {
    /// One protocol frame.
    Data(Frame),
    /// A coalesced run of protocol frames with consecutive link sequence
    /// numbers starting at the carried `seq`.
    DataBatch(Vec<Frame>),
    /// Acknowledges exactly the carried sequence number.
    Ack,
    /// Acknowledges everything through the carried sequence number.
    AckThrough,
    /// Liveness beacon; bypasses reliable delivery.
    Heartbeat,
}

// --- encoding ---------------------------------------------------------

/// The [`NodeWireStats`] body layout, shared by [`WireMsg::Stats`] and
/// [`WireMsg::Telemetry`].
fn put_stats(out: &mut Vec<u8>, s: &NodeWireStats) {
    put_u64(out, s.frames_sent);
    put_u64(out, s.retransmissions);
    put_u64(out, s.duplicates);
    put_u64(out, s.heartbeat_misses);
    put_u64(out, s.frames_replayed);
    put_u64(out, s.recovery_micros);
    put_u64(out, s.snapshots);
    put_u32(out, s.batch_sizes.len() as u32);
    for (&size, &count) in &s.batch_sizes {
        put_u32(out, size as u32);
        put_u64(out, count);
    }
}

/// Appends `msg` to `out` as one length-prefixed wire frame.
pub fn encode(msg: &WireMsg, out: &mut Vec<u8>) {
    let at = out.len();
    put_u32(out, 0); // patched below
    match msg {
        WireMsg::Hello { party, incarnation } => {
            out.push(0);
            put_peer(out, *party);
            put_u64(out, *incarnation);
        }
        WireMsg::Link { link, seq, body } => {
            out.push(1);
            put_u32(out, *link);
            put_u64(out, *seq);
            match body {
                WireBody::Data(f) => {
                    out.push(0);
                    put_frame(out, f);
                }
                WireBody::DataBatch(fs) => {
                    out.push(1);
                    put_u32(out, fs.len() as u32);
                    for f in fs {
                        put_frame(out, f);
                    }
                }
                WireBody::Ack => out.push(2),
                WireBody::AckThrough => out.push(3),
                WireBody::Heartbeat => out.push(4),
            }
        }
        WireMsg::Shutdown => out.push(2),
        WireMsg::Stats(s) => {
            out.push(3);
            put_stats(out, s);
        }
        WireMsg::TelemetryRequest => out.push(4),
        WireMsg::Telemetry(t) => {
            out.push(5);
            put_u64(out, t.incarnation);
            put_u64(out, t.epoch);
            put_u64(out, t.staged_frames);
            put_u64(out, t.frames_processed);
            put_u64(out, t.obs_dropped);
            put_stats(out, &t.stats);
        }
    }
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

// --- decoding ---------------------------------------------------------

/// The [`NodeWireStats`] body decode, mirroring [`put_stats`].
fn read_stats(r: &mut Reader<'_>) -> Result<NodeWireStats, CodecError> {
    let mut s = NodeWireStats {
        frames_sent: r.u64()?,
        retransmissions: r.u64()?,
        duplicates: r.u64()?,
        heartbeat_misses: r.u64()?,
        frames_replayed: r.u64()?,
        recovery_micros: r.u64()?,
        snapshots: r.u64()?,
        ..NodeWireStats::default()
    };
    let n = r.count()?;
    for _ in 0..n {
        let size = r.u32()? as usize;
        let count = r.u64()?;
        s.batch_sizes.insert(size, count);
    }
    Ok(s)
}

/// Decodes one complete frame payload (the bytes after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, CodecError> {
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        0 => WireMsg::Hello {
            party: r.peer()?,
            incarnation: r.u64()?,
        },
        1 => {
            let link = r.u32()?;
            let seq = r.u64()?;
            let body = match r.u8()? {
                0 => WireBody::Data(r.frame()?),
                1 => {
                    let n = r.count()?;
                    let mut fs = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        fs.push(r.frame()?);
                    }
                    WireBody::DataBatch(fs)
                }
                2 => WireBody::Ack,
                3 => WireBody::AckThrough,
                4 => WireBody::Heartbeat,
                _ => return Err(CodecError::Garbled("unknown body kind")),
            };
            WireMsg::Link { link, seq, body }
        }
        2 => WireMsg::Shutdown,
        3 => WireMsg::Stats(read_stats(&mut r)?),
        4 => WireMsg::TelemetryRequest,
        5 => WireMsg::Telemetry(NodeTelemetry {
            incarnation: r.u64()?,
            epoch: r.u64()?,
            staged_frames: r.u64()?,
            frames_processed: r.u64()?,
            obs_dropped: r.u64()?,
            stats: read_stats(&mut r)?,
        }),
        _ => return Err(CodecError::Garbled("unknown message kind")),
    };
    r.done()?;
    Ok(msg)
}

/// Incremental frame assembler: feed it bytes as they arrive (in chunks of
/// any size) and drain complete messages. A [`CodecError`] from [`next`]
/// is terminal for the stream — quarantine the connection.
///
/// [`next`]: FrameBuffer::next
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed; compacted lazily.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact when the dead prefix dominates, so long-lived
        // connections don't grow without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed, or a terminal [`CodecError`].
    pub fn next(&mut self) -> Result<Option<WireMsg>, CodecError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(CodecError::BadLength(len));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let msg = decode_payload(&avail[4..4 + len])?;
        self.start += 4 + len;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_core::{Message, MessageId, SeqNo, Stamp};
    use seqnet_membership::{GroupId, NodeId};
    use seqnet_overlap::AtomId;

    fn sample_frame(id: u64) -> Frame {
        let mut msg = Message::new(MessageId(id), NodeId(3), GroupId(1), b"payload".to_vec());
        msg.group_seq = SeqNo(9);
        msg.epoch = 2;
        msg.stamps.push(Stamp {
            atom: AtomId(4),
            seq: SeqNo(17),
        });
        Frame {
            msg,
            target_atom: Some(AtomId(2)),
        }
    }

    #[test]
    fn roundtrip_every_variant() {
        let msgs = vec![
            WireMsg::Hello {
                party: Peer::Node(7),
                incarnation: 3,
            },
            WireMsg::Hello {
                party: Peer::Publisher,
                incarnation: 0,
            },
            WireMsg::Link {
                link: 5,
                seq: 42,
                body: WireBody::Data(sample_frame(1)),
            },
            WireMsg::Link {
                link: 0,
                seq: 10,
                body: WireBody::DataBatch(vec![sample_frame(2), sample_frame(3)]),
            },
            WireMsg::Link {
                link: 1,
                seq: 6,
                body: WireBody::Ack,
            },
            WireMsg::Link {
                link: 1,
                seq: 6,
                body: WireBody::AckThrough,
            },
            WireMsg::Link {
                link: 2,
                seq: 0,
                body: WireBody::Heartbeat,
            },
            WireMsg::Shutdown,
            WireMsg::Stats(NodeWireStats {
                frames_sent: 10,
                retransmissions: 2,
                duplicates: 1,
                heartbeat_misses: 0,
                frames_replayed: 4,
                recovery_micros: 1234,
                snapshots: 6,
                batch_sizes: [(1, 8), (4, 2)].into_iter().collect(),
            }),
            WireMsg::TelemetryRequest,
            WireMsg::Telemetry(NodeTelemetry {
                incarnation: 2,
                epoch: 1,
                staged_frames: 7,
                frames_processed: 530,
                obs_dropped: 0,
                stats: NodeWireStats {
                    frames_sent: 99,
                    batch_sizes: [(2, 5)].into_iter().collect(),
                    ..NodeWireStats::default()
                },
            }),
        ];
        let mut bytes = Vec::new();
        for m in &msgs {
            encode(m, &mut bytes);
        }
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        for expect in &msgs {
            let got = fb.next().expect("valid stream").expect("complete frame");
            assert_eq!(&got, expect);
        }
        assert!(fb.next().expect("empty tail").is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut fb = FrameBuffer::new();
        fb.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        fb.push(&[0u8; 16]);
        assert!(matches!(fb.next(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn zero_length_prefix_is_rejected() {
        let mut fb = FrameBuffer::new();
        fb.push(&0u32.to_le_bytes());
        assert_eq!(fb.next(), Err(CodecError::BadLength(0)));
    }

    #[test]
    fn truncated_frame_waits_for_more_bytes() {
        let mut bytes = Vec::new();
        encode(
            &WireMsg::Link {
                link: 9,
                seq: 1,
                body: WireBody::Data(sample_frame(5)),
            },
            &mut bytes,
        );
        let mut fb = FrameBuffer::new();
        fb.push(&bytes[..bytes.len() - 1]);
        assert_eq!(fb.next(), Ok(None));
        fb.push(&bytes[bytes.len() - 1..]);
        assert!(fb.next().expect("valid").is_some());
    }
}
