//! The cluster spec file handed to every child process.
//!
//! The coordinator writes one plain-text spec into the run directory;
//! children are spawned with `cluster-node --spec <path> --node <idx>` and
//! re-derive everything else (graph, co-location, link table) from the
//! membership and seed via [`Topology::derive`]. The format is a trivial
//! line-oriented key/value listing — inspectable with `cat`, no serde.
//!
//! [`Topology::derive`]: crate::topo::Topology::derive

use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_runtime::ClusterConfig;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Everything a child process needs to join the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Shared deployment configuration (validated before launch).
    pub config: ClusterConfig,
    /// The group membership the topology is derived from.
    pub membership: Membership,
    /// Configuration epoch this spec describes: 0 for a fresh deployment,
    /// N+1 for the run directory written by the Nth online
    /// reconfiguration. Nodes seed their protocol state from it and
    /// refuse snapshots recorded under a different epoch.
    pub epoch: u64,
    /// Listening port of each sequencing node, indexed by node.
    pub ports: Vec<u16>,
    /// Run directory: snapshots, per-node obs JSONL, the spec itself.
    pub dir: PathBuf,
}

impl ClusterSpec {
    /// Serializes the spec to its line format.
    pub fn encode(&self) -> String {
        let mut s = String::from("seqnet-cluster-spec v1\n");
        let c = &self.config;
        s.push_str(&format!("seed {}\n", c.seed));
        s.push_str(&format!("epoch {}\n", self.epoch));
        s.push_str(&format!("drop_probability {}\n", c.drop_probability));
        s.push_str(&format!(
            "retransmit_timeout_us {}\n",
            c.retransmit_timeout.as_micros()
        ));
        s.push_str(&format!("backoff_cap_us {}\n", c.backoff_cap.as_micros()));
        s.push_str(&format!("link_delay_us {}\n", c.link_delay.as_micros()));
        s.push_str(&format!(
            "snapshot_interval_us {}\n",
            c.snapshot_interval.as_micros()
        ));
        s.push_str(&format!(
            "heartbeat_interval_us {}\n",
            c.heartbeat_interval.as_micros()
        ));
        s.push_str(&format!(
            "heartbeat_miss_threshold {}\n",
            c.heartbeat_miss_threshold
        ));
        s.push_str(&format!("coalesce {}\n", u8::from(c.coalesce)));
        s.push_str(&format!("trace {}\n", u8::from(c.trace)));
        s.push_str(&format!("dir {}\n", self.dir.display()));
        s.push_str("ports");
        for p in &self.ports {
            s.push_str(&format!(" {p}"));
        }
        s.push('\n');
        for group in self.membership.groups() {
            s.push_str(&format!("group {}", group.0));
            for member in self.membership.members(group) {
                s.push_str(&format!(" {}", member.0));
            }
            s.push('\n');
        }
        s
    }

    /// Parses a spec previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("seqnet-cluster-spec v1") {
            return Err("missing spec header".into());
        }
        let mut config = ClusterConfig::default();
        let mut epoch = 0u64;
        let mut ports = Vec::new();
        let mut dir = PathBuf::new();
        let mut membership = Membership::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            let num = |what: &str, v: &str| -> Result<u64, String> {
                v.parse::<u64>().map_err(|_| format!("bad {what}: {v:?}"))
            };
            match key {
                "seed" => config.seed = num("seed", rest)?,
                "epoch" => epoch = num("epoch", rest)?,
                "drop_probability" => {
                    config.drop_probability = rest
                        .parse::<f64>()
                        .map_err(|_| format!("bad drop_probability: {rest:?}"))?;
                }
                "retransmit_timeout_us" => {
                    config.retransmit_timeout =
                        Duration::from_micros(num("retransmit_timeout_us", rest)?);
                }
                "backoff_cap_us" => {
                    config.backoff_cap = Duration::from_micros(num("backoff_cap_us", rest)?);
                }
                "link_delay_us" => {
                    config.link_delay = Duration::from_micros(num("link_delay_us", rest)?);
                }
                "snapshot_interval_us" => {
                    config.snapshot_interval =
                        Duration::from_micros(num("snapshot_interval_us", rest)?);
                }
                "heartbeat_interval_us" => {
                    config.heartbeat_interval =
                        Duration::from_micros(num("heartbeat_interval_us", rest)?);
                }
                "heartbeat_miss_threshold" => {
                    config.heartbeat_miss_threshold =
                        num("heartbeat_miss_threshold", rest)? as u32;
                }
                "coalesce" => config.coalesce = rest == "1",
                "trace" => config.trace = rest == "1",
                "dir" => dir = PathBuf::from(rest),
                "ports" => {
                    for p in rest.split_whitespace() {
                        ports.push(p.parse::<u16>().map_err(|_| format!("bad port {p:?}"))?);
                    }
                }
                "group" => {
                    let mut it = rest.split_whitespace();
                    let gid = it
                        .next()
                        .ok_or("group line without id")
                        .and_then(|g| g.parse::<u32>().map_err(|_| "bad group id"))
                        .map_err(str::to_owned)?;
                    for member in it {
                        let n = member
                            .parse::<u32>()
                            .map_err(|_| format!("bad member {member:?}"))?;
                        membership.subscribe(NodeId(n), GroupId(gid));
                    }
                }
                other => return Err(format!("unknown spec key {other:?}")),
            }
        }
        if dir.as_os_str().is_empty() {
            return Err("spec has no dir".into());
        }
        config.validate()?;
        Ok(ClusterSpec {
            config,
            membership,
            epoch,
            ports,
            dir,
        })
    }

    /// Loads and parses a spec file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a string.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_its_line_format() {
        let membership = Membership::from_groups([
            (GroupId(0), vec![NodeId(0), NodeId(1)]),
            (GroupId(1), vec![NodeId(1), NodeId(2)]),
        ]);
        let spec = ClusterSpec {
            config: ClusterConfig {
                seed: 99,
                coalesce: true,
                trace: true,
                heartbeat_miss_threshold: 5,
                ..ClusterConfig::default()
            },
            membership,
            epoch: 4,
            ports: vec![40001, 40002],
            dir: PathBuf::from("/tmp/seqnet-test-run"),
        };
        let text = spec.encode();
        let back = ClusterSpec::parse(&text).expect("parses");
        assert_eq!(back.config.seed, 99);
        assert_eq!(back.epoch, 4);
        assert!(back.config.coalesce);
        assert!(back.config.trace);
        assert_eq!(back.config.heartbeat_miss_threshold, 5);
        assert_eq!(back.ports, vec![40001, 40002]);
        assert_eq!(back.dir, PathBuf::from("/tmp/seqnet-test-run"));
        assert_eq!(
            back.membership.group_size(GroupId(0)),
            2,
            "group 0 kept its members"
        );
        assert_eq!(back.encode(), text, "encoding is canonical");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ClusterSpec::parse("not a spec").is_err());
        assert!(ClusterSpec::parse("seqnet-cluster-spec v1\nwat 3\n").is_err());
        assert!(
            ClusterSpec::parse("seqnet-cluster-spec v1\nseed x\ndir /tmp\n").is_err(),
            "non-numeric seed"
        );
    }
}
