//! Fuzz-ish property tests of the deployment wire codec: arbitrary
//! messages must round-trip under arbitrary chunking, and truncated,
//! garbled, or oversized input must be rejected with a [`CodecError`] —
//! never a panic — so the connection owner can quarantine the stream.
//!
//! The frame population comes from the strategy module shared with the
//! runtime's frame-level codec tests (`crates/runtime/tests`), so the
//! envelope layer here and the byte layout there are fuzzed against the
//! same inputs; the equivalence properties below pin the envelope to
//! embed `seqnet_runtime::codec`'s frame bytes verbatim.

#[path = "../../runtime/tests/codec_strategies.rs"]
mod codec_strategies;

use codec_strategies::{chunk_strategy, frame_strategy, peer_strategy};
use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_deploy::conn::{Conn, ConnError};
use seqnet_deploy::wire::{decode_payload, encode, FrameBuffer, MAX_FRAME_LEN};
use seqnet_deploy::{CodecError, NodeTelemetry, NodeWireStats, WireBody, WireMsg};
use seqnet_core::proto::{Frame, Peer};
use seqnet_core::{Message, MessageId};
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::AtomId;

fn body_strategy() -> impl Strategy<Value = WireBody> {
    prop_oneof![
        3 => frame_strategy().prop_map(WireBody::Data),
        2 => vec(frame_strategy(), 0..4).prop_map(WireBody::DataBatch),
        1 => Just(WireBody::Ack),
        1 => Just(WireBody::AckThrough),
        1 => Just(WireBody::Heartbeat),
    ]
}

fn stats_strategy() -> impl Strategy<Value = NodeWireStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        vec((0u32..4_096, any::<u64>()), 0..6),
    )
        .prop_map(|((fs, rt, dup, hb), (rep, rec, snap), sizes)| NodeWireStats {
            frames_sent: fs,
            retransmissions: rt,
            duplicates: dup,
            heartbeat_misses: hb,
            frames_replayed: rep,
            recovery_micros: rec,
            snapshots: snap,
            batch_sizes: sizes.into_iter().map(|(s, c)| (s as usize, c)).collect(),
        })
}

fn msg_strategy() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        1 => (peer_strategy(), any::<u64>()).prop_map(|(party, incarnation)| WireMsg::Hello {
            party,
            incarnation,
        }),
        4 => (any::<u32>(), any::<u64>(), body_strategy()).prop_map(|(link, seq, body)| {
            WireMsg::Link { link, seq, body }
        }),
        1 => Just(WireMsg::Shutdown),
        1 => stats_strategy().prop_map(WireMsg::Stats),
        1 => Just(WireMsg::TelemetryRequest),
        1 => (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            stats_strategy(),
        )
            .prop_map(|((incarnation, epoch, staged, processed, dropped), stats)| {
                WireMsg::Telemetry(NodeTelemetry {
                    incarnation,
                    epoch,
                    staged_frames: staged,
                    frames_processed: processed,
                    obs_dropped: dropped,
                    stats,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any message sequence round-trips through the incremental decoder
    /// no matter how the byte stream is chunked (short reads).
    #[test]
    fn roundtrip_under_arbitrary_chunking(
        msgs in vec(msg_strategy(), 1..8),
        chunks in chunk_strategy(),
    ) {
        let mut bytes = Vec::new();
        for m in &msgs {
            encode(m, &mut bytes);
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut sizes = chunks.into_iter().chain(std::iter::repeat(3));
        let mut at = 0;
        while at < bytes.len() {
            let n = sizes.next().unwrap().min(bytes.len() - at);
            fb.push(&bytes[at..at + n]);
            at += n;
            while let Some(m) = fb.next().map_err(|e| e.to_string())? {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(fb.pending(), 0);
    }

    /// Every strict prefix of a valid payload is rejected: the decoder
    /// consumes each field in order and a cut always lands mid-message.
    #[test]
    fn truncated_payloads_are_rejected(msg in msg_strategy(), cut in 0usize..4_096) {
        let mut bytes = Vec::new();
        encode(&msg, &mut bytes);
        let payload = &bytes[4..];
        let cut = cut % payload.len().max(1);
        if cut < payload.len() {
            prop_assert!(decode_payload(&payload[..cut]).is_err());
        }
    }

    /// Bytes past the end of a message are rejected as trailing garbage
    /// rather than silently ignored.
    #[test]
    fn trailing_junk_is_rejected(msg in msg_strategy(), junk in vec(any::<u8>(), 1..16)) {
        let mut bytes = Vec::new();
        encode(&msg, &mut bytes);
        let mut payload = bytes[4..].to_vec();
        payload.extend_from_slice(&junk);
        prop_assert!(matches!(
            decode_payload(&payload),
            Err(CodecError::Garbled(_))
        ));
    }

    /// Arbitrary garbage never panics the decoder — it either parses,
    /// waits for more bytes, or errors.
    #[test]
    fn garbled_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        let _ = decode_payload(&bytes);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        for _ in 0..1_024 {
            match fb.next() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Old-vs-new equivalence: a `Data` envelope embeds the shared frame
    /// codec's bytes verbatim after its header (length, kind, link, seq,
    /// body tag), and both decoders agree on the frame.
    #[test]
    fn data_envelope_embeds_shared_frame_codec_bytes(
        frame in frame_strategy(),
        link in any::<u32>(),
        seq in any::<u64>(),
    ) {
        use seqnet_runtime::codec::{put_frame, take_frame};
        let msg = WireMsg::Link { link, seq, body: WireBody::Data(frame.clone()) };
        let mut envelope = Vec::new();
        encode(&msg, &mut envelope);
        let frame_bytes = &envelope[4 + 1 + 4 + 8 + 1..];
        let mut standalone = Vec::new();
        put_frame(&mut standalone, &frame);
        prop_assert_eq!(frame_bytes, standalone.as_slice());
        let mut rest = frame_bytes;
        prop_assert_eq!(take_frame(&mut rest).map_err(|e| e.to_string())?, frame);
        prop_assert!(rest.is_empty());
        prop_assert_eq!(decode_payload(&envelope[4..]).map_err(|e| e.to_string())?, msg);
    }

    /// Same for coalesced runs: a `DataBatch` envelope is the header, a
    /// count, then the shared codec's frame encodings back to back.
    #[test]
    fn batch_envelope_embeds_shared_frame_codec_bytes(
        frames in vec(frame_strategy(), 0..4),
        link in any::<u32>(),
        seq in any::<u64>(),
    ) {
        use seqnet_runtime::codec::put_frame;
        let msg = WireMsg::Link { link, seq, body: WireBody::DataBatch(frames.clone()) };
        let mut envelope = Vec::new();
        encode(&msg, &mut envelope);
        let mut expect = Vec::new();
        for f in &frames {
            put_frame(&mut expect, f);
        }
        prop_assert_eq!(&envelope[4 + 1 + 4 + 8 + 1 + 4..], expect.as_slice());
        prop_assert_eq!(decode_payload(&envelope[4..]).map_err(|e| e.to_string())?, msg);
    }

    /// Hostile length prefixes (zero or beyond [`MAX_FRAME_LEN`]) are
    /// rejected before any allocation happens.
    #[test]
    fn hostile_length_prefixes_are_rejected(extra in any::<u32>(), flip in any::<bool>()) {
        let len = if flip { 0 } else { MAX_FRAME_LEN as u32 + 1 + (extra % 1_024) };
        let mut fb = FrameBuffer::new();
        fb.push(&len.to_le_bytes());
        fb.push(&[0u8; 8]);
        prop_assert!(matches!(fb.next(), Err(CodecError::BadLength(_))));
    }
}

/// Dribble stress: a message stream forced through a real socket one byte
/// at a time — every read is a short read, every write a short write — must
/// still round-trip intact.
#[test]
fn one_byte_dribble_through_a_real_socket() {
    use std::io::Write;

    let msgs: Vec<WireMsg> = vec![
        WireMsg::Hello {
            party: Peer::Node(3),
            incarnation: 2,
        },
        WireMsg::Link {
            link: 7,
            seq: 40,
            body: WireBody::DataBatch(vec![
                Frame {
                    msg: Message::new(MessageId(1), NodeId(0), GroupId(0), b"abc".to_vec()),
                    target_atom: Some(AtomId(1)),
                },
                Frame {
                    msg: Message::new(MessageId(2), NodeId(1), GroupId(0), vec![]),
                    target_atom: None,
                },
            ]),
        },
        WireMsg::Link {
            link: 7,
            seq: 41,
            body: WireBody::AckThrough,
        },
        WireMsg::Shutdown,
    ];
    let mut bytes = Vec::new();
    for m in &msgs {
        encode(m, &mut bytes);
    }

    // Write side: a raw blocking stream issuing one-byte writes with
    // Nagle off, so the reader sees a maximally fragmented stream.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let raw = std::net::TcpStream::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    let mut b = Conn::new(accepted).expect("conn");
    let writer = std::thread::spawn(move || {
        let mut stream = raw;
        let _ = stream.set_nodelay(true);
        for byte in bytes {
            stream.write_all(&[byte]).expect("write byte");
            stream.flush().ok();
        }
    });

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut got = Vec::new();
    while got.len() < msgs.len() {
        assert!(std::time::Instant::now() < deadline, "dribble stalled");
        match b.poll_read() {
            Ok(ms) => got.extend(ms),
            Err(ConnError::Closed(_)) => break,
            Err(e) => panic!("dribbled stream must stay clean: {e}"),
        }
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
    writer.join().expect("writer thread");
    assert_eq!(got, msgs);
}
