//! The globally-known membership matrix.

use crate::{GroupId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A change to the membership matrix, used to drive incremental updates of
/// the sequencing graph.
///
/// The paper models membership change as group addition/removal: "changing
/// the graph when group membership changes can be accomplished by adding a
/// group with the new membership and removing the old one" (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipDelta {
    /// A node subscribed; if the group did not exist it is created.
    Subscribed(NodeId, GroupId),
    /// A node unsubscribed; if it was the last member the group is deleted.
    Unsubscribed(NodeId, GroupId),
    /// A whole group appeared (e.g. batch workload setup).
    GroupAdded(GroupId),
    /// A whole group disappeared.
    GroupRemoved(GroupId),
}

/// Which nodes belong to which groups.
///
/// The protocol assumes this matrix is globally known (paper §3: "we assume
/// that the group membership matrix ... is globally known; it can be kept in
/// a distributed data store such as a DHT or it can be provided by the
/// underlying publish/subscribe system").
///
/// Both directions of the relation are indexed; iteration order is
/// deterministic (sorted) so that simulations are reproducible.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
///
/// let mut m = Membership::new();
/// m.subscribe(NodeId(0), GroupId(0));
/// m.subscribe(NodeId(1), GroupId(0));
/// m.subscribe(NodeId(1), GroupId(1));
/// assert_eq!(m.group_size(GroupId(0)), 2);
/// assert_eq!(m.groups_of(NodeId(1)).count(), 2);
/// let common: Vec<_> = m.common_members(GroupId(0), GroupId(1)).collect();
/// assert_eq!(common, vec![NodeId(1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Membership {
    by_group: BTreeMap<GroupId, BTreeSet<NodeId>>,
    by_node: BTreeMap<NodeId, BTreeSet<GroupId>>,
}

impl Membership {
    /// Creates an empty membership matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a matrix from an explicit list of `(group, members)` pairs.
    ///
    /// # Example
    ///
    /// ```
    /// use seqnet_membership::{Membership, NodeId, GroupId};
    /// let m = Membership::from_groups([
    ///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
    ///     (GroupId(1), vec![NodeId(1), NodeId(2)]),
    /// ]);
    /// assert_eq!(m.num_groups(), 2);
    /// ```
    pub fn from_groups<I, M>(groups: I) -> Self
    where
        I: IntoIterator<Item = (GroupId, M)>,
        M: IntoIterator<Item = NodeId>,
    {
        let mut m = Self::new();
        for (g, members) in groups {
            m.by_group.entry(g).or_default();
            for n in members {
                m.subscribe(n, g);
            }
        }
        m
    }

    /// Subscribes `node` to `group`, creating the group if needed.
    ///
    /// Returns `true` if this was a new subscription.
    pub fn subscribe(&mut self, node: NodeId, group: GroupId) -> bool {
        let inserted = self.by_group.entry(group).or_default().insert(node);
        self.by_node.entry(node).or_default().insert(group);
        inserted
    }

    /// Unsubscribes `node` from `group`.
    ///
    /// If the node was the last member, the group is deleted (paper §3.2:
    /// "If A was the only member of the group, the group is deleted").
    /// Returns `true` if the subscription existed.
    pub fn unsubscribe(&mut self, node: NodeId, group: GroupId) -> bool {
        let Some(members) = self.by_group.get_mut(&group) else {
            return false;
        };
        let removed = members.remove(&node);
        if members.is_empty() {
            self.by_group.remove(&group);
        }
        if let Some(groups) = self.by_node.get_mut(&node) {
            groups.remove(&group);
            if groups.is_empty() {
                self.by_node.remove(&node);
            }
        }
        removed
    }

    /// Removes an entire group.
    ///
    /// Returns `true` if the group existed.
    pub fn remove_group(&mut self, group: GroupId) -> bool {
        let Some(members) = self.by_group.remove(&group) else {
            return false;
        };
        for n in members {
            if let Some(groups) = self.by_node.get_mut(&n) {
                groups.remove(&group);
                if groups.is_empty() {
                    self.by_node.remove(&n);
                }
            }
        }
        true
    }

    /// Returns `true` if `node` subscribes to `group`.
    pub fn is_member(&self, node: NodeId, group: GroupId) -> bool {
        self.by_group
            .get(&group)
            .is_some_and(|members| members.contains(&node))
    }

    /// Iterates the members of `group` in ascending id order.
    pub fn members(&self, group: GroupId) -> impl Iterator<Item = NodeId> + '_ {
        self.by_group
            .get(&group)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Returns the member set of `group`, if the group exists.
    pub fn member_set(&self, group: GroupId) -> Option<&BTreeSet<NodeId>> {
        self.by_group.get(&group)
    }

    /// Iterates the groups `node` subscribes to, in ascending id order.
    pub fn groups_of(&self, node: NodeId) -> impl Iterator<Item = GroupId> + '_ {
        self.by_node
            .get(&node)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of members of `group` (0 if the group does not exist).
    pub fn group_size(&self, group: GroupId) -> usize {
        self.by_group.get(&group).map_or(0, |s| s.len())
    }

    /// Iterates all groups in ascending id order.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.by_group.keys().copied()
    }

    /// Iterates all nodes that subscribe to at least one group.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_node.keys().copied()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.by_group.len()
    }

    /// Number of nodes with at least one subscription.
    pub fn num_nodes(&self) -> usize {
        self.by_node.len()
    }

    /// Returns `true` if no node subscribes to any group.
    pub fn is_empty(&self) -> bool {
        self.by_group.is_empty()
    }

    /// Iterates the nodes that belong to both `a` and `b`, ascending.
    ///
    /// The sequencing protocol cares about groups whose intersection has two
    /// or more members ("double overlaps", paper §3).
    pub fn common_members<'a>(
        &'a self,
        a: GroupId,
        b: GroupId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sa = self.by_group.get(&a);
        let sb = self.by_group.get(&b);
        sa.into_iter()
            .flat_map(move |s| s.iter().copied())
            .filter(move |n| sb.is_some_and(|s| s.contains(n)))
    }

    /// Number of nodes common to both groups.
    pub fn overlap_size(&self, a: GroupId, b: GroupId) -> usize {
        match (self.by_group.get(&a), self.by_group.get(&b)) {
            (Some(sa), Some(sb)) => {
                // Iterate the smaller set for speed.
                let (small, large) = if sa.len() <= sb.len() { (sa, sb) } else { (sb, sa) };
                small.iter().filter(|n| large.contains(n)).count()
            }
            _ => 0,
        }
    }

    /// Returns `true` if groups `a` and `b` are *double overlapped*: they
    /// share at least two subscribers (paper §3).
    pub fn double_overlapped(&self, a: GroupId, b: GroupId) -> bool {
        if a == b {
            return false;
        }
        match (self.by_group.get(&a), self.by_group.get(&b)) {
            (Some(sa), Some(sb)) => {
                let (small, large) = if sa.len() <= sb.len() { (sa, sb) } else { (sb, sa) };
                small.iter().filter(|n| large.contains(n)).take(2).count() >= 2
            }
            _ => false,
        }
    }

    /// The maximum, over all nodes, of the number of groups a node
    /// subscribes to. This bounds the load of the most active receiver,
    /// which in turn bounds sequencing-node load (paper §1.2, §4.3).
    pub fn max_subscriptions(&self) -> usize {
        self.by_node.values().map(|s| s.len()).max().unwrap_or(0)
    }
}

impl Extend<(NodeId, GroupId)> for Membership {
    fn extend<T: IntoIterator<Item = (NodeId, GroupId)>>(&mut self, iter: T) {
        for (n, g) in iter {
            self.subscribe(n, g);
        }
    }
}

impl FromIterator<(NodeId, GroupId)> for Membership {
    fn from_iter<T: IntoIterator<Item = (NodeId, GroupId)>>(iter: T) -> Self {
        let mut m = Self::new();
        m.extend(iter);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn subscribe_and_query() {
        let mut m = Membership::new();
        assert!(m.subscribe(n(1), g(0)));
        assert!(!m.subscribe(n(1), g(0)), "duplicate subscribe is a no-op");
        assert!(m.is_member(n(1), g(0)));
        assert!(!m.is_member(n(2), g(0)));
        assert_eq!(m.group_size(g(0)), 1);
        assert_eq!(m.num_groups(), 1);
        assert_eq!(m.num_nodes(), 1);
    }

    #[test]
    fn unsubscribe_deletes_empty_group() {
        let mut m = Membership::new();
        m.subscribe(n(1), g(0));
        m.subscribe(n(2), g(0));
        assert!(m.unsubscribe(n(1), g(0)));
        assert_eq!(m.group_size(g(0)), 1);
        assert!(m.unsubscribe(n(2), g(0)));
        assert_eq!(m.num_groups(), 0, "last member leaving deletes the group");
        assert!(!m.unsubscribe(n(2), g(0)));
    }

    #[test]
    fn remove_group_updates_both_indices() {
        let mut m = Membership::new();
        m.subscribe(n(1), g(0));
        m.subscribe(n(1), g(1));
        assert!(m.remove_group(g(0)));
        assert!(!m.remove_group(g(0)));
        assert_eq!(m.groups_of(n(1)).collect::<Vec<_>>(), vec![g(1)]);
    }

    #[test]
    fn common_members_sorted() {
        let m = Membership::from_groups([
            (g(0), vec![n(3), n(1), n(2)]),
            (g(1), vec![n(2), n(4), n(3)]),
        ]);
        let common: Vec<_> = m.common_members(g(0), g(1)).collect();
        assert_eq!(common, vec![n(2), n(3)]);
        assert_eq!(m.overlap_size(g(0), g(1)), 2);
    }

    #[test]
    fn double_overlap_requires_two_common() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(2), n(3)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ]);
        assert!(!m.double_overlapped(g(0), g(1)), "single shared member");
        assert!(m.double_overlapped(g(0), g(2)), "shares n1 and n2");
        assert!(m.double_overlapped(g(1), g(2)), "shares n2 and n3");
        assert!(!m.double_overlapped(g(0), g(0)), "a group is not overlapped with itself");
    }

    #[test]
    fn overlap_with_missing_group_is_zero() {
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        assert_eq!(m.overlap_size(g(0), g(9)), 0);
        assert!(!m.double_overlapped(g(0), g(9)));
        assert_eq!(m.common_members(g(0), g(9)).count(), 0);
    }

    #[test]
    fn from_groups_keeps_empty_group() {
        let m = Membership::from_groups([(g(0), vec![])]);
        assert_eq!(m.num_groups(), 1);
        assert_eq!(m.group_size(g(0)), 0);
    }

    #[test]
    fn max_subscriptions() {
        let m: Membership = [
            (n(0), g(0)),
            (n(0), g(1)),
            (n(0), g(2)),
            (n(1), g(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.max_subscriptions(), 3);
    }

    #[test]
    fn deterministic_iteration() {
        let m = Membership::from_groups([(g(1), vec![n(5), n(3)]), (g(0), vec![n(9)])]);
        assert_eq!(m.groups().collect::<Vec<_>>(), vec![g(0), g(1)]);
        assert_eq!(m.members(g(1)).collect::<Vec<_>>(), vec![n(3), n(5)]);
    }
}
