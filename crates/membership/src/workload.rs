//! Workload generators matching the paper's evaluation setup (§4.1, §4.5).

use crate::{GroupId, Membership, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Generalized harmonic number `H_{n,1} = sum_{k=1..n} 1/k`.
///
/// The paper sizes groups proportionally to `r^-1 / H_{n,1}` where `r` is
/// the group's rank and `n` the number of hosts (§4.1).
///
/// # Example
///
/// ```
/// let h3 = seqnet_membership::workload::harmonic(3);
/// assert!((h3 - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
/// ```
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// Group-size workload with Zipf(1)-distributed sizes (paper §4.1).
///
/// Group of rank `r` (1-based) has expected size `n * r^-1 / H_{n,1}`
/// where `n` is the number of hosts. Members of each group are drawn
/// uniformly at random without replacement.
///
/// "We choose the Zipf distribution because it is known to characterize the
/// popularity of online communities."
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfGroups {
    /// Total number of hosts that may subscribe.
    pub num_nodes: usize,
    /// Number of groups to create.
    pub num_groups: usize,
    /// Minimum group size (sizes round down to at least this). The paper
    /// does not state a floor; 1 preserves the raw distribution.
    pub min_size: usize,
}

impl ZipfGroups {
    /// Creates the workload description for `num_nodes` hosts and
    /// `num_groups` groups with a minimum group size of 1.
    pub fn new(num_nodes: usize, num_groups: usize) -> Self {
        Self {
            num_nodes,
            num_groups,
            min_size: 1,
        }
    }

    /// Sets the minimum group size.
    pub fn with_min_size(mut self, min_size: usize) -> Self {
        self.min_size = min_size;
        self
    }

    /// The target size of the group with 1-based rank `r`.
    pub fn size_of_rank(&self, r: usize) -> usize {
        assert!(r >= 1, "ranks are 1-based");
        let n = self.num_nodes as f64;
        let raw = (n / r as f64 / harmonic(self.num_nodes)).round() as usize;
        raw.clamp(self.min_size, self.num_nodes)
    }

    /// Samples a membership matrix. Groups `GroupId(0..num_groups)` are
    /// created; `GroupId(i)` has rank `i + 1`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Membership {
        let mut m = Membership::new();
        let mut pool: Vec<NodeId> = (0..self.num_nodes as u32).map(NodeId).collect();
        for gi in 0..self.num_groups {
            let size = self.size_of_rank(gi + 1);
            pool.shuffle(rng);
            let gid = GroupId(gi as u32);
            for &node in pool.iter().take(size) {
                m.subscribe(node, gid);
            }
            if size == 0 {
                // Keep the group present even when empty so group counts
                // match the requested workload.
                m.subscribe(NodeId(0), gid);
                m.unsubscribe(NodeId(0), gid);
            }
        }
        m
    }
}

/// Bernoulli-membership workload parameterized by *expected occupancy*
/// (paper §4.5): each node joins each group independently with probability
/// `occupancy`. Occupancy 0 means all groups empty; 1 means every node
/// subscribes to every group.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyGroups {
    /// Total number of hosts.
    pub num_nodes: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Probability that a given node is a member of a given group.
    pub occupancy: f64,
}

impl OccupancyGroups {
    /// Creates the workload description.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is not within `[0, 1]`.
    pub fn new(num_nodes: usize, num_groups: usize, occupancy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&occupancy),
            "occupancy must be in [0, 1], got {occupancy}"
        );
        Self {
            num_nodes,
            num_groups,
            occupancy,
        }
    }

    /// Samples a membership matrix.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Membership {
        let mut m = Membership::new();
        for gi in 0..self.num_groups as u32 {
            for ni in 0..self.num_nodes as u32 {
                if rng.gen_bool(self.occupancy) {
                    m.subscribe(NodeId(ni), GroupId(gi));
                }
            }
        }
        m
    }
}

/// Geographically-correlated Zipf workload (the paper's §5 future work:
/// "measure when group membership is (or can be) geographically-
/// correlated").
///
/// Hosts are organized in consecutive-id clusters of `cluster_size`
/// (matching `seqnet_topology::ClusteredAttachment`, which assigns host
/// ids to clusters in order). Each group draws its members from a random
/// *home cluster* with probability `locality`, and uniformly otherwise.
/// `locality = 0` reduces to [`ZipfGroups`]; `locality = 1` makes groups
/// as local as their size allows (spilling to neighboring clusters when
/// the home cluster is exhausted).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedGroups {
    /// Total number of hosts.
    pub num_nodes: usize,
    /// Number of groups (Zipf(1) sizes, like [`ZipfGroups`]).
    pub num_groups: usize,
    /// Hosts per geographic cluster.
    pub cluster_size: usize,
    /// Probability that a member comes from the group's home locality.
    pub locality: f64,
}

impl CorrelatedGroups {
    /// Creates the workload description.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0` or `locality` is outside `[0, 1]`.
    pub fn new(num_nodes: usize, num_groups: usize, cluster_size: usize, locality: f64) -> Self {
        assert!(cluster_size > 0, "cluster_size must be positive");
        assert!(
            (0.0..=1.0).contains(&locality),
            "locality must be in [0, 1], got {locality}"
        );
        CorrelatedGroups {
            num_nodes,
            num_groups,
            cluster_size,
            locality,
        }
    }

    /// Samples a membership matrix.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Membership {
        let sizes = ZipfGroups::new(self.num_nodes, self.num_groups);
        let num_clusters = self.num_nodes.div_ceil(self.cluster_size);
        let mut m = Membership::new();
        for gi in 0..self.num_groups {
            let size = sizes.size_of_rank(gi + 1);
            let home = rng.gen_range(0..num_clusters);
            // Local candidates: the home cluster, then its neighbors by
            // cluster distance (spill-over for groups larger than one
            // cluster).
            let mut cluster_order: Vec<usize> = vec![home];
            for dist in 1..num_clusters {
                if home >= dist {
                    cluster_order.push(home - dist);
                }
                if home + dist < num_clusters {
                    cluster_order.push(home + dist);
                }
            }
            let mut local: Vec<NodeId> = Vec::new();
            for c in cluster_order {
                let start = c * self.cluster_size;
                let end = ((c + 1) * self.cluster_size).min(self.num_nodes);
                let mut cluster_nodes: Vec<NodeId> =
                    (start as u32..end as u32).map(NodeId).collect();
                cluster_nodes.shuffle(rng);
                local.extend(cluster_nodes);
            }
            let mut uniform: Vec<NodeId> = (0..self.num_nodes as u32).map(NodeId).collect();
            uniform.shuffle(rng);

            let gid = GroupId(gi as u32);
            let mut local_iter = local.into_iter();
            let mut uniform_iter = uniform.into_iter();
            let mut chosen = BTreeSet::new();
            while chosen.len() < size {
                let candidate = if rng.gen_bool(self.locality) {
                    local_iter.next()
                } else {
                    uniform_iter.next()
                };
                match candidate {
                    Some(n) => {
                        chosen.insert(n);
                    }
                    None => break, // one stream exhausted; the other loop arm fills in
                }
            }
            // Fill any shortfall from whatever remains.
            for n in uniform_iter {
                if chosen.len() >= size {
                    break;
                }
                chosen.insert(n);
            }
            for n in chosen {
                m.subscribe(n, gid);
            }
        }
        m
    }
}

/// Uniform-size workload: every group gets exactly `group_size` members
/// drawn uniformly without replacement. Useful for controlled tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformGroups {
    /// Total number of hosts.
    pub num_nodes: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Exact size of every group.
    pub group_size: usize,
}

impl UniformGroups {
    /// Creates the workload description.
    ///
    /// # Panics
    ///
    /// Panics if `group_size > num_nodes`.
    pub fn new(num_nodes: usize, num_groups: usize, group_size: usize) -> Self {
        assert!(
            group_size <= num_nodes,
            "group_size {group_size} exceeds num_nodes {num_nodes}"
        );
        Self {
            num_nodes,
            num_groups,
            group_size,
        }
    }

    /// Samples a membership matrix.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Membership {
        let mut m = Membership::new();
        let mut pool: Vec<NodeId> = (0..self.num_nodes as u32).map(NodeId).collect();
        for gi in 0..self.num_groups as u32 {
            pool.shuffle(rng);
            for &node in pool.iter().take(self.group_size) {
                m.subscribe(node, GroupId(gi));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H_128 ~ 5.433
        let h128 = harmonic(128);
        assert!((5.4..5.5).contains(&h128), "H_128 = {h128}");
    }

    #[test]
    fn zipf_sizes_decrease_with_rank() {
        let w = ZipfGroups::new(128, 64);
        let sizes: Vec<usize> = (1..=64).map(|r| w.size_of_rank(r)).collect();
        assert!(sizes.windows(2).all(|p| p[0] >= p[1]), "sizes nonincreasing");
        // Rank 1 expected ~ 128 / H_128 ~ 23.6
        assert!((20..=27).contains(&sizes[0]), "rank-1 size {}", sizes[0]);
    }

    #[test]
    fn zipf_sample_respects_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = ZipfGroups::new(64, 16).with_min_size(2);
        let m = w.sample(&mut rng);
        assert_eq!(m.num_groups(), 16);
        for gi in 0..16u32 {
            let want = w.size_of_rank(gi as usize + 1);
            assert_eq!(m.group_size(GroupId(gi)), want, "group {gi}");
            assert!(want >= 2);
        }
    }

    #[test]
    fn zipf_sample_is_deterministic_for_seed() {
        let w = ZipfGroups::new(32, 8);
        let a = w.sample(&mut StdRng::seed_from_u64(99));
        let b = w.sample(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = OccupancyGroups::new(16, 4, 0.0).sample(&mut rng);
        assert!(empty.is_empty());
        let full = OccupancyGroups::new(16, 4, 1.0).sample(&mut rng);
        assert_eq!(full.num_groups(), 4);
        for g in full.groups().collect::<Vec<_>>() {
            assert_eq!(full.group_size(g), 16);
        }
    }

    #[test]
    #[should_panic(expected = "occupancy must be in [0, 1]")]
    fn occupancy_validates_probability() {
        let _ = OccupancyGroups::new(4, 2, 1.5);
    }

    #[test]
    fn occupancy_mid_density_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = OccupancyGroups::new(100, 10, 0.3).sample(&mut rng);
        let total: usize = m.groups().collect::<Vec<_>>().iter().map(|&g| m.group_size(g)).sum();
        // Expect ~300 subscriptions; allow generous slack.
        assert!((200..400).contains(&total), "total subscriptions {total}");
    }

    #[test]
    fn correlated_locality_one_keeps_groups_in_clusters() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = CorrelatedGroups::new(64, 8, 8, 1.0);
        let m = w.sample(&mut rng);
        for g in m.groups().collect::<Vec<_>>() {
            let members: Vec<NodeId> = m.members(g).collect();
            if members.len() <= 8 {
                // A group that fits one cluster must span at most two
                // adjacent clusters (home + spill at boundary shuffling).
                let clusters: std::collections::BTreeSet<usize> =
                    members.iter().map(|n| n.index() / 8).collect();
                assert!(
                    clusters.len() <= 2,
                    "{g} spans {} clusters at locality 1",
                    clusters.len()
                );
            }
        }
    }

    #[test]
    fn correlated_locality_zero_matches_group_sizes() {
        let mut rng = StdRng::seed_from_u64(10);
        let w = CorrelatedGroups::new(64, 8, 8, 0.0);
        let m = w.sample(&mut rng);
        let zipf = ZipfGroups::new(64, 8);
        for gi in 0..8u32 {
            assert_eq!(
                m.group_size(GroupId(gi)),
                zipf.size_of_rank(gi as usize + 1),
                "group {gi}"
            );
        }
    }

    #[test]
    fn correlated_locality_reduces_spread() {
        // Average number of distinct clusters per group must shrink as
        // locality rises.
        let spread = |locality: f64| -> f64 {
            let mut total = 0.0;
            let mut count = 0usize;
            for seed in 0..10 {
                let mut rng = StdRng::seed_from_u64(seed);
                let m = CorrelatedGroups::new(64, 8, 8, locality).sample(&mut rng);
                for g in m.groups().collect::<Vec<_>>() {
                    let clusters: std::collections::BTreeSet<usize> =
                        m.members(g).map(|n| n.index() / 8).collect();
                    total += clusters.len() as f64;
                    count += 1;
                }
            }
            total / count as f64
        };
        let loose = spread(0.0);
        let tight = spread(1.0);
        assert!(
            tight < loose,
            "locality 1 spread {tight} should be below locality 0 spread {loose}"
        );
    }

    #[test]
    #[should_panic(expected = "locality must be in [0, 1]")]
    fn correlated_validates_locality() {
        let _ = CorrelatedGroups::new(8, 2, 4, 1.5);
    }

    #[test]
    fn uniform_group_sizes_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = UniformGroups::new(20, 5, 7).sample(&mut rng);
        for g in m.groups().collect::<Vec<_>>() {
            assert_eq!(m.group_size(g), 7);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds num_nodes")]
    fn uniform_validates_size() {
        let _ = UniformGroups::new(4, 1, 5);
    }
}
