//! Group membership substrate for decentralized pub/sub ordering.
//!
//! This crate provides the *membership matrix* — which nodes belong to which
//! groups — that the sequencing protocol of
//! [Lumezanu, Spring, Bhattacharjee, *Decentralized Message Ordering for
//! Publish/Subscribe Systems*, Middleware 2006] assumes is globally known
//! (the paper suggests a DHT or the underlying pub/sub system; we model it
//! as a shared data structure).
//!
//! It also contains the workload generators used by the paper's evaluation:
//!
//! * [`workload::ZipfGroups`] — group sizes follow a Zipf distribution with
//!   exponent 1 (paper §4.1: sizes proportional to `r^-1 / H_{n,1}`).
//! * [`workload::OccupancyGroups`] — each node joins each group
//!   independently with probability `p` ("expected occupancy", paper §4.5).
//!
//! # Example
//!
//! ```
//! use seqnet_membership::{Membership, NodeId, GroupId};
//!
//! let mut m = Membership::new();
//! let a = NodeId(0);
//! let b = NodeId(1);
//! let g = GroupId(0);
//! m.subscribe(a, g);
//! m.subscribe(b, g);
//! assert_eq!(m.members(g).count(), 2);
//! assert!(m.is_member(a, g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
mod id;
pub mod stats;
mod interest;
mod matrix;
pub mod workload;

pub use id::{GroupId, NodeId};
pub use interest::InterestRegistry;
pub use matrix::{Membership, MembershipDelta};
