//! Descriptive statistics of a membership matrix — the workload-side
//! numbers experiment reports lead with.

use crate::{GroupId, Membership};
use std::collections::BTreeMap;

/// A summary of a membership matrix's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipStats {
    /// Number of groups with at least one member.
    pub groups: usize,
    /// Number of nodes with at least one subscription.
    pub nodes: usize,
    /// Total subscriptions (sum of group sizes).
    pub subscriptions: usize,
    /// Smallest group size.
    pub min_group_size: usize,
    /// Largest group size.
    pub max_group_size: usize,
    /// Mean group size.
    pub mean_group_size: f64,
    /// Most subscriptions held by a single node.
    pub max_subscriptions_per_node: usize,
    /// Number of group pairs sharing exactly one subscriber (ambiguity-
    /// free overlaps that need no sequencing atom).
    pub single_overlaps: usize,
    /// Number of double overlaps (pairs sharing two or more subscribers).
    pub double_overlaps: usize,
}

impl MembershipStats {
    /// Computes the summary. Runs in `O(G^2 · set-intersection)`.
    ///
    /// # Example
    ///
    /// ```
    /// use seqnet_membership::{stats::MembershipStats, Membership, NodeId, GroupId};
    /// let m = Membership::from_groups([
    ///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
    ///     (GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
    ///     (GroupId(2), vec![NodeId(2)]),
    /// ]);
    /// let s = MembershipStats::compute(&m);
    /// assert_eq!(s.groups, 3);
    /// assert_eq!(s.double_overlaps, 1);
    /// assert_eq!(s.single_overlaps, 1);
    /// ```
    pub fn compute(m: &Membership) -> Self {
        let groups: Vec<GroupId> = m.groups().collect();
        let sizes: Vec<usize> = groups.iter().map(|&g| m.group_size(g)).collect();
        let subscriptions: usize = sizes.iter().sum();
        let (mut single, mut double) = (0usize, 0usize);
        for (i, &a) in groups.iter().enumerate() {
            for &b in &groups[i + 1..] {
                match m.overlap_size(a, b) {
                    0 => {}
                    1 => single += 1,
                    _ => double += 1,
                }
            }
        }
        MembershipStats {
            groups: groups.len(),
            nodes: m.num_nodes(),
            subscriptions,
            min_group_size: sizes.iter().copied().min().unwrap_or(0),
            max_group_size: sizes.iter().copied().max().unwrap_or(0),
            mean_group_size: if sizes.is_empty() {
                0.0
            } else {
                subscriptions as f64 / sizes.len() as f64
            },
            max_subscriptions_per_node: m.max_subscriptions(),
            single_overlaps: single,
            double_overlaps: double,
        }
    }
}

/// Histogram of group sizes: `size -> how many groups have it`.
pub fn group_size_histogram(m: &Membership) -> BTreeMap<usize, usize> {
    seqnet_obs::stats::freq_histogram(m.groups().map(|g| m.group_size(g)))
}

/// Histogram of per-node subscription counts: `count -> how many nodes`.
pub fn subscription_histogram(m: &Membership) -> BTreeMap<usize, usize> {
    seqnet_obs::stats::freq_histogram(m.nodes().map(|n| m.groups_of(n).count()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ZipfGroups;
    use crate::NodeId;
    use rand::{rngs::StdRng, SeedableRng};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn empty_matrix_stats() {
        let s = MembershipStats::compute(&Membership::new());
        assert_eq!(s.groups, 0);
        assert_eq!(s.subscriptions, 0);
        assert_eq!(s.mean_group_size, 0.0);
        assert_eq!(s.double_overlaps, 0);
    }

    #[test]
    fn overlap_classification() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(0), n(1)]),      // double with g0
            (g(2), vec![n(2), n(5)]),      // single with g0
            (g(3), vec![n(7)]),            // disjoint from all
        ]);
        let s = MembershipStats::compute(&m);
        assert_eq!(s.double_overlaps, 1);
        assert_eq!(s.single_overlaps, 1);
        assert_eq!(s.groups, 4);
        assert_eq!(s.min_group_size, 1);
        assert_eq!(s.max_group_size, 3);
        assert_eq!(s.max_subscriptions_per_node, 2);
    }

    #[test]
    fn histograms_cover_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ZipfGroups::new(32, 8).sample(&mut rng);
        let gh = group_size_histogram(&m);
        assert_eq!(gh.values().sum::<usize>(), m.num_groups());
        let sh = subscription_histogram(&m);
        assert_eq!(sh.values().sum::<usize>(), m.num_nodes());
        let s = MembershipStats::compute(&m);
        let weighted: usize = gh.iter().map(|(size, count)| size * count).sum();
        assert_eq!(weighted, s.subscriptions);
    }

    #[test]
    fn mean_matches_definition() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(0), n(1), n(2), n(3)]),
        ]);
        let s = MembershipStats::compute(&m);
        assert_eq!(s.mean_group_size, 3.0);
    }
}
