//! Identifier newtypes shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an end host (publisher and/or subscriber).
///
/// Node ids are dense small integers assigned by the deployment; they index
/// into the membership matrix and into vector timestamps in the baselines.
///
/// # Example
///
/// ```
/// use seqnet_membership::NodeId;
/// let n = NodeId(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(format!("{n}"), "N7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` suitable for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies a group of subscribers that share a subscription.
///
/// # Example
///
/// ```
/// use seqnet_membership::GroupId;
/// let g = GroupId(3);
/// assert_eq!(g.index(), 3);
/// assert_eq!(format!("{g}"), "G3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Returns the id as a `usize` suitable for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 42u32.into();
        assert_eq!(n, NodeId(42));
        assert_eq!(n.index(), 42);
    }

    #[test]
    fn group_id_roundtrip() {
        let g: GroupId = 9u32.into();
        assert_eq!(g, GroupId(9));
        assert_eq!(g.index(), 9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(1).to_string(), "N1");
        assert_eq!(GroupId(2).to_string(), "G2");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert!(GroupId(2) < GroupId(10));
    }
}
