//! Content-based subscriptions on top of interest groups.
//!
//! The paper's stock-ticker application (§1.1): "Consumers at different
//! brokerage firms may be interested in messages that satisfy different
//! filters — by company size, geography, or industry, for example. The
//! consumers will be members of groups based on their subscriptions, with
//! every group receiving the same set of messages."
//!
//! A [`Filter`] is a conjunction of attribute constraints; subscribers
//! sharing a filter share a group ([`ContentRouter`] keys an
//! [`crate::InterestRegistry`] by filter), and a published [`Event`] is
//! routed to every group whose filter it satisfies.

use crate::{GroupId, InterestRegistry, Membership, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// An attribute value: strings for categorical attributes, integers for
/// ordered ones (prices in cents, sizes, timestamps — integers keep
/// filters totally ordered and hashable).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A categorical value.
    Str(String),
    /// An ordered numeric value.
    Num(i64),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(n) => write!(f, "{n}"),
        }
    }
}

/// A constraint on one attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constraint {
    /// The attribute must equal the value exactly.
    Eq(Value),
    /// The attribute must be a number in `[min, max]` (inclusive).
    Range {
        /// Lower bound, inclusive.
        min: i64,
        /// Upper bound, inclusive.
        max: i64,
    },
    /// The attribute must be present with any value.
    Exists,
}

impl Constraint {
    /// Whether `value` satisfies this constraint.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Constraint::Eq(v) => v == value,
            Constraint::Range { min, max } => match value {
                Value::Num(n) => n >= min && n <= max,
                Value::Str(_) => false,
            },
            Constraint::Exists => true,
        }
    }
}

/// A conjunction of attribute constraints — one subscription.
///
/// # Example
///
/// ```
/// use seqnet_membership::filter::{Event, Filter};
///
/// let f = Filter::new()
///     .eq("sector", "tech")
///     .range("price_cents", 0, 50_000);
/// let trade = Event::new().set("sector", "tech").set("price_cents", 12_999);
/// assert!(f.matches(&trade));
/// let pricey = Event::new().set("sector", "tech").set("price_cents", 99_000);
/// assert!(!f.matches(&pricey));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Filter {
    constraints: BTreeMap<String, Constraint>,
}

impl Filter {
    /// The empty filter (matches every event).
    pub fn new() -> Self {
        Filter::default()
    }

    /// Requires `attribute == value`.
    pub fn eq(mut self, attribute: &str, value: impl Into<Value>) -> Self {
        self.constraints
            .insert(attribute.to_string(), Constraint::Eq(value.into()));
        self
    }

    /// Requires `min <= attribute <= max` (numeric).
    pub fn range(mut self, attribute: &str, min: i64, max: i64) -> Self {
        self.constraints
            .insert(attribute.to_string(), Constraint::Range { min, max });
        self
    }

    /// Requires the attribute to be present.
    pub fn exists(mut self, attribute: &str) -> Self {
        self.constraints
            .insert(attribute.to_string(), Constraint::Exists);
        self
    }

    /// Whether `event` satisfies every constraint.
    pub fn matches(&self, event: &Event) -> bool {
        self.constraints.iter().all(|(attr, c)| {
            event
                .get(attr)
                .is_some_and(|v| c.matches(v))
        })
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` for the match-everything filter.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// A published event: an attribute map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Event {
    attributes: BTreeMap<String, Value>,
}

impl Event {
    /// An empty event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Sets an attribute (builder style).
    pub fn set(mut self, attribute: &str, value: impl Into<Value>) -> Self {
        self.attributes.insert(attribute.to_string(), value.into());
        self
    }

    /// Reads an attribute.
    pub fn get(&self, attribute: &str) -> Option<&Value> {
        self.attributes.get(attribute)
    }
}

/// Content-based routing: filters map to groups (equal filters share a
/// group, per the paper's model) and events fan out to every matching
/// group.
///
/// # Example
///
/// ```
/// use seqnet_membership::filter::{ContentRouter, Event, Filter};
/// use seqnet_membership::NodeId;
///
/// let mut router = ContentRouter::new();
/// let tech = router.subscribe(NodeId(0), Filter::new().eq("sector", "tech"));
/// let cheap = router.subscribe(NodeId(1), Filter::new().range("price_cents", 0, 10_000));
///
/// let trade = Event::new().set("sector", "tech").set("price_cents", 4_200);
/// let groups = router.route(&trade);
/// assert!(groups.contains(&tech) && groups.contains(&cheap));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContentRouter {
    registry: InterestRegistry<Filter>,
}

impl ContentRouter {
    /// An empty router.
    pub fn new() -> Self {
        ContentRouter {
            registry: InterestRegistry::new(),
        }
    }

    /// Subscribes `node` with `filter`; nodes with equal filters share the
    /// returned group.
    pub fn subscribe(&mut self, node: NodeId, filter: Filter) -> GroupId {
        self.registry.subscribe(node, filter)
    }

    /// Removes a subscription; the group dissolves with its last member.
    pub fn unsubscribe(&mut self, node: NodeId, filter: &Filter) -> bool {
        self.registry.unsubscribe(node, filter)
    }

    /// The groups whose filters match `event`, in group order — the
    /// publisher sends one copy of the message to each.
    pub fn route(&self, event: &Event) -> Vec<GroupId> {
        let mut out: Vec<GroupId> = self
            .registry
            .interests()
            .filter(|(f, _)| f.matches(event))
            .map(|(_, g)| g)
            .collect();
        out.sort();
        out
    }

    /// The induced membership matrix — feed it to the ordering layer.
    pub fn membership(&self) -> &Membership {
        self.registry.membership()
    }

    /// The filter a group represents.
    pub fn filter_of(&self, group: GroupId) -> Option<&Filter> {
        self.registry.interest_of(group)
    }

    /// Number of live filter groups.
    pub fn num_groups(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn constraints_match() {
        assert!(Constraint::Eq("x".into()).matches(&"x".into()));
        assert!(!Constraint::Eq("x".into()).matches(&"y".into()));
        assert!(Constraint::Range { min: 1, max: 5 }.matches(&3.into()));
        assert!(!Constraint::Range { min: 1, max: 5 }.matches(&9.into()));
        assert!(
            !Constraint::Range { min: 1, max: 5 }.matches(&"3".into()),
            "strings never satisfy numeric ranges"
        );
        assert!(Constraint::Exists.matches(&"anything".into()));
    }

    #[test]
    fn conjunction_semantics() {
        let f = Filter::new().eq("sector", "tech").range("size", 100, 200);
        assert!(f.matches(&Event::new().set("sector", "tech").set("size", 150)));
        assert!(!f.matches(&Event::new().set("sector", "tech").set("size", 50)));
        assert!(!f.matches(&Event::new().set("sector", "oil").set("size", 150)));
        assert!(
            !f.matches(&Event::new().set("sector", "tech")),
            "missing attribute fails the conjunction"
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::new();
        assert!(f.is_empty());
        assert!(f.matches(&Event::new()));
        assert!(f.matches(&Event::new().set("x", 1)));
    }

    #[test]
    fn equal_filters_share_groups() {
        let mut router = ContentRouter::new();
        let f = Filter::new().eq("room", "rust");
        let g1 = router.subscribe(n(0), f.clone());
        let g2 = router.subscribe(n(1), f.clone());
        assert_eq!(g1, g2);
        assert_eq!(router.membership().group_size(g1), 2);
        assert_eq!(router.filter_of(g1), Some(&f));
    }

    #[test]
    fn routing_finds_all_matching_groups() {
        let mut router = ContentRouter::new();
        let tech = router.subscribe(n(0), Filter::new().eq("sector", "tech"));
        let cheap = router.subscribe(n(1), Filter::new().range("price", 0, 100));
        let any = router.subscribe(n(2), Filter::new());
        let oil = router.subscribe(n(3), Filter::new().eq("sector", "oil"));

        let event = Event::new().set("sector", "tech").set("price", 42);
        let groups = router.route(&event);
        assert!(groups.contains(&tech));
        assert!(groups.contains(&cheap));
        assert!(groups.contains(&any));
        assert!(!groups.contains(&oil));
    }

    #[test]
    fn overlapping_filters_create_double_overlaps() {
        // Two brokers with both the sector and the price filter: the two
        // filter groups double-overlap, so cross-group ordering applies —
        // "update operations that change state result in consistent
        // states" (§1.1).
        let mut router = ContentRouter::new();
        let sector = Filter::new().eq("sector", "tech");
        let price = Filter::new().range("price", 0, 100);
        for broker in [n(0), n(1)] {
            router.subscribe(broker, sector.clone());
            router.subscribe(broker, price.clone());
        }
        let m = router.membership();
        let gs = router.route(&Event::new().set("sector", "tech").set("price", 1));
        assert_eq!(gs.len(), 2);
        assert!(m.double_overlapped(gs[0], gs[1]));
    }

    #[test]
    fn unsubscribe_dissolves_empty_groups() {
        let mut router = ContentRouter::new();
        let f = Filter::new().exists("presence");
        router.subscribe(n(0), f.clone());
        assert_eq!(router.num_groups(), 1);
        assert!(router.unsubscribe(n(0), &f));
        assert_eq!(router.num_groups(), 0);
        assert!(router.route(&Event::new().set("presence", 1)).is_empty());
    }
}
