//! Mapping application-level *interests* onto groups.
//!
//! "Subscribers join groups that represent interests" (paper §1): a group
//! is formed of all subscribers that share a common subscription. This
//! registry performs that mapping — the first subscriber to a new interest
//! creates its group, the last to leave deletes it — exactly the group
//! add/remove operations the sequencing graph reacts to (§3.2).

use crate::{GroupId, Membership, NodeId};
use std::collections::BTreeMap;

/// Maps interests (any ordered key type: topic strings, filter values,
/// region coordinates, …) to groups, maintaining the membership matrix.
///
/// # Example
///
/// ```
/// use seqnet_membership::{InterestRegistry, NodeId};
///
/// let mut reg = InterestRegistry::new();
/// let tech = reg.subscribe(NodeId(0), "sector:tech");
/// assert_eq!(reg.subscribe(NodeId(1), "sector:tech"), tech, "same interest, same group");
/// let energy = reg.subscribe(NodeId(1), "sector:energy");
/// assert_ne!(tech, energy);
/// assert_eq!(reg.membership().group_size(tech), 2);
///
/// // Last member leaving deletes the group; the interest can later be
/// // re-created (with a fresh group id).
/// assert!(reg.unsubscribe(NodeId(1), &"sector:energy"));
/// assert_eq!(reg.group_of(&"sector:energy"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterestRegistry<F: Ord> {
    groups: BTreeMap<F, GroupId>,
    interests: BTreeMap<GroupId, F>,
    membership: Membership,
    next_id: u32,
}

impl<F: Ord + Clone> InterestRegistry<F> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        InterestRegistry {
            groups: BTreeMap::new(),
            interests: BTreeMap::new(),
            membership: Membership::new(),
            next_id: 0,
        }
    }

    /// Subscribes `node` to `interest`, creating the interest's group on
    /// first use ("When a subscriber node A adds a new subscription, if
    /// there is no other node with the same subscription, a new group is
    /// created with A as its only member", §3.2). Returns the group.
    pub fn subscribe(&mut self, node: NodeId, interest: F) -> GroupId {
        let group = match self.groups.get(&interest) {
            Some(&g) => g,
            None => {
                let g = GroupId(self.next_id);
                self.next_id += 1;
                self.groups.insert(interest.clone(), g);
                self.interests.insert(g, interest);
                g
            }
        };
        self.membership.subscribe(node, group);
        group
    }

    /// Unsubscribes `node` from `interest`; deletes the group when the
    /// last member leaves. Returns `true` if the subscription existed.
    pub fn unsubscribe(&mut self, node: NodeId, interest: &F) -> bool {
        let Some(&group) = self.groups.get(interest) else {
            return false;
        };
        let removed = self.membership.unsubscribe(node, group);
        if removed && self.membership.group_size(group) == 0 {
            self.groups.remove(interest);
            self.interests.remove(&group);
        }
        removed
    }

    /// The group currently representing `interest`, if any node holds it.
    pub fn group_of(&self, interest: &F) -> Option<GroupId> {
        self.groups.get(interest).copied()
    }

    /// The interest a group represents.
    pub fn interest_of(&self, group: GroupId) -> Option<&F> {
        self.interests.get(&group)
    }

    /// The membership matrix induced by the current subscriptions — feed
    /// this to the graph builder / ordering engine.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Iterates `(interest, group)` pairs in interest order.
    pub fn interests(&self) -> impl Iterator<Item = (&F, GroupId)> {
        self.groups.iter().map(|(f, &g)| (f, g))
    }

    /// Number of live interests (== live groups).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when nobody subscribes to anything.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn same_interest_shares_a_group() {
        let mut reg = InterestRegistry::new();
        let a = reg.subscribe(n(0), "nasdaq");
        let b = reg.subscribe(n(1), "nasdaq");
        assert_eq!(a, b);
        assert_eq!(reg.membership().group_size(a), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_interests_get_distinct_groups() {
        let mut reg = InterestRegistry::new();
        let a = reg.subscribe(n(0), "alpha");
        let b = reg.subscribe(n(0), "beta");
        assert_ne!(a, b);
        assert_eq!(reg.interest_of(a), Some(&"alpha"));
        assert_eq!(reg.interest_of(b), Some(&"beta"));
        assert_eq!(reg.membership().groups_of(n(0)).count(), 2);
    }

    #[test]
    fn last_leave_deletes_interest() {
        let mut reg = InterestRegistry::new();
        let g = reg.subscribe(n(0), 42u32);
        reg.subscribe(n(1), 42u32);
        assert!(reg.unsubscribe(n(0), &42));
        assert_eq!(reg.group_of(&42), Some(g), "one member remains");
        assert!(reg.unsubscribe(n(1), &42));
        assert_eq!(reg.group_of(&42), None);
        assert!(reg.is_empty());
        assert!(!reg.unsubscribe(n(1), &42), "already gone");
    }

    #[test]
    fn recreated_interest_gets_fresh_group() {
        // Fresh ids keep old sequence spaces dead (the termination-message
        // semantics of §3.2 end a group's sequence space for good).
        let mut reg = InterestRegistry::new();
        let first = reg.subscribe(n(0), "room");
        reg.unsubscribe(n(0), &"room");
        let second = reg.subscribe(n(1), "room");
        assert_ne!(first, second);
    }

    #[test]
    fn interests_iterate_in_order() {
        let mut reg = InterestRegistry::new();
        reg.subscribe(n(0), "b");
        reg.subscribe(n(0), "a");
        let keys: Vec<&&str> = reg.interests().map(|(f, _)| f).collect();
        assert_eq!(keys, vec![&"a", &"b"]);
    }

    #[test]
    fn registry_drives_overlap_formation() {
        // Two brokers sharing two sector filters create a double overlap.
        let mut reg = InterestRegistry::new();
        for node in [n(0), n(1)] {
            reg.subscribe(node, "tech");
            reg.subscribe(node, "energy");
        }
        let m = reg.membership();
        let tech = reg.group_of(&"tech").unwrap();
        let energy = reg.group_of(&"energy").unwrap();
        assert!(m.double_overlapped(tech, energy));
    }
}
