//! Property-based tests of the membership substrate: the matrix's two
//! indices stay consistent under arbitrary operation sequences, filters
//! behave like conjunctions, and workload statistics add up.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_membership::filter::{Event, Filter};
use seqnet_membership::stats::{group_size_histogram, subscription_histogram, MembershipStats};
use seqnet_membership::{GroupId, InterestRegistry, Membership, NodeId};

#[derive(Debug, Clone)]
enum Op {
    Subscribe(u32, u32),
    Unsubscribe(u32, u32),
    RemoveGroup(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..12, 0u32..6).prop_map(|(n, g)| Op::Subscribe(n, g)),
        2 => (0u32..12, 0u32..6).prop_map(|(n, g)| Op::Unsubscribe(n, g)),
        1 => (0u32..6).prop_map(Op::RemoveGroup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both directions of the membership relation agree after any
    /// operation sequence, and empty groups/nodes never linger.
    #[test]
    fn matrix_indices_stay_consistent(ops in vec(op_strategy(), 0..80)) {
        let mut m = Membership::new();
        for op in ops {
            match op {
                Op::Subscribe(n, g) => {
                    m.subscribe(NodeId(n), GroupId(g));
                }
                Op::Unsubscribe(n, g) => {
                    m.unsubscribe(NodeId(n), GroupId(g));
                }
                Op::RemoveGroup(g) => {
                    m.remove_group(GroupId(g));
                }
            }
        }
        // Forward and reverse agree.
        for g in m.groups().collect::<Vec<_>>() {
            prop_assert!(m.group_size(g) > 0, "empty group {} lingered", g);
            for node in m.members(g).collect::<Vec<_>>() {
                prop_assert!(m.groups_of(node).any(|x| x == g));
                prop_assert!(m.is_member(node, g));
            }
        }
        for node in m.nodes().collect::<Vec<_>>() {
            prop_assert!(m.groups_of(node).count() > 0, "empty node {} lingered", node);
            for g in node_groups(&m, node) {
                prop_assert!(m.members(g).any(|x| x == node));
            }
        }
        // Stats stay additive.
        let s = MembershipStats::compute(&m);
        prop_assert_eq!(
            s.subscriptions,
            group_size_histogram(&m).iter().map(|(k, v)| k * v).sum::<usize>()
        );
        prop_assert_eq!(
            s.subscriptions,
            subscription_histogram(&m).iter().map(|(k, v)| k * v).sum::<usize>()
        );
    }

    /// Overlap symmetry and bounds.
    #[test]
    fn overlap_size_is_symmetric(ops in vec(op_strategy(), 0..60)) {
        let mut m = Membership::new();
        for op in ops {
            if let Op::Subscribe(n, g) = op {
                m.subscribe(NodeId(n), GroupId(g));
            }
        }
        let groups: Vec<GroupId> = m.groups().collect();
        for &a in &groups {
            for &b in &groups {
                prop_assert_eq!(m.overlap_size(a, b), m.overlap_size(b, a));
                prop_assert!(m.overlap_size(a, b) <= m.group_size(a).min(m.group_size(b)));
                if a != b {
                    prop_assert_eq!(
                        m.double_overlapped(a, b),
                        m.overlap_size(a, b) >= 2
                    );
                }
            }
        }
    }

    /// The interest registry's induced matrix matches its subscriptions.
    #[test]
    fn interest_registry_tracks_membership(
        subs in vec((0u32..10, 0u8..5), 0..40),
        unsubs in vec((0u32..10, 0u8..5), 0..40),
    ) {
        let mut reg = InterestRegistry::new();
        for &(n, f) in &subs {
            reg.subscribe(NodeId(n), f);
        }
        for &(n, f) in &unsubs {
            reg.unsubscribe(NodeId(n), &f);
        }
        for (interest, group) in reg.interests().map(|(f, g)| (*f, g)).collect::<Vec<_>>() {
            prop_assert_eq!(reg.interest_of(group), Some(&interest));
            prop_assert!(reg.membership().group_size(group) > 0);
        }
        prop_assert_eq!(reg.len(), reg.membership().num_groups());
    }

    /// A filter is a conjunction: adding a constraint never widens the
    /// match set.
    #[test]
    fn filters_are_monotone_conjunctions(
        sector in "[a-c]",
        lo in 0i64..50,
        width in 0i64..50,
        ev_sector in "[a-d]",
        ev_price in 0i64..120,
    ) {
        let base = Filter::new().eq("sector", sector.as_str());
        let narrowed = base.clone().range("price", lo, lo + width);
        let event = Event::new().set("sector", ev_sector.as_str()).set("price", ev_price);
        if narrowed.matches(&event) {
            prop_assert!(base.matches(&event), "narrowing widened the match set");
        }
        // And the range constraint behaves as an interval.
        prop_assert_eq!(
            narrowed.matches(&event),
            base.matches(&event) && (lo..=lo + width).contains(&ev_price)
        );
    }
}

fn node_groups(m: &Membership, node: NodeId) -> Vec<GroupId> {
    m.groups_of(node).collect()
}
