//! Property-based tests: for *any* membership matrix, the builder produces
//! a graph satisfying C1 and C2, and the structural metrics stay within
//! their analytical bounds.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{stats, Colocation, GraphBuilder, OverlapSet};

fn membership_strategy() -> impl Strategy<Value = Membership> {
    (2usize..=12, 1usize..=8).prop_flat_map(|(nodes, groups)| {
        vec(vec(0u32..nodes as u32, 1..=8), groups).prop_map(move |group_members| {
            let mut m = Membership::new();
            for (gi, members) in group_members.iter().enumerate() {
                for &n in members {
                    m.subscribe(NodeId(n), GroupId(gi as u32));
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// C1 and C2 hold for every constructed graph, optimized or not.
    #[test]
    fn builder_always_satisfies_c1_c2(m in membership_strategy()) {
        for builder in [GraphBuilder::new(), GraphBuilder::new().without_optimization()] {
            let graph = builder.build(&m);
            graph.validate_against(&m).map_err(|e| {
                TestCaseError::fail(format!("invalid graph: {e}"))
            })?;
        }
    }

    /// One atom per double overlap, never more, never fewer.
    #[test]
    fn atom_count_equals_overlap_count(m in membership_strategy()) {
        let overlaps = OverlapSet::compute(&m);
        let graph = GraphBuilder::new().build(&m);
        prop_assert_eq!(graph.num_overlap_atoms(), overlaps.len());
    }

    /// A group's path length is bounded by the total number of overlap
    /// atoms, and its stamper count by the number of other groups
    /// ("the path length through the sequencing network is bounded by the
    /// total number of groups", §4.4).
    #[test]
    fn path_lengths_bounded(m in membership_strategy()) {
        let graph = GraphBuilder::new().build(&m);
        let num_groups = m.num_groups();
        for (g, path) in graph.paths() {
            let stampers = graph.stampers(g).len();
            prop_assert!(stampers <= num_groups.saturating_sub(1).max(1),
                "{} has {} stampers for {} groups", g, stampers, num_groups);
            prop_assert!(path.len() <= graph.num_atoms());
        }
    }

    /// Co-location never assigns an atom twice and never drops a live one;
    /// every node's stress lies in (0, 1].
    #[test]
    fn colocation_partitions_atoms(m in membership_strategy(), seed in any::<u64>()) {
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(seed));
        let mut seen = std::collections::BTreeSet::new();
        for node in coloc.nodes() {
            for &a in &node.atoms {
                prop_assert!(seen.insert(a), "atom assigned twice");
            }
        }
        let live = graph.atoms().iter().filter(|a| !graph.is_retired(a.id)).count();
        prop_assert_eq!(seen.len(), live);
        for s in stats::node_stress(&graph, &coloc) {
            prop_assert!(s > 0.0 && s <= 1.0, "stress {} out of range", s);
        }
    }

    /// The relevant atoms of a node are exactly the atoms whose overlap
    /// contains it — and the node belongs to both of each such atom's
    /// groups (so it observes every number the atom assigns).
    #[test]
    fn relevant_atoms_are_observable(m in membership_strategy()) {
        let graph = GraphBuilder::new().build(&m);
        for node in m.nodes().collect::<Vec<_>>() {
            for atom_id in graph.relevant_atoms(node) {
                let overlap = graph.atom(atom_id).overlap().expect("relevant => overlap");
                prop_assert!(overlap.members.contains(&node));
                prop_assert!(m.is_member(node, overlap.pair.0));
                prop_assert!(m.is_member(node, overlap.pair.1));
            }
        }
    }

    /// Incremental construction (adding groups one at a time) always
    /// produces a valid graph equivalent in atom count to batch building.
    #[test]
    fn incremental_equals_batch(m in membership_strategy()) {
        let mut dyng = GraphBuilder::new().dynamic();
        for g in m.groups().collect::<Vec<_>>() {
            let members: Vec<NodeId> = m.members(g).collect();
            dyng.add_group(g, members);
        }
        let inc = dyng.graph();
        inc.validate_against(&m).map_err(|e| {
            TestCaseError::fail(format!("incremental graph invalid: {e}"))
        })?;
        let batch = GraphBuilder::new().build(&m);
        prop_assert_eq!(inc.num_overlap_atoms(), batch.num_overlap_atoms());
    }

    /// Removing every group retires every overlap atom and leaves a valid
    /// (empty) graph.
    #[test]
    fn removing_all_groups_empties_graph(m in membership_strategy()) {
        let mut dyng = GraphBuilder::new().dynamic();
        let groups: Vec<GroupId> = m.groups().collect();
        for &g in &groups {
            let members: Vec<NodeId> = m.members(g).collect();
            dyng.add_group(g, members);
        }
        for &g in &groups {
            dyng.remove_group(g);
        }
        let graph = dyng.graph();
        graph.validate().map_err(|e| {
            TestCaseError::fail(format!("invalid after removals: {e}"))
        })?;
        prop_assert_eq!(graph.num_overlap_atoms(), 0);
        prop_assert!(dyng.membership().is_empty());
    }
}
