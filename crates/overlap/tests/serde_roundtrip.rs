//! The sequencing graph and overlap structures are serde-capable — the
//! paper assumes the "global picture" is kept in a distributed data store
//! such as a DHT (§3), which requires a wire format. Without a serialization
//! format crate in the dependency set, this verifies the derives exist
//! (compile-time) and that the structures have the value semantics a
//! store-and-reload must preserve.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::Membership;
use seqnet_overlap::{Atom, GraphBuilder, Overlap, OverlapSet, SequencingGraph};

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn structural_types_are_serde_capable() {
    assert_serde::<SequencingGraph>();
    assert_serde::<OverlapSet>();
    assert_serde::<Atom>();
    assert_serde::<Overlap>();
    assert_serde::<Membership>();
    assert_serde::<seqnet_membership::NodeId>();
    assert_serde::<seqnet_membership::GroupId>();
    assert_serde::<seqnet_overlap::AtomId>();
}

#[test]
fn graph_value_semantics() {
    // Equality and cloning are structural: a reload that reproduces the
    // fields reproduces the graph.
    let m = ZipfGroups::new(32, 8).sample(&mut StdRng::seed_from_u64(1));
    let graph = GraphBuilder::new().build(&m);
    let copy: SequencingGraph = graph.clone();
    assert_eq!(graph, copy);

    // Mutation (retirement) breaks equality — retired state is part of
    // the value and must be persisted too.
    let mut mutated = graph.clone();
    if let Some(atom) = mutated.atoms().first().map(|a| a.id) {
        mutated.retire(atom);
        assert_ne!(graph, mutated);
    }
}
