//! Atom-to-sequencing-node co-location (paper §3.4, steps 1 and 2).
//!
//! Sequencing atoms are virtual; placing related atoms on the same machine
//! avoids needless network hops. The paper's two-step heuristic:
//!
//! 1. Co-locate atoms whose overlap member-sets have a **subset**
//!    relationship.
//! 2. For each remaining overlap, pick one of its members at random and
//!    co-locate every overlap containing that member — each atom may be
//!    pulled into such a step-2 co-location only once.
//!
//! Because every atom on a sequencing node then shares at least one
//! subscriber, "the load of this member is an upper bound for the load on
//! any sequencing node that lies on the path to it" (§4.3) — the protocol's
//! scalability argument.

use crate::{AtomId, SequencingGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use seqnet_membership::NodeId;
use std::collections::BTreeMap;

/// A sequencing node: a set of co-located atoms that will share a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencingNode {
    /// The atoms hosted by this node, ascending.
    pub atoms: Vec<AtomId>,
    /// `true` if the node hosts only an ingress-only sequencer. The
    /// evaluation excludes such nodes from sequencing-node counts because
    /// they grow (at most) linearly with groups (§4.3).
    pub ingress_only: bool,
}

/// The result of co-location: a partition of atoms into sequencing nodes.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::{GraphBuilder, Colocation};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
///     (GroupId(2), vec![NodeId(0), NodeId(1)]),
/// ]);
/// let graph = GraphBuilder::new().build(&m);
/// let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(0));
/// // {0,1} ⊂ {0,1,2}: subset rule packs everything onto one node.
/// assert_eq!(coloc.num_overlap_nodes(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Colocation {
    nodes: Vec<SequencingNode>,
    atom_node: BTreeMap<AtomId, usize>,
}

impl Colocation {
    /// Runs the two-step heuristic on the live overlap atoms of `graph`.
    /// Ingress-only atoms each get a singleton node. Retired atoms are not
    /// assigned to any node.
    #[allow(clippy::needless_range_loop)] // indexed form reads clearer here
    pub fn compute<R: Rng>(graph: &SequencingGraph, rng: &mut R) -> Self {
        let overlap_atoms: Vec<AtomId> = graph
            .atoms()
            .iter()
            .filter(|a| a.overlap().is_some() && !graph.is_retired(a.id))
            .map(|a| a.id)
            .collect();

        let n = overlap_atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };

        // Step 1: subset relationship between overlap member sets.
        for i in 0..n {
            let mi = &graph.atom(overlap_atoms[i]).overlap().expect("overlap atom").members;
            for j in (i + 1)..n {
                let mj = &graph.atom(overlap_atoms[j]).overlap().expect("overlap atom").members;
                if mi.is_subset(mj) || mj.is_subset(mi) {
                    union(&mut parent, i, j);
                }
            }
        }

        // Step 2: co-locate overlaps sharing a randomly chosen member; each
        // atom participates in at most one such merge.
        let mut colocated_once = vec![false; n];
        for i in 0..n {
            if colocated_once[i] {
                continue;
            }
            let members: Vec<NodeId> = graph
                .atom(overlap_atoms[i])
                .overlap()
                .expect("overlap atom")
                .members
                .iter()
                .copied()
                .collect();
            let chosen = *members.choose(rng).expect("overlaps have members");
            colocated_once[i] = true;
            for j in 0..n {
                if j == i || colocated_once[j] {
                    continue;
                }
                let mj = &graph.atom(overlap_atoms[j]).overlap().expect("overlap atom").members;
                if mj.contains(&chosen) {
                    union(&mut parent, i, j);
                    colocated_once[j] = true;
                }
            }
        }

        // Materialize clusters.
        let mut cluster_atoms: BTreeMap<usize, Vec<AtomId>> = BTreeMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            cluster_atoms.entry(root).or_default().push(overlap_atoms[i]);
        }
        let mut nodes: Vec<SequencingNode> = cluster_atoms
            .into_values()
            .map(|atoms| SequencingNode {
                atoms,
                ingress_only: false,
            })
            .collect();

        // Singleton nodes for ingress-only atoms.
        for a in graph.atoms() {
            if a.overlap().is_none() && !graph.is_retired(a.id) {
                nodes.push(SequencingNode {
                    atoms: vec![a.id],
                    ingress_only: true,
                });
            }
        }

        let mut atom_node = BTreeMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            for &a in &node.atoms {
                atom_node.insert(a, idx);
            }
        }
        Colocation { nodes, atom_node }
    }

    /// The ablation baseline: every atom on its own sequencing node.
    pub fn scattered(graph: &SequencingGraph) -> Self {
        let nodes: Vec<SequencingNode> = graph
            .atoms()
            .iter()
            .filter(|a| !graph.is_retired(a.id))
            .map(|a| SequencingNode {
                atoms: vec![a.id],
                ingress_only: a.overlap().is_none(),
            })
            .collect();
        let mut atom_node = BTreeMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            atom_node.insert(node.atoms[0], idx);
        }
        Colocation { nodes, atom_node }
    }

    /// All sequencing nodes.
    pub fn nodes(&self) -> &[SequencingNode] {
        &self.nodes
    }

    /// The sequencing node hosting `atom`, if the atom is live.
    pub fn node_of(&self, atom: AtomId) -> Option<usize> {
        self.atom_node.get(&atom).copied()
    }

    /// Number of sequencing nodes hosting at least one overlap atom
    /// (the quantity plotted in the paper's Figures 5 and 8).
    pub fn num_overlap_nodes(&self) -> usize {
        self.nodes.iter().filter(|sn| !sn.ingress_only).count()
    }

    /// Total number of nodes including ingress-only singletons.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqnet_membership::{GroupId, Membership};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn subset_overlaps_share_a_node() {
        // overlap(G0,G1) = {0,1,2}; overlap(G0,G2) = overlap(G1,G2) = {0,1}.
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(0), n(1)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        assert_eq!(graph.num_overlap_atoms(), 3);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(1));
        assert_eq!(coloc.num_overlap_nodes(), 1, "subset rule packs all atoms");
    }

    #[test]
    fn disjoint_overlaps_stay_apart() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(0), n(1)]),
            (g(2), vec![n(10), n(11)]),
            (g(3), vec![n(10), n(11)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(1));
        assert_eq!(coloc.num_overlap_nodes(), 2, "no shared member, no merge");
    }

    #[test]
    fn shared_member_may_merge_in_step2() {
        // Two overlaps sharing node 1 but with no subset relation:
        // {0,1} and {1,2}.
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(7)]),
            (g(1), vec![n(0), n(1), n(6)]),
            (g(2), vec![n(1), n(2), n(5)]),
            (g(3), vec![n(1), n(2), n(4)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        assert_eq!(graph.num_overlap_atoms(), 2);
        // With some seed choosing node 1 for the first overlap, both merge.
        let merged = (0..64).any(|seed| {
            let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(seed));
            coloc.num_overlap_nodes() == 1
        });
        assert!(merged, "some random choice merges via the shared member");
    }

    #[test]
    fn every_live_atom_assigned_exactly_once() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2), n(3)]),
            (g(1), vec![n(0), n(1), n(4)]),
            (g(2), vec![n(2), n(3), n(4), n(0)]),
            (g(3), vec![n(5), n(6)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(5));
        let mut seen = std::collections::BTreeSet::new();
        for node in coloc.nodes() {
            for &a in &node.atoms {
                assert!(seen.insert(a), "atom {a} assigned twice");
                assert_eq!(coloc.node_of(a), Some(coloc.nodes().iter().position(|sn| sn.atoms.contains(&a)).unwrap()));
            }
        }
        let live = graph
            .atoms()
            .iter()
            .filter(|a| !graph.is_retired(a.id))
            .count();
        assert_eq!(seen.len(), live);
    }

    #[test]
    fn ingress_only_nodes_flagged_and_excluded() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(5), n(6)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(0));
        assert_eq!(coloc.num_overlap_nodes(), 0);
        assert_eq!(coloc.num_nodes(), 2);
        assert!(coloc.nodes().iter().all(|sn| sn.ingress_only));
    }

    #[test]
    fn scattered_gives_one_node_per_atom() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(0), n(1)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::scattered(&graph);
        assert_eq!(coloc.num_overlap_nodes(), 3);
    }

    #[test]
    fn retired_atoms_not_assigned() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(0), n(1)]),
        ]);
        let mut graph = GraphBuilder::new().build(&m);
        let atom = graph.atoms()[0].id;
        graph.retire(atom);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(0));
        assert_eq!(coloc.node_of(atom), None);
        assert_eq!(coloc.num_overlap_nodes(), 0);
    }

    #[test]
    fn colocated_node_atoms_share_a_member() {
        // The scalability invariant (§4.3): all overlaps co-located by the
        // heuristic's step 2 share a member. (Step-1 subset chains always
        // share members pairwise through the subset relation.)
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2), n(3), n(4)]),
            (g(1), vec![n(0), n(1), n(2), n(5)]),
            (g(2), vec![n(2), n(3), n(4), n(5)]),
            (g(3), vec![n(0), n(4), n(5), n(1)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(3));
        for node in coloc.nodes().iter().filter(|sn| sn.atoms.len() > 1) {
            // Both merge rules (subset, shared chosen member) only join
            // atoms with a common member, so within a node the
            // shares-a-member relation must be connected.
            let k = node.atoms.len();
            let mut reached = vec![false; k];
            reached[0] = true;
            let mut frontier = vec![0usize];
            while let Some(i) = frontier.pop() {
                let mi = &graph.atom(node.atoms[i]).overlap().unwrap().members;
                #[allow(clippy::needless_range_loop)] // parallel-indexing is the clear form
                for j in 0..k {
                    if !reached[j] {
                        let mj = &graph.atom(node.atoms[j]).overlap().unwrap().members;
                        if mi.intersection(mj).next().is_some() {
                            reached[j] = true;
                            frontier.push(j);
                        }
                    }
                }
            }
            assert!(
                reached.iter().all(|&r| r),
                "node {:?} not connected under shares-a-member",
                node.atoms
            );
        }
    }
}
