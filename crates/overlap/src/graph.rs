//! The sequencing graph: atoms arranged so C1 and C2 hold.

use crate::{Atom, AtomId};
#[cfg(test)]
use crate::AtomKind;
use seqnet_membership::{GroupId, Membership, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// A violation of the sequencing-graph conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A group's path references an atom that does not exist.
    UnknownAtom {
        /// The group whose path is broken.
        group: GroupId,
        /// The missing atom.
        atom: AtomId,
    },
    /// A group's path visits the same atom twice (not a simple path).
    DuplicateAtomOnPath {
        /// The group whose path is broken.
        group: GroupId,
        /// The repeated atom.
        atom: AtomId,
    },
    /// C1 violated: an atom stamps a group but is absent from its path.
    StamperNotOnPath {
        /// The group missing a stamper.
        group: GroupId,
        /// The stamping atom not on the group's path.
        atom: AtomId,
    },
    /// A group has no sequencing path at all.
    MissingPath {
        /// The group without a path.
        group: GroupId,
    },
    /// C2 violated: the undirected sequencing graph contains a cycle.
    CycleDetected {
        /// An edge that closes a cycle.
        edge: (AtomId, AtomId),
    },
    /// Two group paths traverse the same link in opposite directions,
    /// which breaks the FIFO arrival-order propagation the correctness
    /// proof relies on (paper §3.3).
    InconsistentOrientation {
        /// The link traversed both ways.
        edge: (AtomId, AtomId),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownAtom { group, atom } => {
                write!(f, "path of {group} references unknown atom {atom}")
            }
            GraphError::DuplicateAtomOnPath { group, atom } => {
                write!(f, "path of {group} visits {atom} twice")
            }
            GraphError::StamperNotOnPath { group, atom } => {
                write!(f, "atom {atom} stamps {group} but is not on its path (C1)")
            }
            GraphError::MissingPath { group } => {
                write!(f, "{group} has no sequencing path")
            }
            GraphError::CycleDetected { edge } => {
                write!(f, "edge {}-{} closes a cycle (C2)", edge.0, edge.1)
            }
            GraphError::InconsistentOrientation { edge } => {
                write!(f, "link {}-{} traversed in both directions", edge.0, edge.1)
            }
        }
    }
}

impl Error for GraphError {}

/// An arrangement of sequencing atoms plus, for every group, the ordered
/// path its messages traverse.
///
/// A group's path contains *all* atoms that stamp the group (condition C1)
/// and possibly *transit* atoms that forward without stamping — the paper's
/// proof of Theorem 1 explicitly routes message `m3` through sequencer `Q1`
/// "although it does not receive a sequence number from it."
///
/// Construct valid graphs with [`crate::GraphBuilder`]; the raw
/// [`SequencingGraph::from_paths`] constructor accepts arbitrary (possibly
/// invalid) arrangements so that C2 violations, such as the circular
/// dependency of the paper's Figure 2(a), can be demonstrated.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SequencingGraph {
    atoms: Vec<Atom>,
    paths: BTreeMap<GroupId, Vec<AtomId>>,
    retired: BTreeSet<AtomId>,
}

impl SequencingGraph {
    /// Builds a graph from explicit atoms and per-group paths, without
    /// validation. Atom ids must be dense (`atoms[i].id == AtomId(i)`).
    ///
    /// # Panics
    ///
    /// Panics if atom ids are not dense and in order.
    pub fn from_paths(
        atoms: Vec<Atom>,
        paths: impl IntoIterator<Item = (GroupId, Vec<AtomId>)>,
    ) -> Self {
        for (i, a) in atoms.iter().enumerate() {
            assert_eq!(a.id.index(), i, "atom ids must be dense and ordered");
        }
        SequencingGraph {
            atoms,
            paths: paths.into_iter().collect(),
            retired: BTreeSet::new(),
        }
    }

    /// All atoms, indexed by [`AtomId`].
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Looks up an atom.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of atoms, including ingress-only and retired ones.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of live (non-retired) overlap atoms.
    pub fn num_overlap_atoms(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| a.overlap().is_some() && !self.is_retired(a.id))
            .count()
    }

    /// The ordered sequencing path of `group` (stampers and transit atoms).
    pub fn path(&self, group: GroupId) -> Option<&[AtomId]> {
        self.paths.get(&group).map(Vec::as_slice)
    }

    /// Iterates `(group, path)` pairs in group order.
    pub fn paths(&self) -> impl Iterator<Item = (GroupId, &[AtomId])> {
        self.paths.iter().map(|(g, p)| (*g, p.as_slice()))
    }

    /// The ingress atom of `group`: the first atom on its path, which
    /// assigns the group-local sequence numbers.
    pub fn ingress(&self, group: GroupId) -> Option<AtomId> {
        self.paths.get(&group).and_then(|p| p.first().copied())
    }

    /// The atoms on `group`'s path that actually stamp its messages
    /// (i.e. overlap atoms involving the group), in path order. Retired
    /// atoms no longer stamp.
    pub fn stampers(&self, group: GroupId) -> Vec<AtomId> {
        self.paths
            .get(&group)
            .map(|p| {
                p.iter()
                    .copied()
                    .filter(|&a| {
                        !self.is_retired(a) && self.atoms[a.index()].overlap().is_some()
                            && self.atoms[a.index()].stamps(group)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The atoms *relevant* to a subscriber: overlap atoms whose common-
    /// member set contains the node. A relevant atom stamps exactly the
    /// messages of two groups the node belongs to, so the node observes
    /// every number the atom assigns and can demand continuity
    /// (paper §3.2: "This sequencer is relevant for all nodes in G0 ∩ G1;
    /// the rest need only use the group-local sequence number").
    pub fn relevant_atoms(&self, node: NodeId) -> Vec<AtomId> {
        self.atoms
            .iter()
            .filter(|a| !self.is_retired(a.id))
            .filter(|a| a.overlap().is_some_and(|o| o.members.contains(&node)))
            .map(|a| a.id)
            .collect()
    }

    /// Marks an atom retired: it keeps forwarding but stops stamping
    /// (paper §3.2's lazy removal — "adding ignored sequence numbers to a
    /// message does not hurt correctness, only efficiency").
    pub fn retire(&mut self, atom: AtomId) {
        self.retired.insert(atom);
    }

    /// Returns `true` if the atom has been retired.
    pub fn is_retired(&self, atom: AtomId) -> bool {
        self.retired.contains(&atom)
    }

    /// Removes `group`'s path (e.g. after a termination message). Atoms
    /// are not removed; callers should [`SequencingGraph::retire`] the
    /// atoms whose overlap vanished.
    pub fn remove_path(&mut self, group: GroupId) -> Option<Vec<AtomId>> {
        self.paths.remove(&group)
    }

    /// The undirected links of the sequencing graph: consecutive pairs of
    /// every path, deduplicated and normalized (`a < b`).
    pub fn edges(&self) -> BTreeSet<(AtomId, AtomId)> {
        let mut edges = BTreeSet::new();
        for path in self.paths.values() {
            for w in path.windows(2) {
                let (a, b) = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                edges.insert((a, b));
            }
        }
        edges
    }

    /// Renders the graph in Graphviz DOT format: overlap atoms as boxes
    /// labeled with their group pair and member count, ingress-only atoms
    /// as ellipses, and one dashed colored edge set per group path.
    /// Retired atoms are drawn gray.
    ///
    /// # Example
    ///
    /// ```
    /// use seqnet_membership::{Membership, NodeId, GroupId};
    /// use seqnet_overlap::GraphBuilder;
    /// let m = Membership::from_groups([
    ///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
    ///     (GroupId(1), vec![NodeId(0), NodeId(1)]),
    /// ]);
    /// let dot = GraphBuilder::new().build(&m).to_dot();
    /// assert!(dot.starts_with("digraph sequencing"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph sequencing {\n  rankdir=LR;\n");
        for atom in &self.atoms {
            let style = if self.is_retired(atom.id) {
                ", style=filled, fillcolor=gray80"
            } else {
                ""
            };
            match atom.overlap() {
                Some(o) => {
                    let _ = writeln!(
                        out,
                        "  {} [shape=box, label=\"{}\\n{} x {} ({} members)\"{}];",
                        atom.id.0,
                        atom.id,
                        o.pair.0,
                        o.pair.1,
                        o.members.len(),
                        style
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  {} [shape=ellipse, label=\"{} ingress\"{}];",
                        atom.id.0, atom.id, style
                    );
                }
            }
        }
        const COLORS: [&str; 8] = [
            "blue", "red", "darkgreen", "orange", "purple", "brown", "teal", "magenta",
        ];
        for (g, path) in &self.paths {
            let color = COLORS[g.index() % COLORS.len()];
            for w in path.windows(2) {
                let _ = writeln!(
                    out,
                    "  {} -> {} [color={color}, style=dashed, label=\"{g}\"];",
                    w[0].0, w[1].0
                );
            }
            if path.len() == 1 {
                let _ = writeln!(out, "  {} [xlabel=\"{g}\"];", path[0].0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validates conditions C1 and C2 plus structural sanity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        // Paths reference known atoms, are simple, and contain all stampers.
        for (&group, path) in &self.paths {
            let mut seen = BTreeSet::new();
            for &a in path {
                if a.index() >= self.atoms.len() {
                    return Err(GraphError::UnknownAtom { group, atom: a });
                }
                if !seen.insert(a) {
                    return Err(GraphError::DuplicateAtomOnPath { group, atom: a });
                }
            }
            for atom in &self.atoms {
                if atom.overlap().is_some() && atom.stamps(group) && !self.is_retired(atom.id)
                    && !seen.contains(&atom.id)
                {
                    return Err(GraphError::StamperNotOnPath { group, atom: atom.id });
                }
            }
        }
        // Every group that some live overlap atom stamps must have a path.
        for atom in &self.atoms {
            if self.is_retired(atom.id) {
                continue;
            }
            for g in atom.groups() {
                if !self.paths.contains_key(&g) {
                    return Err(GraphError::MissingPath { group: g });
                }
            }
        }
        // C2: the undirected link set must be a forest.
        let edges = self.edges();
        let mut uf = UnionFind::new(self.atoms.len());
        for &(a, b) in &edges {
            if !uf.union(a.index(), b.index()) {
                return Err(GraphError::CycleDetected { edge: (a, b) });
            }
        }
        // Uniform orientation: no link traversed in both directions.
        let mut oriented: HashMap<(AtomId, AtomId), bool> = HashMap::new();
        for path in self.paths.values() {
            for w in path.windows(2) {
                let (key, forward) = if w[0] < w[1] {
                    ((w[0], w[1]), true)
                } else {
                    ((w[1], w[0]), false)
                };
                if let Some(&dir) = oriented.get(&key) {
                    if dir != forward {
                        return Err(GraphError::InconsistentOrientation { edge: key });
                    }
                } else {
                    oriented.insert(key, forward);
                }
            }
        }
        Ok(())
    }

    /// Validates the graph against a membership matrix: everything
    /// [`SequencingGraph::validate`] checks, plus that each double overlap
    /// of the matrix has exactly one live atom and each group a path.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate_against(&self, membership: &Membership) -> Result<(), GraphError> {
        self.validate()?;
        let overlaps = crate::OverlapSet::compute(membership);
        for o in &overlaps {
            let found = self
                .atoms
                .iter()
                .filter(|a| !self.is_retired(a.id))
                .any(|a| a.overlap().is_some_and(|ao| ao.pair == o.pair));
            if !found {
                // Reuse StamperNotOnPath to signal a missing atom for the pair.
                return Err(GraphError::MissingPath { group: o.pair.0 });
            }
        }
        for g in membership.groups() {
            if membership.group_size(g) > 0 && !self.paths.contains_key(&g) {
                return Err(GraphError::MissingPath { group: g });
            }
        }
        Ok(())
    }
}

/// Minimal union-find for cycle detection.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Returns `false` if `a` and `b` were already connected.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Overlap;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }
    fn q(i: u32) -> AtomId {
        AtomId(i)
    }

    /// Figure 2 atoms: Q0 = G0∩G1 {A,B}, Q1 = G1∩G2 {B,C}... The paper
    /// labels Q0,Q1,Q2 as sequencers of G0,G1,G2's overlaps; we use:
    /// Q0 = overlap(G0,G1) = {A,B}, Q1 = overlap(G0,G2) = {B,D},
    /// Q2 = overlap(G1,G2) = {B,C}.
    fn fig2_atoms() -> Vec<Atom> {
        vec![
            Atom {
                id: q(0),
                kind: AtomKind::Overlap(Overlap::new(g(0), g(1), [n(0), n(1)])),
            },
            Atom {
                id: q(1),
                kind: AtomKind::Overlap(Overlap::new(g(0), g(2), [n(1), n(3)])),
            },
            Atom {
                id: q(2),
                kind: AtomKind::Overlap(Overlap::new(g(1), g(2), [n(1), n(2)])),
            },
        ]
    }

    /// Figure 2(a): triangle of atoms — violates C2.
    fn fig2a_graph() -> SequencingGraph {
        SequencingGraph::from_paths(
            fig2_atoms(),
            [
                (g(0), vec![q(0), q(1)]),
                (g(1), vec![q(0), q(2)]),
                (g(2), vec![q(1), q(2)]),
            ],
        )
    }

    /// Figure 2(b): the chain Q0–Q1–Q2 with G1 redirected through Q1 —
    /// loop-free.
    fn fig2b_graph() -> SequencingGraph {
        SequencingGraph::from_paths(
            fig2_atoms(),
            [
                (g(0), vec![q(0), q(1)]),
                (g(1), vec![q(0), q(1), q(2)]), // q1 is transit for G1
                (g(2), vec![q(1), q(2)]),
            ],
        )
    }

    #[test]
    fn fig2a_violates_c2() {
        let err = fig2a_graph().validate().unwrap_err();
        assert!(matches!(err, GraphError::CycleDetected { .. }), "{err}");
    }

    #[test]
    fn fig2b_is_valid() {
        fig2b_graph().validate().expect("fig 2(b) satisfies C1 and C2");
    }

    #[test]
    fn stampers_skip_transit_atoms() {
        let gph = fig2b_graph();
        assert_eq!(gph.stampers(g(1)), vec![q(0), q(2)], "Q1 is transit for G1");
        assert_eq!(gph.path(g(1)).unwrap(), &[q(0), q(1), q(2)]);
        assert_eq!(gph.ingress(g(1)), Some(q(0)));
    }

    #[test]
    fn relevant_atoms_by_membership() {
        let gph = fig2b_graph();
        // B (=n1) is in every overlap.
        assert_eq!(gph.relevant_atoms(n(1)), vec![q(0), q(1), q(2)]);
        // A (=n0) only in overlap(G0,G1).
        assert_eq!(gph.relevant_atoms(n(0)), vec![q(0)]);
        // C (=n2) only in overlap(G1,G2).
        assert_eq!(gph.relevant_atoms(n(2)), vec![q(2)]);
    }

    #[test]
    fn c1_violation_detected() {
        // G1's path omits Q2, which stamps it.
        let gph = SequencingGraph::from_paths(
            fig2_atoms(),
            [
                (g(0), vec![q(0), q(1)]),
                (g(1), vec![q(0)]),
                (g(2), vec![q(1), q(2)]),
            ],
        );
        let err = gph.validate().unwrap_err();
        assert_eq!(
            err,
            GraphError::StamperNotOnPath {
                group: g(1),
                atom: q(2)
            }
        );
    }

    #[test]
    fn duplicate_atom_detected() {
        let gph = SequencingGraph::from_paths(
            fig2_atoms(),
            [
                (g(0), vec![q(0), q(1), q(0)]),
                (g(1), vec![q(0), q(2)]),
                (g(2), vec![q(1), q(2)]),
            ],
        );
        assert!(matches!(
            gph.validate().unwrap_err(),
            GraphError::DuplicateAtomOnPath { .. }
        ));
    }

    #[test]
    fn orientation_conflict_detected() {
        // Two single-group ingress atoms sharing an edge in both directions.
        let atoms = vec![
            Atom {
                id: q(0),
                kind: AtomKind::Overlap(Overlap::new(g(0), g(1), [n(0), n(1)])),
            },
            Atom {
                id: q(1),
                kind: AtomKind::Overlap(Overlap::new(g(0), g(1), [n(0), n(2)])),
            },
        ];
        // Pretend both atoms stamp both groups; g0 goes q0->q1, g1 goes q1->q0.
        let gph = SequencingGraph::from_paths(
            atoms,
            [(g(0), vec![q(0), q(1)]), (g(1), vec![q(1), q(0)])],
        );
        assert!(matches!(
            gph.validate().unwrap_err(),
            GraphError::InconsistentOrientation { .. }
        ));
    }

    #[test]
    fn retiring_atom_relaxes_c1() {
        let mut gph = SequencingGraph::from_paths(
            fig2_atoms(),
            [
                (g(0), vec![q(0), q(1)]),
                (g(1), vec![q(0), q(1), q(2)]),
                (g(2), vec![q(1), q(2)]),
            ],
        );
        gph.retire(q(2));
        assert!(gph.is_retired(q(2)));
        assert_eq!(gph.stampers(g(1)), vec![q(0)], "retired atoms stop stamping");
        assert_eq!(gph.num_overlap_atoms(), 2);
        gph.validate().expect("retired atoms are exempt from C1");
    }

    #[test]
    fn edges_deduplicated() {
        let gph = fig2b_graph();
        let edges = gph.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(q(0), q(1))));
        assert!(edges.contains(&(q(1), q(2))));
    }

    #[test]
    fn validate_against_membership() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(3)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ]);
        fig2b_graph().validate_against(&m).expect("covers all overlaps");
        // A graph missing an atom for one overlap fails.
        let incomplete = SequencingGraph::from_paths(
            fig2_atoms()[..2].to_vec(),
            [
                (g(0), vec![q(0), q(1)]),
                (g(1), vec![q(0)]),
                (g(2), vec![q(1)]),
            ],
        );
        assert!(incomplete.validate_against(&m).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        SequencingGraph::default().validate().expect("empty graph");
    }
}
