//! Structural metrics of the paper's evaluation (§4.3–§4.5).

use crate::{Colocation, SequencingGraph};
use seqnet_membership::GroupId;

/// Per-sequencing-node *stress*: "the ratio between the number of groups
/// for which it has to forward messages and the total number of groups"
/// (§4.3). A node forwards a group's messages when any atom it hosts lies
/// on the group's sequencing path (stamping or transit).
///
/// Returns one value per non-ingress-only sequencing node, in node order.
pub fn node_stress(graph: &SequencingGraph, coloc: &Colocation) -> Vec<f64> {
    let total_groups = graph.paths().count();
    if total_groups == 0 {
        return Vec::new();
    }
    coloc
        .nodes()
        .iter()
        .filter(|sn| !sn.ingress_only)
        .map(|sn| {
            let forwarded = graph
                .paths()
                .filter(|(_, path)| path.iter().any(|a| sn.atoms.contains(a)))
                .count();
            forwarded as f64 / total_groups as f64
        })
        .collect()
}

/// Per-sequencing-node stress counting only *sequenced* groups: the
/// fraction of groups that some atom on the node stamps (transit traffic
/// excluded). The paper's Figure 6 plateau near 0.2 matches this reading
/// of "groups for which it has to forward messages" on dense workloads;
/// [`node_stress`] is the strict all-forwarded-traffic reading.
pub fn node_stress_stamped(graph: &SequencingGraph, coloc: &Colocation) -> Vec<f64> {
    let total_groups = graph.paths().count();
    if total_groups == 0 {
        return Vec::new();
    }
    coloc
        .nodes()
        .iter()
        .filter(|sn| !sn.ingress_only)
        .map(|sn| {
            let sequenced: std::collections::BTreeSet<GroupId> = sn
                .atoms
                .iter()
                .filter(|&&a| !graph.is_retired(a))
                .flat_map(|&a| graph.atom(a).groups())
                .collect();
            sequenced.len() as f64 / total_groups as f64
        })
        .collect()
}

/// For each group, the number of sequence numbers a message to it must
/// collect: the live stamping atoms on its path (§4.4). The paper compares
/// this against system-wide vector timestamps — the scheme wins when the
/// stamp count stays below the number of nodes.
pub fn stamps_per_group(graph: &SequencingGraph) -> Vec<(GroupId, usize)> {
    graph
        .paths()
        .map(|(g, _)| (g, graph.stampers(g).len()))
        .collect()
}

/// For each group, the full path length in atoms (stampers plus transit
/// hops) — the number of sequencing atoms a message traverses.
pub fn path_len_per_group(graph: &SequencingGraph) -> Vec<(GroupId, usize)> {
    graph.paths().map(|(g, p)| (g, p.len())).collect()
}

// The scalar helpers (nearest-rank percentile, mean, CDF) are shared
// with the other crates' stats modules; the single implementation lives
// in `seqnet_obs::stats` with the same panicking contracts these
// functions always had.
pub use seqnet_obs::stats::{cdf, mean, percentile};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqnet_membership::{Membership, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn fig2_graph() -> (Membership, SequencingGraph) {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(3)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        (m, graph)
    }

    #[test]
    fn stress_bounded_by_one() {
        let (_, graph) = fig2_graph();
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(0));
        let stress = node_stress(&graph, &coloc);
        assert_eq!(stress.len(), coloc.num_overlap_nodes());
        for s in stress {
            assert!((0.0..=1.0).contains(&s));
            assert!(s > 0.0, "every node forwards at least one group");
        }
    }

    #[test]
    fn scattered_node_stress_counts_transit() {
        let (_, graph) = fig2_graph();
        let coloc = Colocation::scattered(&graph);
        let stress = node_stress(&graph, &coloc);
        // 3 atoms on a chain; the middle atom lies on all 3 group paths
        // (one as transit), the ends on 2 each.
        let mut sorted = stress.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted.len(), 3);
        assert!((sorted[2] - 1.0).abs() < 1e-9, "middle atom forwards all groups");
        assert!((sorted[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stamped_stress_below_or_equal_full_stress() {
        let (_, graph) = fig2_graph();
        let coloc = Colocation::scattered(&graph);
        let full = node_stress(&graph, &coloc);
        let stamped = node_stress_stamped(&graph, &coloc);
        assert_eq!(full.len(), stamped.len());
        for (f, s) in full.iter().zip(&stamped) {
            assert!(s <= f, "stamped stress {s} exceeds full stress {f}");
            assert!(*s > 0.0);
        }
        // The middle atom of the fig2 chain stamps 2 of 3 groups but
        // forwards all 3.
        let mut stamped_sorted = stamped.clone();
        stamped_sorted.sort_by(f64::total_cmp);
        assert!((stamped_sorted[2] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stamps_equal_overlap_degree() {
        let (_, graph) = fig2_graph();
        for (grp, stamps) in stamps_per_group(&graph) {
            assert_eq!(stamps, 2, "{grp} overlaps both other groups");
        }
        // Path length includes the middle transit atom for one group.
        let total_path: usize = path_len_per_group(&graph).iter().map(|(_, l)| l).sum();
        assert_eq!(total_path, 2 + 2 + 3);
    }

    #[test]
    fn percentile_and_mean() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 50.0), 3.0);
        assert_eq!(percentile(&data, 100.0), 5.0);
        assert_eq!(mean(&data), 3.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let data = vec![3.0, 1.0, 2.0];
        let c = cdf(&data);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c[2], (3.0, 1.0));
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "percentile of empty data")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }
}
