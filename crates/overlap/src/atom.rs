//! Sequencing atoms and double-overlap computation.

use seqnet_membership::{GroupId, Membership, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a sequencing atom within a [`crate::SequencingGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Returns the id as a `usize` suitable for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A *double overlap*: a pair of groups sharing at least two subscribers.
///
/// "We call groups that have two or more subscribers in common *double
/// overlapped*, and our approach is to provide a sequence number space for
/// each double-overlapped set of groups" (paper §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Overlap {
    /// The overlapped group pair, normalized so `pair.0 < pair.1`.
    pub pair: (GroupId, GroupId),
    /// The common subscribers; always has at least two elements.
    pub members: BTreeSet<NodeId>,
}

impl Overlap {
    /// Creates an overlap, normalizing the pair order.
    ///
    /// # Panics
    ///
    /// Panics if the two groups are equal or fewer than two members are
    /// given (a single shared subscriber is *not* a double overlap).
    pub fn new(a: GroupId, b: GroupId, members: impl IntoIterator<Item = NodeId>) -> Self {
        assert!(a != b, "an overlap needs two distinct groups");
        let members: BTreeSet<NodeId> = members.into_iter().collect();
        assert!(
            members.len() >= 2,
            "a double overlap needs at least two common members, got {}",
            members.len()
        );
        let pair = if a < b { (a, b) } else { (b, a) };
        Overlap { pair, members }
    }

    /// Returns `true` if `group` is one of the overlapped pair.
    pub fn involves(&self, group: GroupId) -> bool {
        self.pair.0 == group || self.pair.1 == group
    }

    /// Given one group of the pair, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not part of the pair.
    pub fn other(&self, group: GroupId) -> GroupId {
        if self.pair.0 == group {
            self.pair.1
        } else if self.pair.1 == group {
            self.pair.0
        } else {
            panic!("{group} is not part of overlap {:?}", self.pair)
        }
    }
}

/// What a sequencing atom does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomKind {
    /// Sequences a double overlap: stamps every message addressed to either
    /// group of the pair.
    Overlap(Overlap),
    /// An *ingress-only* sequencer: assigns group-local numbers for a group
    /// that has no double overlaps ("Adding the first group G0 is trivial:
    /// an ingress-only sequencer is created", §3.2). Each group has at most
    /// one, so these grow linearly with groups and are excluded from the
    /// evaluation's sequencing-node counts (§4.3).
    IngressOnly(GroupId),
}

/// A sequencing atom: id plus role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// The atom's identifier within its graph.
    pub id: AtomId,
    /// The atom's role.
    pub kind: AtomKind,
}

impl Atom {
    /// The groups whose messages this atom stamps.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        let (a, b) = match &self.kind {
            AtomKind::Overlap(o) => (Some(o.pair.0), Some(o.pair.1)),
            AtomKind::IngressOnly(g) => (Some(*g), None),
        };
        a.into_iter().chain(b)
    }

    /// Returns the overlap if this is an overlap atom.
    pub fn overlap(&self) -> Option<&Overlap> {
        match &self.kind {
            AtomKind::Overlap(o) => Some(o),
            AtomKind::IngressOnly(_) => None,
        }
    }

    /// Returns `true` if this atom stamps messages of `group`.
    pub fn stamps(&self, group: GroupId) -> bool {
        match &self.kind {
            AtomKind::Overlap(o) => o.involves(group),
            AtomKind::IngressOnly(g) => *g == group,
        }
    }
}

/// All double overlaps of a membership matrix.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::OverlapSet;
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1)]),
///     (GroupId(2), vec![NodeId(9)]),
/// ]);
/// let os = OverlapSet::compute(&m);
/// assert_eq!(os.len(), 1);
/// assert!(os.overlapping(GroupId(2)).next().is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapSet {
    overlaps: Vec<Overlap>,
}

impl OverlapSet {
    /// Computes every double overlap of `membership`, in normalized pair
    /// order (deterministic).
    pub fn compute(membership: &Membership) -> Self {
        let groups: Vec<GroupId> = membership.groups().collect();
        let mut overlaps = Vec::new();
        for (i, &a) in groups.iter().enumerate() {
            for &b in &groups[i + 1..] {
                let common: BTreeSet<NodeId> = membership.common_members(a, b).collect();
                if common.len() >= 2 {
                    overlaps.push(Overlap {
                        pair: (a, b),
                        members: common,
                    });
                }
            }
        }
        OverlapSet { overlaps }
    }

    /// Number of double overlaps.
    pub fn len(&self) -> usize {
        self.overlaps.len()
    }

    /// Returns `true` if there are no double overlaps.
    pub fn is_empty(&self) -> bool {
        self.overlaps.is_empty()
    }

    /// Iterates all overlaps.
    pub fn iter(&self) -> impl Iterator<Item = &Overlap> {
        self.overlaps.iter()
    }

    /// Iterates the overlaps involving `group`.
    pub fn overlapping(&self, group: GroupId) -> impl Iterator<Item = &Overlap> {
        self.overlaps.iter().filter(move |o| o.involves(group))
    }

    /// Looks up the overlap for a specific pair (order-insensitive).
    pub fn get(&self, a: GroupId, b: GroupId) -> Option<&Overlap> {
        let pair = if a < b { (a, b) } else { (b, a) };
        self.overlaps.iter().find(|o| o.pair == pair)
    }
}

impl<'a> IntoIterator for &'a OverlapSet {
    type Item = &'a Overlap;
    type IntoIter = std::slice::Iter<'a, Overlap>;
    fn into_iter(self) -> Self::IntoIter {
        self.overlaps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    /// The paper's Figure 2 membership: G0={A,B,D}, G1={A,B,C}, G2={B,C,D}
    /// with A=0, B=1, C=2, D=3.
    fn fig2_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(3)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn fig2_has_three_overlaps() {
        let os = OverlapSet::compute(&fig2_membership());
        assert_eq!(os.len(), 3);
        assert_eq!(
            os.get(g(0), g(1)).unwrap().members,
            [n(0), n(1)].into_iter().collect()
        );
        assert_eq!(
            os.get(g(1), g(2)).unwrap().members,
            [n(1), n(2)].into_iter().collect()
        );
        assert_eq!(
            os.get(g(2), g(0)).unwrap().members,
            [n(1), n(3)].into_iter().collect()
        );
    }

    #[test]
    fn single_shared_member_is_not_double() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(1), n(2)]),
        ]);
        assert!(OverlapSet::compute(&m).is_empty());
    }

    #[test]
    fn overlap_normalizes_pair_order() {
        let o = Overlap::new(g(5), g(2), [n(0), n(1)]);
        assert_eq!(o.pair, (g(2), g(5)));
        assert_eq!(o.other(g(2)), g(5));
        assert_eq!(o.other(g(5)), g(2));
        assert!(o.involves(g(2)) && o.involves(g(5)) && !o.involves(g(7)));
    }

    #[test]
    #[should_panic(expected = "at least two common members")]
    fn overlap_requires_two_members() {
        let _ = Overlap::new(g(0), g(1), [n(0)]);
    }

    #[test]
    #[should_panic(expected = "two distinct groups")]
    fn overlap_requires_distinct_groups() {
        let _ = Overlap::new(g(0), g(0), [n(0), n(1)]);
    }

    #[test]
    fn atom_group_queries() {
        let a = Atom {
            id: AtomId(0),
            kind: AtomKind::Overlap(Overlap::new(g(0), g(1), [n(0), n(1)])),
        };
        assert_eq!(a.groups().collect::<Vec<_>>(), vec![g(0), g(1)]);
        assert!(a.stamps(g(0)) && a.stamps(g(1)) && !a.stamps(g(2)));
        assert!(a.overlap().is_some());

        let i = Atom {
            id: AtomId(1),
            kind: AtomKind::IngressOnly(g(7)),
        };
        assert_eq!(i.groups().collect::<Vec<_>>(), vec![g(7)]);
        assert!(i.stamps(g(7)) && !i.stamps(g(0)));
        assert!(i.overlap().is_none());
    }

    #[test]
    fn overlapping_filters_by_group() {
        let os = OverlapSet::compute(&fig2_membership());
        let for_g0: Vec<_> = os.overlapping(g(0)).map(|o| o.pair).collect();
        assert_eq!(for_g0, vec![(g(0), g(1)), (g(0), g(2))]);
    }

    #[test]
    fn full_occupancy_single_overlap_per_pair() {
        // Every node in every group: all pairs double overlapped.
        let nodes: Vec<NodeId> = (0..4).map(n).collect();
        let m = Membership::from_groups((0..5).map(|gi| (g(gi), nodes.clone())));
        let os = OverlapSet::compute(&m);
        assert_eq!(os.len(), 5 * 4 / 2);
    }
}
