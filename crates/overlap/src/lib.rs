//! Double-overlap detection, sequencing-graph construction, and sequencer
//! placement for decentralized pub/sub ordering.
//!
//! This crate implements the structural half of the paper:
//!
//! * [`OverlapSet`] — computes the *double overlaps*: pairs of groups that
//!   share at least two subscribers. Only messages to such groups can be
//!   observed to arrive out of order (the paper's key insight, §3), so one
//!   *sequencing atom* is instantiated per double overlap.
//! * [`SequencingGraph`] — an arrangement of atoms such that each group's
//!   atoms lie on a single path (**condition C1**) and the undirected graph
//!   is loop-free (**condition C2**). The graph also records each group's
//!   ordered *sequencing path*, including *transit* atoms the messages pass
//!   through without being stamped.
//! * [`GraphBuilder`] — constructs valid graphs from a membership matrix
//!   (the paper leaves the algorithm open; see `DESIGN.md` §3.1 for ours),
//!   supports incremental group addition and lazy removal, and optimizes
//!   atom ordering to minimize transit hops.
//! * [`colocate`] — the two-step heuristic of §3.4 that packs related atoms
//!   onto shared *sequencing nodes*.
//! * [`place`] — the per-group heuristic of §3.4 that maps sequencing nodes
//!   onto machines of the underlying topology.
//! * [`stats`] — the structural metrics of the evaluation (sequencing-node
//!   counts, stress, atoms-per-path).
//!
//! # Example
//!
//! ```
//! use seqnet_membership::{Membership, NodeId, GroupId};
//! use seqnet_overlap::{OverlapSet, GraphBuilder};
//!
//! let m = Membership::from_groups([
//!     (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(3)]),
//!     (GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
//!     (GroupId(2), vec![NodeId(1), NodeId(2), NodeId(3)]),
//! ]);
//! let overlaps = OverlapSet::compute(&m);
//! assert_eq!(overlaps.len(), 3, "three pairwise double overlaps");
//!
//! let graph = GraphBuilder::new().build(&m);
//! graph.validate().expect("C1 and C2 hold");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod build;
pub mod colocate;
pub mod place;
pub mod stats;
mod graph;

pub use atom::{Atom, AtomId, AtomKind, Overlap, OverlapSet};
pub use build::{DynamicGraph, GraphBuilder};
pub use colocate::{Colocation, SequencingNode};
pub use graph::{GraphError, SequencingGraph};
pub use place::Placement;
