//! Sequencing-graph construction.
//!
//! The paper requires a graph where each group's atoms form a single path
//! (C1) inside a loop-free undirected graph (C2) but leaves the arrangement
//! algorithm open ("We use a global picture of the sequencing graph and
//! subscription matrix state to find a new sequencer arrangement that
//! satisfies C1 and C2", §3.2). Our construction:
//!
//! 1. Partition atoms into connected components of the *shares-a-group*
//!    relation. All atoms of one group land in one component, so arranging
//!    each component separately keeps C1 satisfiable and makes the global
//!    graph a forest (C2).
//! 2. Arrange each component on a **chain** (a simple path). Any subset of
//!    a chain lies on a sub-path, so C1 holds for every group trivially,
//!    and a chain is loop-free.
//! 3. Order the chain to minimize the total *span* of groups — atoms
//!    between a group's first and last atom that do not stamp it are pure
//!    transit hops, costing latency. A greedy nearest-neighbor order is
//!    refined by a bounded local search.
//!
//! Every group traverses its chain left-to-right, so any link shared by two
//! group paths is traversed in one direction only — the uniform-orientation
//! property the correctness proof's FIFO argument needs.

use crate::{Atom, AtomId, AtomKind, Overlap, OverlapSet, SequencingGraph};
use seqnet_membership::{GroupId, Membership, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Builds valid sequencing graphs from a membership matrix.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::GraphBuilder;
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(3)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
///     (GroupId(2), vec![NodeId(1), NodeId(2), NodeId(3)]),
/// ]);
/// let graph = GraphBuilder::new().build(&m);
/// graph.validate_against(&m).expect("valid graph covering all overlaps");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphBuilder {
    optimize: bool,
    max_passes: usize,
    /// Local search is skipped above this many atoms per component to keep
    /// construction near-linear on dense workloads.
    opt_threshold: usize,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// A builder with span optimization enabled (3 passes, threshold 800).
    pub fn new() -> Self {
        GraphBuilder {
            optimize: true,
            max_passes: 3,
            opt_threshold: 800,
        }
    }

    /// Disables the local-search pass; chains keep their greedy order.
    /// Used by the ablation benchmarks.
    pub fn without_optimization(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Sets the maximum number of local-search passes.
    pub fn with_max_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes;
        self
    }

    /// Builds a sequencing graph for `membership`.
    ///
    /// The result satisfies C1 and C2 by construction
    /// ([`SequencingGraph::validate_against`] is cheap insurance in tests).
    pub fn build(&self, membership: &Membership) -> SequencingGraph {
        let (atoms, chains, ingress_only) = self.build_parts(membership);
        let mut paths: BTreeMap<GroupId, Vec<AtomId>> = BTreeMap::new();
        for chain in &chains {
            slice_paths(chain, &atoms, &mut paths);
        }
        for (g, ing) in ingress_only {
            paths.insert(g, vec![ing]);
        }
        SequencingGraph::from_paths(atoms, paths)
    }

    /// Shared construction core: atoms, chains of overlap atoms, and
    /// ingress-only atoms per overlap-free group.
    fn build_parts(
        &self,
        membership: &Membership,
    ) -> (Vec<Atom>, Vec<Vec<AtomId>>, BTreeMap<GroupId, AtomId>) {
        let overlaps = OverlapSet::compute(membership);
        let mut atoms: Vec<Atom> = overlaps
            .iter()
            .enumerate()
            .map(|(i, o)| Atom {
                id: AtomId(i as u32),
                kind: AtomKind::Overlap(o.clone()),
            })
            .collect();

        let group_atoms = index_group_atoms(&atoms);
        let chains: Vec<Vec<AtomId>> = components(&atoms, &group_atoms)
            .into_iter()
            .map(|comp| {
                let mut chain = greedy_chain(&comp, &atoms, &group_atoms);
                if self.optimize && chain.len() <= self.opt_threshold {
                    local_search(&mut chain, &atoms, self.max_passes);
                }
                chain
            })
            .collect();

        // Ingress-only sequencers for groups without overlap atoms.
        let covered: BTreeSet<GroupId> = group_atoms.keys().copied().collect();
        let mut ingress_only = BTreeMap::new();
        for g in membership.groups() {
            if membership.group_size(g) == 0 || covered.contains(&g) {
                continue;
            }
            let id = AtomId(atoms.len() as u32);
            atoms.push(Atom {
                id,
                kind: AtomKind::IngressOnly(g),
            });
            ingress_only.insert(g, id);
        }
        (atoms, chains, ingress_only)
    }
}

/// For each group, its atoms (stable order).
fn index_group_atoms(atoms: &[Atom]) -> BTreeMap<GroupId, Vec<AtomId>> {
    let mut map: BTreeMap<GroupId, Vec<AtomId>> = BTreeMap::new();
    for a in atoms {
        for g in a.groups() {
            map.entry(g).or_default().push(a.id);
        }
    }
    map
}

/// Connected components of the shares-a-group relation, each sorted.
fn components(atoms: &[Atom], group_atoms: &BTreeMap<GroupId, Vec<AtomId>>) -> Vec<Vec<AtomId>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for members in group_atoms.values() {
        for w in members.windows(2) {
            let (a, b) = (find(&mut parent, w[0].index()), find(&mut parent, w[1].index()));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut comps: BTreeMap<usize, Vec<AtomId>> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        comps.entry(root).or_default().push(AtomId(i as u32));
    }
    comps.into_values().collect()
}

/// Nearest-neighbor chain construction: repeatedly extend the tail with an
/// unplaced atom sharing a group with it, preferring to finish groups with
/// few remaining atoms so that their spans close early.
fn greedy_chain(
    component: &[AtomId],
    atoms: &[Atom],
    group_atoms: &BTreeMap<GroupId, Vec<AtomId>>,
) -> Vec<AtomId> {
    if component.is_empty() {
        return Vec::new();
    }
    let in_component: BTreeSet<AtomId> = component.iter().copied().collect();
    let mut unplaced: BTreeSet<AtomId> = in_component.clone();
    // Remaining unplaced atoms per group, to prefer closing small groups.
    let mut remaining: BTreeMap<GroupId, usize> = BTreeMap::new();
    for (g, members) in group_atoms {
        let count = members.iter().filter(|a| in_component.contains(a)).count();
        if count > 0 {
            remaining.insert(*g, count);
        }
    }

    // Start from the atom with the fewest partners (a natural endpoint).
    let start = *component
        .iter()
        .min_by_key(|&&a| {
            atoms[a.index()]
                .groups()
                .map(|g| remaining.get(&g).copied().unwrap_or(0))
                .sum::<usize>()
        })
        .expect("component is non-empty");

    let mut chain = Vec::with_capacity(component.len());
    fn place(
        a: AtomId,
        atoms: &[Atom],
        chain: &mut Vec<AtomId>,
        unplaced: &mut BTreeSet<AtomId>,
        remaining: &mut BTreeMap<GroupId, usize>,
    ) {
        chain.push(a);
        unplaced.remove(&a);
        for g in atoms[a.index()].groups() {
            if let Some(c) = remaining.get_mut(&g) {
                *c -= 1;
            }
        }
    }
    place(start, atoms, &mut chain, &mut unplaced, &mut remaining);

    while !unplaced.is_empty() {
        let tail = *chain.last().expect("chain is non-empty");
        // Candidates sharing a group with the tail.
        let mut best: Option<(usize, AtomId)> = None;
        for g in atoms[tail.index()].groups() {
            for &cand in &group_atoms[&g] {
                if unplaced.contains(&cand) {
                    // Prefer candidates from nearly-finished groups.
                    let score = atoms[cand.index()]
                        .groups()
                        .map(|cg| remaining.get(&cg).copied().unwrap_or(0))
                        .min()
                        .unwrap_or(usize::MAX);
                    if best.is_none_or(|(s, b)| (score, cand) < (s, b)) {
                        best = Some((score, cand));
                    }
                }
            }
        }
        let next = match best {
            Some((_, cand)) => cand,
            None => {
                // Tail's groups are exhausted; reconnect at the latest
                // placed atom that still has an unplaced partner.
                let mut found = None;
                'outer: for &placed in chain.iter().rev() {
                    for g in atoms[placed.index()].groups() {
                        for &cand in &group_atoms[&g] {
                            if unplaced.contains(&cand) {
                                found = Some(cand);
                                break 'outer;
                            }
                        }
                    }
                }
                found.expect("component is connected, a partner must exist")
            }
        };
        place(next, atoms, &mut chain, &mut unplaced, &mut remaining);
    }
    chain
}

/// Sum over groups of the span their atoms occupy on the chain. Spans in
/// excess of the group's atom count are transit hops.
fn total_span(chain: &[AtomId], atoms: &[Atom]) -> usize {
    let mut first: BTreeMap<GroupId, usize> = BTreeMap::new();
    let mut last: BTreeMap<GroupId, usize> = BTreeMap::new();
    for (i, &a) in chain.iter().enumerate() {
        for g in atoms[a.index()].groups() {
            first.entry(g).or_insert(i);
            last.insert(g, i);
        }
    }
    first.iter().map(|(g, &f)| last[g] - f).sum()
}

/// Bounded best-improvement local search: try relocating each atom next to
/// a partner (an atom sharing one of its groups) and keep the best
/// span-reducing move; repeat for at most `max_passes` passes.
fn local_search(chain: &mut Vec<AtomId>, atoms: &[Atom], max_passes: usize) {
    if chain.len() < 3 {
        return;
    }
    let mut current = total_span(chain, atoms);
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..chain.len() {
            let a = chain[i];
            // Candidate destinations: adjacent to any partner of `a`.
            let groups: Vec<GroupId> = atoms[a.index()].groups().collect();
            let mut candidates: BTreeSet<usize> = BTreeSet::new();
            for (j, &b) in chain.iter().enumerate() {
                if j != i && atoms[b.index()].groups().any(|g| groups.contains(&g)) {
                    candidates.insert(j);
                    candidates.insert(j + 1);
                }
            }
            let mut best: Option<(usize, usize)> = None; // (span, dest)
            for &dest in &candidates {
                if dest == i || dest == i + 1 {
                    continue;
                }
                let mut trial = chain.clone();
                let atom = trial.remove(i);
                let adj = if dest > i { dest - 1 } else { dest };
                trial.insert(adj, atom);
                let span = total_span(&trial, atoms);
                if span < current && best.is_none_or(|(s, _)| span < s) {
                    best = Some((span, dest));
                }
            }
            if let Some((span, dest)) = best {
                let atom = chain.remove(i);
                let adj = if dest > i { dest - 1 } else { dest };
                chain.insert(adj, atom);
                current = span;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Derives each group's path (the sub-chain between its first and last
/// atom) and adds it to `paths`.
fn slice_paths(chain: &[AtomId], atoms: &[Atom], paths: &mut BTreeMap<GroupId, Vec<AtomId>>) {
    let mut first: BTreeMap<GroupId, usize> = BTreeMap::new();
    let mut last: BTreeMap<GroupId, usize> = BTreeMap::new();
    for (i, &a) in chain.iter().enumerate() {
        for g in atoms[a.index()].groups() {
            first.entry(g).or_insert(i);
            last.insert(g, i);
        }
    }
    for (g, &f) in &first {
        let l = last[g];
        paths.insert(*g, chain[f..=l].to_vec());
    }
}

/// A sequencing graph that tracks membership changes incrementally.
///
/// Adding a group merges the affected chains and inserts the new atoms next
/// to their partner groups' spans; removing a group retires its atoms
/// lazily (they keep forwarding as transit hops), mirroring the paper's
/// termination-message semantics (§3.2). Group membership *changes* are
/// modeled as remove + add, as the paper prescribes.
///
/// # Example
///
/// ```
/// use seqnet_membership::{NodeId, GroupId};
/// use seqnet_overlap::GraphBuilder;
/// let mut dyng = GraphBuilder::new().dynamic();
/// dyng.add_group(GroupId(0), [NodeId(0), NodeId(1), NodeId(2)]);
/// dyng.add_group(GroupId(1), [NodeId(1), NodeId(2)]);
/// let graph = dyng.graph();
/// graph.validate().expect("incrementally built graph is valid");
/// assert_eq!(graph.num_overlap_atoms(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    membership: Membership,
    atoms: Vec<Atom>,
    chains: Vec<Vec<AtomId>>,
    retired: BTreeSet<AtomId>,
    /// Ingress-only atom of groups that currently lack overlap atoms.
    ingress_only: BTreeMap<GroupId, AtomId>,
    optimize: bool,
    max_passes: usize,
    opt_threshold: usize,
}

impl GraphBuilder {
    /// Creates an empty [`DynamicGraph`] sharing this builder's
    /// optimization settings.
    pub fn dynamic(&self) -> DynamicGraph {
        DynamicGraph {
            membership: Membership::new(),
            atoms: Vec::new(),
            chains: Vec::new(),
            retired: BTreeSet::new(),
            ingress_only: BTreeMap::new(),
            optimize: self.optimize,
            max_passes: self.max_passes,
            opt_threshold: self.opt_threshold,
        }
    }
}

impl DynamicGraph {
    /// The current membership matrix.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Total atoms ever created (including retired ones).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of retired atoms still occupying chain slots.
    pub fn num_retired(&self) -> usize {
        self.retired.len()
    }

    /// Adds a group with the given members, updating the graph.
    ///
    /// # Panics
    ///
    /// Panics if the group already exists.
    pub fn add_group(&mut self, group: GroupId, members: impl IntoIterator<Item = NodeId>) {
        assert!(
            self.membership.group_size(group) == 0,
            "{group} already exists; remove it first (membership change = remove + add)"
        );
        let members: Vec<NodeId> = members.into_iter().collect();
        for &m in &members {
            self.membership.subscribe(m, group);
        }

        // New overlaps: only pairs involving the new group can change.
        let mut new_atoms: Vec<(GroupId, Overlap)> = Vec::new();
        for other in self.membership.groups().collect::<Vec<_>>() {
            if other == group {
                continue;
            }
            let common: BTreeSet<NodeId> = self.membership.common_members(group, other).collect();
            if common.len() >= 2 {
                new_atoms.push((other, Overlap::new(group, other, common)));
            }
        }

        if new_atoms.is_empty() {
            // No overlaps: the group gets an ingress-only sequencer.
            let id = self.fresh_atom(AtomKind::IngressOnly(group));
            self.ingress_only.insert(group, id);
            return;
        }

        // Merge every chain hosting a live atom of a partner group.
        let mut involved: BTreeSet<usize> = BTreeSet::new();
        for (other, _) in &new_atoms {
            if let Some(ci) = self.chain_of_group(*other) {
                involved.insert(ci);
            }
        }
        let mut merged: Vec<AtomId> = Vec::new();
        for &ci in &involved {
            merged.extend(std::mem::take(&mut self.chains[ci]));
        }
        self.chains.retain(|c| !c.is_empty());

        // Insert each new atom right after its partner group's last live
        // atom in the merged chain (or append when the partner had none).
        for (other, overlap) in new_atoms {
            let id = self.fresh_atom(AtomKind::Overlap(overlap));
            let insert_at = merged
                .iter()
                .rposition(|&a| {
                    !self.retired.contains(&a) && self.atoms[a.index()].stamps(other)
                })
                .map(|p| p + 1)
                .unwrap_or(merged.len());
            merged.insert(insert_at, id);
            // The partner now has an overlap atom; its ingress-only
            // sequencer (if any) is replaced (paper §3.2, Figure 1).
            if let Some(ing) = self.ingress_only.remove(&other) {
                self.retired.insert(ing);
            }
        }
        if let Some(ing) = self.ingress_only.remove(&group) {
            self.retired.insert(ing);
        }

        if self.optimize && merged.len() <= self.opt_threshold {
            // Re-optimize only with live atoms pinned? Full local search on
            // the merged chain; retired atoms carry no span weight.
            local_search_live(&mut merged, &self.atoms, &self.retired, self.max_passes);
        }
        self.chains.push(merged);
    }

    /// Removes a group: its overlap atoms retire (the overlaps are gone)
    /// and partners left without live atoms regain ingress-only
    /// sequencers.
    ///
    /// # Panics
    ///
    /// Panics if the group does not exist.
    pub fn remove_group(&mut self, group: GroupId) {
        assert!(
            self.membership.group_size(group) > 0 || self.ingress_only.contains_key(&group),
            "{group} does not exist"
        );
        self.membership.remove_group(group);
        if let Some(ing) = self.ingress_only.remove(&group) {
            self.retired.insert(ing);
        }
        let mut orphaned_partners: BTreeSet<GroupId> = BTreeSet::new();
        for atom in &self.atoms {
            if self.retired.contains(&atom.id) {
                continue;
            }
            if let Some(o) = atom.overlap() {
                if o.involves(group) {
                    self.retired.insert(atom.id);
                    orphaned_partners.insert(o.other(group));
                }
            }
        }
        // Partners whose last live atom just retired need ingress-only
        // sequencers again.
        for partner in orphaned_partners {
            if self.membership.group_size(partner) == 0 {
                continue;
            }
            let has_live = self.atoms.iter().any(|a| {
                !self.retired.contains(&a.id) && a.overlap().is_some() && a.stamps(partner)
            });
            if !has_live && !self.ingress_only.contains_key(&partner) {
                let id = self.fresh_atom(AtomKind::IngressOnly(partner));
                self.ingress_only.insert(partner, id);
            }
        }
    }

    /// Compacts the graph: drops retired atoms and rebuilds from the
    /// current membership (the eager counterpart of lazy retirement).
    pub fn compact(&mut self) {
        let builder = GraphBuilder {
            optimize: self.optimize,
            max_passes: self.max_passes,
            opt_threshold: self.opt_threshold,
        };
        let (atoms, chains, ingress_only) = builder.build_parts(&self.membership);
        self.atoms = atoms;
        self.chains = chains;
        self.ingress_only = ingress_only;
        self.retired.clear();
    }

    /// Materializes the current [`SequencingGraph`].
    pub fn graph(&self) -> SequencingGraph {
        let mut paths: BTreeMap<GroupId, Vec<AtomId>> = BTreeMap::new();
        for chain in &self.chains {
            // Slice spans using only live stamps; retired atoms inside a
            // span remain as transit hops.
            let mut first: BTreeMap<GroupId, usize> = BTreeMap::new();
            let mut last: BTreeMap<GroupId, usize> = BTreeMap::new();
            for (i, &a) in chain.iter().enumerate() {
                if self.retired.contains(&a) {
                    continue;
                }
                for g in self.atoms[a.index()].groups() {
                    first.entry(g).or_insert(i);
                    last.insert(g, i);
                }
            }
            for (g, &f) in &first {
                paths.insert(*g, chain[f..=last[g]].to_vec());
            }
        }
        for (&g, &ing) in &self.ingress_only {
            paths.insert(g, vec![ing]);
        }
        let mut graph = SequencingGraph::from_paths(self.atoms.clone(), paths);
        for &r in &self.retired {
            graph.retire(r);
        }
        graph
    }

    fn fresh_atom(&mut self, kind: AtomKind) -> AtomId {
        let id = AtomId(self.atoms.len() as u32);
        self.atoms.push(Atom { id, kind });
        id
    }

    fn chain_of_group(&self, group: GroupId) -> Option<usize> {
        self.chains.iter().position(|c| {
            c.iter().any(|&a| {
                !self.retired.contains(&a) && self.atoms[a.index()].stamps(group)
                    && self.atoms[a.index()].overlap().is_some()
            })
        })
    }
}

/// Local search variant where retired atoms contribute no span.
fn local_search_live(
    chain: &mut Vec<AtomId>,
    atoms: &[Atom],
    retired: &BTreeSet<AtomId>,
    max_passes: usize,
) {
    // Drop retired atoms entirely: they stamp nothing, so they are pure
    // overhead wherever they sit; removing them shortens every span.
    chain.retain(|a| !retired.contains(a));
    local_search(chain, atoms, max_passes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqnet_membership::workload::{OccupancyGroups, ZipfGroups};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn fig2_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(3)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn fig2_build_is_valid_chain() {
        let m = fig2_membership();
        let graph = GraphBuilder::new().build(&m);
        graph.validate_against(&m).expect("valid");
        assert_eq!(graph.num_overlap_atoms(), 3);
        // Three atoms on a chain: exactly 2 edges.
        assert_eq!(graph.edges().len(), 2);
    }

    #[test]
    fn groups_without_overlaps_get_ingress_only() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(2), n(3)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        graph.validate_against(&m).expect("valid");
        assert_eq!(graph.num_overlap_atoms(), 0);
        assert_eq!(graph.num_atoms(), 2, "one ingress-only atom per group");
        assert_eq!(graph.path(g(0)).unwrap().len(), 1);
    }

    #[test]
    fn zipf_workloads_build_valid_graphs() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ZipfGroups::new(64, 16).sample(&mut rng);
            let graph = GraphBuilder::new().build(&m);
            graph
                .validate_against(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn dense_occupancy_builds_valid_graphs() {
        for &occ in &[0.1, 0.3, 0.7, 1.0] {
            let mut rng = StdRng::seed_from_u64(31);
            let m = OccupancyGroups::new(24, 8, occ).sample(&mut rng);
            let graph = GraphBuilder::new().build(&m);
            graph
                .validate_against(&m)
                .unwrap_or_else(|e| panic!("occupancy {occ}: {e}"));
        }
    }

    #[test]
    fn optimization_never_increases_span() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = OccupancyGroups::new(20, 8, 0.4).sample(&mut rng);
            let raw = GraphBuilder::new().without_optimization().build(&m);
            let opt = GraphBuilder::new().build(&m);
            let span_of = |graph: &SequencingGraph| -> usize {
                graph.paths().map(|(_, p)| p.len()).sum()
            };
            assert!(
                span_of(&opt) <= span_of(&raw),
                "seed {seed}: optimized {} > raw {}",
                span_of(&opt),
                span_of(&raw)
            );
            opt.validate_against(&m).expect("optimized graph valid");
        }
    }

    #[test]
    fn separate_components_stay_separate() {
        // Two independent cliques: their atoms must not share a chain edge.
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(10), n(11), n(12)]),
            (g(3), vec![n(10), n(11), n(12)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        graph.validate_against(&m).expect("valid");
        assert_eq!(graph.num_overlap_atoms(), 2);
        assert!(graph.edges().is_empty(), "two singleton chains have no edges");
    }

    #[test]
    fn dynamic_matches_batch_for_adds() {
        let mut dyng = GraphBuilder::new().dynamic();
        dyng.add_group(g(0), [n(0), n(1), n(3)]);
        dyng.add_group(g(1), [n(0), n(1), n(2)]);
        dyng.add_group(g(2), [n(1), n(2), n(3)]);
        let graph = dyng.graph();
        graph
            .validate_against(&fig2_membership())
            .expect("incremental result valid");
        assert_eq!(graph.num_overlap_atoms(), 3);
    }

    #[test]
    fn dynamic_remove_retires_atoms() {
        let mut dyng = GraphBuilder::new().dynamic();
        dyng.add_group(g(0), [n(0), n(1)]);
        dyng.add_group(g(1), [n(0), n(1)]);
        assert_eq!(dyng.graph().num_overlap_atoms(), 1);
        dyng.remove_group(g(1));
        let graph = dyng.graph();
        graph.validate().expect("valid after removal");
        assert_eq!(graph.num_overlap_atoms(), 0, "overlap atom retired");
        // g0 survives and regains an ingress-only sequencer.
        assert!(graph.path(g(0)).is_some());
        assert_eq!(dyng.num_retired(), 2, "overlap atom + g1 had no ingress atom");
    }

    #[test]
    fn dynamic_membership_change_via_remove_add() {
        let mut dyng = GraphBuilder::new().dynamic();
        dyng.add_group(g(0), [n(0), n(1), n(2)]);
        dyng.add_group(g(1), [n(1), n(2)]);
        dyng.remove_group(g(1));
        dyng.add_group(g(1), [n(0), n(1), n(5)]);
        let graph = dyng.graph();
        graph.validate_against(dyng.membership()).expect("valid");
        assert_eq!(graph.num_overlap_atoms(), 1);
    }

    #[test]
    fn dynamic_random_churn_stays_valid() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(77);
        let mut dyng = GraphBuilder::new().dynamic();
        let mut live: Vec<GroupId> = Vec::new();
        let mut next_group = 0u32;
        for step in 0..60 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let gid = g(next_group);
                next_group += 1;
                let size = rng.gen_range(1..6);
                let members: BTreeSet<NodeId> =
                    (0..size).map(|_| n(rng.gen_range(0..12))).collect();
                dyng.add_group(gid, members);
                live.push(gid);
            } else {
                let idx = rng.gen_range(0..live.len());
                let gid = live.swap_remove(idx);
                dyng.remove_group(gid);
            }
            let graph = dyng.graph();
            graph
                .validate_against(dyng.membership())
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn compact_drops_retired_atoms() {
        let mut dyng = GraphBuilder::new().dynamic();
        dyng.add_group(g(0), [n(0), n(1)]);
        dyng.add_group(g(1), [n(0), n(1)]);
        dyng.add_group(g(2), [n(0), n(1)]);
        dyng.remove_group(g(2));
        assert!(dyng.num_retired() > 0);
        dyng.compact();
        assert_eq!(dyng.num_retired(), 0);
        let graph = dyng.graph();
        graph.validate_against(dyng.membership()).expect("valid after compact");
        assert_eq!(graph.num_overlap_atoms(), 1);
    }

    #[test]
    fn chain_covers_every_atom_exactly_once() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = OccupancyGroups::new(16, 6, 0.5).sample(&mut rng);
        let graph = GraphBuilder::new().build(&m);
        // Each overlap atom appears on the paths of exactly its two groups
        // (as a stamper) and possibly more (as transit).
        for atom in graph.atoms() {
            if let Some(o) = atom.overlap() {
                for gr in [o.pair.0, o.pair.1] {
                    assert!(
                        graph.path(gr).unwrap().contains(&atom.id),
                        "{} missing from {gr}",
                        atom.id
                    );
                }
            }
        }
    }
}
