//! Mapping sequencing nodes onto machines (paper §3.4, final heuristic).
//!
//! "We propose a simple heuristic that is run on behalf of each group as
//! follows: if no sequencing node associated to the group has been assigned
//! to a physical node yet, assign one at random; if there are sequencing
//! nodes already assigned to machines, then pick the closest unassigned
//! sequencing node on their sequencing paths and assign it to neighboring
//! machines."

use crate::{Colocation, SequencingGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use seqnet_membership::GroupId;
use seqnet_topology::{Graph as TopoGraph, RouterId};
use std::collections::{BTreeMap, BTreeSet};

/// An assignment of every sequencing node to a router of the underlying
/// topology.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::{GraphBuilder, Colocation, Placement};
/// use seqnet_topology::{TransitStubParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let topo = TransitStubParams::small().generate(&mut rng);
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1)]),
/// ]);
/// let graph = GraphBuilder::new().build(&m);
/// let coloc = Colocation::compute(&graph, &mut rng);
/// // No anchors in this doc example: fall back to random seeding.
/// let placement = Placement::heuristic(&graph, &coloc, &topo.graph, &Default::default(), &mut rng);
/// let atom = graph.atoms()[0].id;
/// let router = placement.router_of_atom(&coloc, atom).unwrap();
/// assert!(router.index() < topo.graph.num_routers());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    routers: Vec<RouterId>,
}

impl Placement {
    /// The paper's per-group heuristic: seed each group's path with one
    /// machine chosen at random, then grow outward along the path onto
    /// neighboring machines of already-assigned nodes.
    ///
    /// The random seed machine is drawn from the group's *anchors* — the
    /// attachment routers of its members — which reads the paper's "assign
    /// one at random" in the way its results require: sequencers land in
    /// the pub/sub infrastructure near interested subscribers, not at an
    /// arbitrary point of a 10,000-router internet. Groups without anchors
    /// fall back to a uniformly random router (see
    /// [`Placement::heuristic_unanchored`] for the ablation that always
    /// does so).
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty.
    pub fn heuristic<R: Rng>(
        graph: &SequencingGraph,
        coloc: &Colocation,
        topo: &TopoGraph,
        anchors: &BTreeMap<GroupId, Vec<RouterId>>,
        rng: &mut R,
    ) -> Self {
        Self::heuristic_inner(graph, coloc, topo, Some(anchors), rng)
    }

    /// The ablation variant: every group's seed machine is a uniformly
    /// random router, ignoring where its members attach.
    pub fn heuristic_unanchored<R: Rng>(
        graph: &SequencingGraph,
        coloc: &Colocation,
        topo: &TopoGraph,
        rng: &mut R,
    ) -> Self {
        Self::heuristic_inner(graph, coloc, topo, None, rng)
    }

    fn heuristic_inner<R: Rng>(
        graph: &SequencingGraph,
        coloc: &Colocation,
        topo: &TopoGraph,
        anchors: Option<&BTreeMap<GroupId, Vec<RouterId>>>,
        rng: &mut R,
    ) -> Self {
        assert!(topo.num_routers() > 0, "cannot place onto an empty topology");
        let mut routers: Vec<Option<RouterId>> = vec![None; coloc.num_nodes()];

        let groups: Vec<_> = graph.paths().map(|(g, _)| g).collect();
        for g in groups {
            // The group's sequencing nodes in path order, deduplicated.
            let path = graph.path(g).expect("group has a path");
            let mut path_nodes: Vec<usize> = Vec::new();
            for &a in path {
                if let Some(nidx) = coloc.node_of(a) {
                    if path_nodes.last() != Some(&nidx) && !path_nodes.contains(&nidx) {
                        path_nodes.push(nidx);
                    }
                }
            }
            if path_nodes.is_empty() {
                continue;
            }
            if path_nodes.iter().all(|&nidx| routers[nidx].is_none()) {
                // No node assigned yet: seed with a random machine — an
                // anchor (member attachment router) when available.
                let seed = anchors
                    .and_then(|a| a.get(&g))
                    .and_then(|candidates| candidates.choose(rng).copied())
                    .unwrap_or_else(|| RouterId(rng.gen_range(0..topo.num_routers() as u32)));
                routers[path_nodes[0]] = Some(seed);
            }
            // Grow: repeatedly assign the unassigned node closest (in path
            // distance) to an assigned one, onto a neighbor of its machine.
            loop {
                let mut best: Option<(usize, usize, usize)> = None; // (dist, unassigned, anchor)
                for (i, &ni) in path_nodes.iter().enumerate() {
                    if routers[ni].is_some() {
                        continue;
                    }
                    for (j, &nj) in path_nodes.iter().enumerate() {
                        if routers[nj].is_some() {
                            let dist = i.abs_diff(j);
                            if best.is_none_or(|(d, _, _)| dist < d) {
                                best = Some((dist, ni, nj));
                            }
                        }
                    }
                }
                let Some((_, unassigned, anchor)) = best else {
                    break;
                };
                let anchor_router = routers[anchor].expect("anchor is assigned");
                let neighbors: Vec<RouterId> =
                    topo.neighbors(anchor_router).map(|(r, _)| r).collect();
                let machine = neighbors
                    .choose(rng)
                    .copied()
                    .unwrap_or(anchor_router);
                routers[unassigned] = Some(machine);
            }
        }

        // Nodes on no group path (possible only for retired leftovers):
        // place randomly so lookups never fail.
        let routers = routers
            .into_iter()
            .map(|r| r.unwrap_or_else(|| RouterId(rng.gen_range(0..topo.num_routers() as u32))))
            .collect();
        Placement { routers }
    }

    /// The ablation baseline: every sequencing node on a uniformly random
    /// router.
    pub fn random<R: Rng>(coloc: &Colocation, topo: &TopoGraph, rng: &mut R) -> Self {
        assert!(topo.num_routers() > 0, "cannot place onto an empty topology");
        let routers = (0..coloc.num_nodes())
            .map(|_| RouterId(rng.gen_range(0..topo.num_routers() as u32)))
            .collect();
        Placement { routers }
    }

    /// The router hosting sequencing node `node_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn router_of_node(&self, node_idx: usize) -> RouterId {
        self.routers[node_idx]
    }

    /// The router hosting the sequencing node of `atom`, or `None` for
    /// retired atoms that belong to no node.
    pub fn router_of_atom(
        &self,
        coloc: &Colocation,
        atom: crate::AtomId,
    ) -> Option<RouterId> {
        coloc.node_of(atom).map(|n| self.routers[n])
    }

    /// Number of distinct machines in use.
    pub fn distinct_machines(&self) -> usize {
        self.routers.iter().collect::<BTreeSet<_>>().len()
    }
}

/// Builds the per-group *anchor* lists for [`Placement::heuristic`]: the
/// attachment routers of each group's members.
pub fn member_anchors(
    membership: &seqnet_membership::Membership,
    router_of: impl Fn(seqnet_membership::NodeId) -> RouterId,
) -> BTreeMap<GroupId, Vec<RouterId>> {
    membership
        .groups()
        .map(|g| (g, membership.members(g).map(&router_of).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqnet_membership::{GroupId, Membership, NodeId};
    use seqnet_topology::TransitStubParams;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn chain_membership() -> Membership {
        // A chain of overlapping groups yielding several atoms.
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
            (g(2), vec![n(2), n(3), n(4)]),
            (g(3), vec![n(3), n(4), n(5)]),
        ])
    }

    #[test]
    fn every_node_gets_a_router() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = TransitStubParams::small().generate(&mut rng);
        let graph = GraphBuilder::new().build(&chain_membership());
        let coloc = Colocation::compute(&graph, &mut rng);
        let placement = Placement::heuristic(&graph, &coloc, &topo.graph, &BTreeMap::new(), &mut rng);
        for idx in 0..coloc.num_nodes() {
            assert!(placement.router_of_node(idx).index() < topo.graph.num_routers());
        }
        for atom in graph.atoms() {
            assert!(placement.router_of_atom(&coloc, atom.id).is_some());
        }
    }

    #[test]
    fn heuristic_placement_beats_random_on_path_delay() {
        // The heuristic's point (§3.4): messages traverse few extra hops.
        // Compare total per-group path traversal delay against random
        // placement, averaged over seeds.
        let topo = TransitStubParams::small().generate(&mut StdRng::seed_from_u64(2));
        let graph = GraphBuilder::new().build(&chain_membership());
        let coloc = Colocation::scattered(&graph); // force multiple nodes

        let path_cost = |placement: &Placement| -> u64 {
            let mut oracle = seqnet_topology::DelayOracle::new(&topo.graph);
            let mut total = 0u64;
            for (_, path) in graph.paths() {
                let mut nodes: Vec<usize> = Vec::new();
                for &a in path {
                    if let Some(ni) = coloc.node_of(a) {
                        if !nodes.contains(&ni) {
                            nodes.push(ni);
                        }
                    }
                }
                for w in nodes.windows(2) {
                    total += oracle
                        .router_delay(
                            placement.router_of_node(w[0]),
                            placement.router_of_node(w[1]),
                        )
                        .as_micros();
                }
            }
            total
        };

        let mut heuristic_total = 0u64;
        let mut random_total = 0u64;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            heuristic_total += path_cost(&Placement::heuristic(&graph, &coloc, &topo.graph, &BTreeMap::new(), &mut rng));
            let mut rng = StdRng::seed_from_u64(seed + 100);
            random_total += path_cost(&Placement::random(&coloc, &topo.graph, &mut rng));
        }
        assert!(
            heuristic_total < random_total,
            "heuristic {heuristic_total}us should beat random {random_total}us"
        );
    }

    #[test]
    fn random_placement_covers_all_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = TransitStubParams::small().generate(&mut rng);
        let graph = GraphBuilder::new().build(&chain_membership());
        let coloc = Colocation::compute(&graph, &mut rng);
        let placement = Placement::random(&coloc, &topo.graph, &mut rng);
        for idx in 0..coloc.num_nodes() {
            assert!(placement.router_of_node(idx).index() < topo.graph.num_routers());
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let topo = TransitStubParams::small().generate(&mut StdRng::seed_from_u64(9));
        let graph = GraphBuilder::new().build(&chain_membership());
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(10));
        let p1 = Placement::heuristic(&graph, &coloc, &topo.graph, &BTreeMap::new(), &mut StdRng::seed_from_u64(11));
        let p2 = Placement::heuristic(&graph, &coloc, &topo.graph, &BTreeMap::new(), &mut StdRng::seed_from_u64(11));
        assert_eq!(p1, p2);
    }

    #[test]
    fn distinct_machines_counted() {
        let topo = TransitStubParams::small().generate(&mut StdRng::seed_from_u64(4));
        let graph = GraphBuilder::new().build(&chain_membership());
        let coloc = Colocation::compute(&graph, &mut StdRng::seed_from_u64(4));
        let placement = Placement::random(&coloc, &topo.graph, &mut StdRng::seed_from_u64(4));
        assert!(placement.distinct_machines() >= 1);
        assert!(placement.distinct_machines() <= coloc.num_nodes());
    }
}
