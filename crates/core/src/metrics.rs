//! Evaluation metrics over delivery records (paper §4.2).

use crate::DeliveryRecord;
use seqnet_membership::NodeId;
use std::collections::BTreeMap;

/// Per-destination *latency stretch* (paper §4.2): for each destination,
/// the average over its received messages of
/// `sequencing traversal time / unicast time`. Self-deliveries (sender ==
/// destination, unicast delay 0) are excluded.
///
/// Returns `(destination, average stretch)` pairs in node order.
pub fn stretch_by_destination<'a>(
    records: impl IntoIterator<Item = &'a DeliveryRecord>,
) -> Vec<(NodeId, f64)> {
    let mut acc: BTreeMap<NodeId, (f64, usize)> = BTreeMap::new();
    for r in records {
        if r.destination == r.sender || r.unicast.as_micros() == 0 {
            continue;
        }
        let stretch = (r.arrived - r.published).as_micros() as f64 / r.unicast.as_micros() as f64;
        let entry = acc.entry(r.destination).or_insert((0.0, 0));
        entry.0 += stretch;
        entry.1 += 1;
    }
    acc.into_iter()
        .map(|(node, (sum, count))| (node, sum / count as f64))
        .collect()
}

/// The relative delay penalty scatter (paper §4.2, Figure 4): one point
/// `(unicast delay in ms, RDP)` per sender–destination record, excluding
/// self-deliveries.
pub fn rdp_scatter<'a>(
    records: impl IntoIterator<Item = &'a DeliveryRecord>,
) -> Vec<(f64, f64)> {
    records
        .into_iter()
        .filter(|r| r.destination != r.sender && r.unicast.as_micros() > 0)
        .map(|r| {
            let rdp =
                (r.arrived - r.published).as_micros() as f64 / r.unicast.as_micros() as f64;
            (r.unicast.as_ms(), rdp)
        })
        .collect()
}

/// Average end-to-end delivery latency in milliseconds (publish →
/// application delivery, buffering included); `None` when there are no
/// records — a run that delivered nothing (empty workload, all-crash
/// fault schedule) is reportable, not a panic.
pub fn mean_delivery_latency_ms<'a>(
    records: impl IntoIterator<Item = &'a DeliveryRecord>,
) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for r in records {
        sum += (r.delivered - r.published).as_ms();
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

/// Average buffering time (arrival → delivery) in milliseconds — the price
/// of waiting for predecessors; `None` when there are no records.
pub fn mean_buffering_ms<'a>(
    records: impl IntoIterator<Item = &'a DeliveryRecord>,
) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for r in records {
        sum += (r.delivered - r.arrived).as_ms();
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

/// Average crash-recovery latency in milliseconds, from the accumulated
/// counters a driver reports (the `recovery_micros` and `crashes` fields
/// of the shared [`RecoveryStats`](crate::proto::RecoveryStats), surfaced
/// as `FaultStats::recovery` by the simulator and `RuntimeStats::recovery`
/// by `seqnet-runtime`): total time from restarted-thread start to the
/// first snapshot that sealed replayed frames, divided by the number of
/// crashes. Always returns a defined, finite value — `0.0` when no crash
/// occurred, never `NaN`.
pub fn mean_recovery_ms(total_recovery_micros: u64, crashes: u64) -> f64 {
    if crashes == 0 {
        return 0.0;
    }
    total_recovery_micros as f64 / crashes as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageId, DeliveryRecord};
    use seqnet_membership::GroupId;
    use seqnet_sim::SimTime;

    fn record(
        sender: u32,
        dest: u32,
        published_us: u64,
        arrived_us: u64,
        delivered_us: u64,
        unicast_us: u64,
    ) -> DeliveryRecord {
        DeliveryRecord {
            id: MessageId(0),
            sender: NodeId(sender),
            group: GroupId(0),
            destination: NodeId(dest),
            published: SimTime::from_micros(published_us),
            arrived: SimTime::from_micros(arrived_us),
            delivered: SimTime::from_micros(delivered_us),
            unicast: SimTime::from_micros(unicast_us),
            stamps: 1,
            epoch: 0,
            payload: bytes::Bytes::new(),
        }
    }

    #[test]
    fn stretch_averages_per_destination() {
        let records = vec![
            record(0, 1, 0, 200, 200, 100), // stretch 2.0
            record(2, 1, 0, 400, 400, 100), // stretch 4.0
            record(0, 2, 0, 300, 300, 100), // stretch 3.0
        ];
        let s = stretch_by_destination(&records);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (NodeId(1), 3.0));
        assert_eq!(s[1], (NodeId(2), 3.0));
    }

    #[test]
    fn self_deliveries_excluded() {
        let records = vec![record(1, 1, 0, 200, 200, 0), record(0, 1, 0, 200, 200, 100)];
        let s = stretch_by_destination(&records);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, 2.0);
    }

    #[test]
    fn rdp_points() {
        let records = vec![record(0, 1, 0, 500, 600, 250)];
        let pts = rdp_scatter(&records);
        assert_eq!(pts, vec![(0.25, 2.0)]);
    }

    #[test]
    fn latency_and_buffering_means() {
        let records = vec![
            record(0, 1, 0, 100, 300, 50),
            record(0, 2, 0, 200, 200, 50),
        ];
        assert_eq!(mean_delivery_latency_ms(&records), Some(0.25));
        assert_eq!(mean_buffering_ms(&records), Some(0.1));
    }

    #[test]
    fn empty_records_are_reportable() {
        assert_eq!(mean_delivery_latency_ms(&[]), None);
        assert_eq!(mean_buffering_ms(&[]), None);
    }

    #[test]
    fn recovery_latency_mean() {
        assert_eq!(mean_recovery_ms(0, 0), 0.0);
        assert_eq!(mean_recovery_ms(6_000, 2), 3.0);
    }

    #[test]
    fn recovery_latency_defined_with_zero_recoveries() {
        // A fault-free run reports zero crashes; the mean must stay a
        // defined, finite number (no 0/0 NaN, no panic), including when
        // stray micros were accumulated without a completed crash count.
        let fault_free = mean_recovery_ms(0, 0);
        assert!(fault_free.is_finite());
        assert_eq!(fault_free, 0.0);
        let stray = mean_recovery_ms(1_234, 0);
        assert!(stray.is_finite());
        assert_eq!(stray, 0.0);
    }
}
