//! Discrete-event simulation of the full ordering pipeline: ingress,
//! sequencing, and distribution (paper §3).

use crate::proto::trace::{Actor, EventKind, TraceEvent, TraceSink};
use crate::proto::{
    Command, CommandBuf, Event, Frame, NodeCore, Peer, ReceiverCore, RecoveryStats, Routing,
};
use crate::{CoreError, DelayModel, DelayTable, Endpoint, Message, MessageId, ProtocolState};
use bytes::Bytes;
use rand::Rng;
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{AtomId, Colocation, GraphBuilder, Placement, SequencingGraph};
use seqnet_sim::{FaultPlan, FifoStamper, SimTime, Simulator};
use seqnet_topology::{ClusteredAttachment, HostMap, Topology, TransitStubParams};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One message delivered to one destination, with full timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The message.
    pub id: MessageId,
    /// Who published it.
    pub sender: NodeId,
    /// The destination group.
    pub group: GroupId,
    /// The subscriber that delivered it.
    pub destination: NodeId,
    /// When the sender published.
    pub published: SimTime,
    /// When the message arrived at the destination (end of the sequencing
    /// + distribution traversal — the paper's latency-stretch numerator).
    pub arrived: SimTime,
    /// When the destination delivered it to the application (includes any
    /// buffering while waiting for predecessors).
    pub delivered: SimTime,
    /// The direct shortest-path (unicast) delay from sender to destination
    /// — the latency-stretch denominator.
    pub unicast: SimTime,
    /// Number of overlap stamps the message carried.
    pub stamps: usize,
    /// The application payload.
    pub payload: Bytes,
    /// The configuration epoch the message was sequenced under
    /// (PROTOCOL.md §14), stamped by the group's ingress atom.
    pub epoch: u64,
}

/// A generated router topology plus host attachment, ready to run
/// experiments on.
#[derive(Debug, Clone)]
pub struct NetworkSetup {
    /// The router-level topology.
    pub topology: Topology,
    /// Where each host attaches.
    pub hosts: HostMap,
}

impl NetworkSetup {
    /// Generates a transit–stub topology and attaches `num_hosts` hosts in
    /// clusters of `cluster_size` (paper §4.1).
    pub fn generate<R: Rng>(
        params: &TransitStubParams,
        num_hosts: usize,
        cluster_size: usize,
        rng: &mut R,
    ) -> Self {
        let topology = params.generate(rng);
        let hosts = ClusteredAttachment::new(num_hosts, cluster_size).attach(&topology, rng);
        NetworkSetup { topology, hosts }
    }
}

/// Design knobs of the network deployment, for ablation studies. The
/// default enables everything the paper proposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Run the §3.4 two-step atom co-location (vs one node per atom).
    pub colocate: bool,
    /// Seed each group's placement at a member's attachment router (vs a
    /// uniformly random router).
    pub anchored: bool,
    /// Use the §3.4 machine-mapping heuristic (vs fully random machines).
    pub heuristic_placement: bool,
    /// Run the chain-span local search during graph construction.
    pub optimize_chains: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            colocate: true,
            anchored: true,
            heuristic_placement: true,
            optimize_chains: true,
        }
    }
}

/// Counters describing what an installed [`FaultPlan`] actually did to a
/// simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crash-recovery counters, aggregated across all atom cores. The
    /// counter definitions are shared with the threaded runtime's
    /// `RuntimeStats` (both embed [`RecoveryStats`] maintained by the
    /// protocol core), so simulator and runtime report recovery behavior
    /// identically. `recovery_micros` stays zero here: parked messages
    /// replay at the restart instant, without a recovery phase of their
    /// own.
    pub recovery: RecoveryStats,
    /// Transmissions deferred by a link partition or stretched by a
    /// burst-loss retransmission penalty.
    pub messages_delayed: u64,
}

/// Runtime state of an installed fault schedule. Crash windows execute as
/// [`Event::NodeCrashed`]/[`Event::NodeRestarted`] events against the atom
/// cores, which own the parking and replay; only the transport-level
/// faults (partitions, loss penalties) remain here.
#[derive(Debug)]
struct FaultCtx {
    plan: FaultPlan,
    messages_delayed: u64,
}

/// Deterministic per-(message, edge) tag feeding the loss-penalty hash.
fn fault_tag(id: MessageId, a: u64, b: u64) -> u64 {
    id.0 ^ a.rotate_left(24) ^ b.rotate_left(48)
}

/// A deferred publish, fired when `after` is delivered at `sender`.
#[derive(Debug, Clone)]
struct Trigger {
    sender: NodeId,
    after: MessageId,
    group: GroupId,
    payload: Bytes,
    id: MessageId,
}

/// A publish accepted while an epoch handoff was pending. It already has
/// an id (ids are epoch-independent) but is held back until epoch N has
/// drained and the new configuration is active, then injected at
/// `max(at, handoff instant)` so it is sequenced under epoch N+1.
#[derive(Debug, Clone)]
struct ParkedPublish {
    id: MessageId,
    sender: NodeId,
    group: GroupId,
    payload: Bytes,
    at: SimTime,
}

/// A pending online reconfiguration (PROTOCOL.md §14): the configuration
/// that will activate once every in-flight epoch-N message has been
/// sequenced and delivered, plus the publishes parked until then.
#[derive(Debug)]
struct Handoff {
    membership: Membership,
    graph: SequencingGraph,
    parked: Vec<ParkedPublish>,
}

/// Everything the simulation events operate on.
#[derive(Debug)]
struct World {
    membership: Membership,
    graph: SequencingGraph,
    protocol: ProtocolState,
    /// One protocol core per atom (solo routing: atom `i` is node `i`).
    /// All cores share the single `protocol` counter state, borrowed per
    /// event — exactly how the runtime's per-thread cores borrow theirs.
    cores: Vec<NodeCore>,
    receivers: BTreeMap<NodeId, ReceiverCore>,
    delays: DelayModel,
    fifo: FifoStamper<(Endpoint, Endpoint)>,
    /// One in-flight queue per directed channel, ordered by arrival time
    /// (the [`FifoStamper`] clamps arrivals to be non-decreasing per
    /// channel, so pushes always append in order). Whenever a queue is
    /// non-empty, exactly one `pump_channel` event is scheduled at or
    /// before its head's arrival; the pump drains every frame due at its
    /// instant — up to `batch_limit` — into one batched core call.
    channels: HashMap<(Endpoint, Endpoint), VecDeque<(SimTime, Message)>>,
    /// Largest number of frames a single pump may hand the core at once.
    /// `usize::MAX` (the default) batches everything due; `1` degenerates
    /// to per-event stepping, the mode differential tests compare against.
    batch_limit: usize,
    /// Histogram of realized batch sizes (batch size → pump count).
    batch_sizes: BTreeMap<usize, u64>,
    /// Reused command buffer for the batched core calls.
    cmdbuf: CommandBuf,
    /// Reused scratch holding the frames of the batch being pumped.
    batch_scratch: Vec<Message>,
    /// Reused scratch holding computed (destination, arrival, message)
    /// transmissions until the world borrow ends and they can be enqueued.
    outbox: Vec<(Endpoint, SimTime, Message)>,
    next_id: u64,
    publish_time: HashMap<MessageId, SimTime>,
    arrivals: HashMap<(MessageId, NodeId), SimTime>,
    deliveries: BTreeMap<NodeId, Vec<DeliveryRecord>>,
    triggers: Vec<Trigger>,
    messages_published: u64,
    traces: HashMap<MessageId, Vec<(Endpoint, SimTime)>>,
    /// Ordering-metadata bytes carried across network hops (stamps and
    /// group numbers, §4.4's overhead measure integrated over distance).
    overhead_bytes: u64,
    /// Installed fault schedule, if any.
    fault: Option<FaultCtx>,
    /// Pending epoch handoff, if an online reconfiguration was begun and
    /// the current epoch has not drained yet.
    handoff: Option<Handoff>,
    /// Installed trace sink, if any. Shared (`Arc<Mutex<_>>`, keeping
    /// [`OrderedPubSub`] `Send`) so the caller keeps a handle to read
    /// events back; stamped with virtual microseconds.
    sink: Option<Arc<Mutex<dyn TraceSink + Send>>>,
}

/// The ordered publish/subscribe service, simulated.
///
/// See the [crate docs](crate) for a quickstart. For topology-aware
/// experiments use [`OrderedPubSub::with_network`].
#[derive(Debug)]
pub struct OrderedPubSub {
    sim: Simulator<World>,
}

impl OrderedPubSub {
    /// Builds the service over `membership` with a uniform 1 ms hop delay
    /// (no topology), suitable for logical-ordering tests and examples.
    pub fn new(membership: &Membership) -> Self {
        Self::with_uniform_delay(membership, SimTime::from_ms(1.0))
    }

    /// Like [`OrderedPubSub::new`] with an explicit uniform hop delay.
    pub fn with_uniform_delay(membership: &Membership, hop: SimTime) -> Self {
        let graph = GraphBuilder::new().build(membership);
        Self::assemble(membership.clone(), graph, DelayModel::Uniform(hop))
    }

    /// Builds the service on a router topology: the sequencing graph is
    /// constructed, atoms are co-located onto sequencing nodes (§3.4), the
    /// nodes are placed onto machines (§3.4), and all propagation delays
    /// come from shortest paths.
    pub fn with_network<R: Rng>(
        membership: &Membership,
        setup: &NetworkSetup,
        rng: &mut R,
    ) -> Self {
        Self::with_network_config(membership, setup, NetworkConfig::default(), rng)
    }

    /// Like [`OrderedPubSub::with_network`] with explicit choices for each
    /// design knob — the ablation entry point.
    pub fn with_network_config<R: Rng>(
        membership: &Membership,
        setup: &NetworkSetup,
        config: NetworkConfig,
        rng: &mut R,
    ) -> Self {
        let builder = if config.optimize_chains {
            GraphBuilder::new()
        } else {
            GraphBuilder::new().without_optimization()
        };
        let graph = builder.build(membership);
        let coloc = if config.colocate {
            Colocation::compute(&graph, rng)
        } else {
            Colocation::scattered(&graph)
        };
        let placement = match (config.heuristic_placement, config.anchored) {
            (true, true) => {
                let anchors = seqnet_overlap::place::member_anchors(membership, |n| {
                    setup.hosts.router_of(seqnet_topology::HostId(n.0))
                });
                Placement::heuristic(&graph, &coloc, &setup.topology.graph, &anchors, rng)
            }
            (true, false) => {
                Placement::heuristic_unanchored(&graph, &coloc, &setup.topology.graph, rng)
            }
            (false, _) => Placement::random(&coloc, &setup.topology.graph, rng),
        };
        let table = DelayTable::build(
            &setup.topology.graph,
            &setup.hosts,
            &coloc,
            &placement,
            graph.num_atoms(),
        );
        Self::assemble(membership.clone(), graph, DelayModel::Table(table))
    }

    /// Builds the service with an explicit (possibly deliberately invalid)
    /// sequencing graph — used to demonstrate what goes wrong without
    /// condition C2 (the paper's Figure 2(a) circular dependency).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGraph`] only if the graph is broken in
    /// ways the engine cannot even run (a group with no path); C1/C2
    /// violations are accepted — that is the point.
    pub fn with_graph_unchecked(
        membership: &Membership,
        graph: SequencingGraph,
        delays: DelayModel,
    ) -> Result<Self, CoreError> {
        for g in membership.groups() {
            if membership.group_size(g) > 0 && graph.path(g).is_none() {
                return Err(CoreError::InvalidGraph(format!("{g} has no path")));
            }
        }
        Ok(Self::assemble(membership.clone(), graph, delays))
    }

    fn assemble(membership: Membership, graph: SequencingGraph, delays: DelayModel) -> Self {
        let receivers = membership
            .nodes()
            .map(|n| (n, ReceiverCore::new(n, &membership, &graph)))
            .collect();
        let cores = (0..graph.num_atoms())
            .map(|i| NodeCore::new(i, false))
            .collect();
        let world = World {
            protocol: ProtocolState::new(&graph),
            cores,
            receivers,
            membership,
            graph,
            delays,
            fifo: FifoStamper::new(),
            channels: HashMap::new(),
            batch_limit: usize::MAX,
            batch_sizes: BTreeMap::new(),
            cmdbuf: CommandBuf::new(),
            batch_scratch: Vec::new(),
            outbox: Vec::new(),
            next_id: 0,
            publish_time: HashMap::new(),
            arrivals: HashMap::new(),
            deliveries: BTreeMap::new(),
            triggers: Vec::new(),
            messages_published: 0,
            traces: HashMap::new(),
            overhead_bytes: 0,
            fault: None,
            handoff: None,
            sink: None,
        };
        OrderedPubSub {
            sim: Simulator::new(world),
        }
    }

    /// Installs a structured trace sink: from now on every protocol step
    /// (publish, stamp, forward, arrive, buffer, deliver, crash, replay)
    /// is reported to it, stamped with virtual microseconds. The sink is
    /// shared — keep a clone of the `Arc` to read the events back after
    /// the run. Install before publishing; there is no way to trace
    /// retroactively.
    pub fn set_trace_sink(&mut self, sink: Arc<Mutex<dyn TraceSink + Send>>) {
        self.sim.world_mut().sink = Some(sink);
    }

    /// Selects between the batched fast path (the default: every frame
    /// due on a channel at the same instant flows through one
    /// [`NodeCore::on_events`] / [`ReceiverCore::offer_batch`] call with
    /// reused buffers) and per-event stepping (`false`: batch limit 1,
    /// one core call per frame). The two modes are semantically
    /// equivalent — same delivery orders, same timestamps, same stats
    /// (PROTOCOL.md §12) — which `tests/batch_equivalence.rs` verifies;
    /// stepping exists for that comparison and for bisecting.
    pub fn set_batching(&mut self, enabled: bool) {
        self.sim.world_mut().batch_limit = if enabled { usize::MAX } else { 1 };
    }

    /// Histogram of realized batch sizes: how many channel pumps handed
    /// the cores a batch of each size. Per-event stepping reports every
    /// pump under size 1.
    pub fn batch_size_counts(&self) -> &BTreeMap<usize, u64> {
        &self.sim.world().batch_sizes
    }

    /// Publishes a message at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group has no members.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Result<MessageId, CoreError> {
        self.publish_at(self.sim.now(), sender, group, payload)
    }

    /// Publishes at an explicit virtual time (≥ now).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group has no members.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn publish_at(
        &mut self,
        at: SimTime,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Result<MessageId, CoreError> {
        // While an epoch handoff is pending, publishes target the *next*
        // configuration: they validate against it and are parked until
        // the current epoch drains (PROTOCOL.md §14).
        if self.sim.world().handoff.is_some() {
            let next = self.sim.world().handoff.as_ref().expect("checked");
            if next.graph.path(group).is_none() {
                return Err(CoreError::UnknownGroup(group));
            }
            let id = self.fresh_id();
            let parked = ParkedPublish {
                id,
                sender,
                group,
                payload: payload.into(),
                at,
            };
            self.sim
                .world_mut()
                .handoff
                .as_mut()
                .expect("checked")
                .parked
                .push(parked);
            return Ok(id);
        }
        if self.sim.world().graph.path(group).is_none() {
            return Err(CoreError::UnknownGroup(group));
        }
        let id = self.fresh_id();
        let payload = payload.into();
        self.sim.schedule_at(at, move |sim| {
            inject(sim, id, sender, group, payload);
        });
        Ok(id)
    }

    /// Publishes causally: like [`OrderedPubSub::publish`] but requires the
    /// sender to subscribe to the group, the precondition for causal order
    /// (paper §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SenderNotSubscribed`] if the sender is not a
    /// member, or [`CoreError::UnknownGroup`].
    pub fn publish_causal(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Result<MessageId, CoreError> {
        // A parked publish is sequenced under the next configuration, so
        // membership is checked against it too.
        let world = self.sim.world();
        let membership = world
            .handoff
            .as_ref()
            .map(|h| &h.membership)
            .unwrap_or(&world.membership);
        if !membership.is_member(sender, group) {
            return Err(CoreError::SenderNotSubscribed { sender, group });
        }
        self.publish(sender, group, payload)
    }

    /// Registers a *causal reaction*: when `sender` delivers `after`, it
    /// immediately publishes the given message. This models the
    /// deliver-then-send causality the protocol preserves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SenderNotSubscribed`] if the sender is not a
    /// member of `group` (reactions are causal by definition), or
    /// [`CoreError::UnknownGroup`].
    pub fn publish_after(
        &mut self,
        sender: NodeId,
        after: MessageId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Result<MessageId, CoreError> {
        let world = self.sim.world();
        if world.graph.path(group).is_none() {
            return Err(CoreError::UnknownGroup(group));
        }
        if !world.membership.is_member(sender, group) {
            return Err(CoreError::SenderNotSubscribed { sender, group });
        }
        let id = self.fresh_id();
        self.sim.world_mut().triggers.push(Trigger {
            sender,
            after,
            group,
            payload: payload.into(),
            id,
        });
        Ok(id)
    }

    fn fresh_id(&mut self) -> MessageId {
        let world = self.sim.world_mut();
        let id = MessageId(world.next_id);
        world.next_id += 1;
        id
    }

    /// Installs a deterministic, seedable fault schedule (crash windows,
    /// link partitions, burst-loss windows) executed as simulator events,
    /// so faulty runs stay byte-for-byte reproducible.
    ///
    /// In the simulator the plan's *node* indices name sequencing atoms:
    /// a crashed atom parks arriving messages in its upstream buffer —
    /// the paper's §3.1 output retransmission buffer, seen from the
    /// sender's side — and a restart event at the window's end replays
    /// them in arrival order. Partitions between atoms `a` and `b` hold
    /// frames until the partition heals; burst-loss windows stretch
    /// affected transmissions by a deterministic number of retransmit
    /// intervals. Per-channel FIFO is preserved throughout, so the
    /// protocol's channel assumption (and with it Definition 1 / Theorem
    /// 1) must survive every schedule — tests assert exactly that.
    /// Windows naming atoms the graph does not have are ignored.
    ///
    /// # Panics
    ///
    /// Panics if virtual time has already advanced past a window's
    /// restart instant — install the plan before running the simulation.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        let num_atoms = self.sim.world().graph.num_atoms();
        let now = self.sim.now();
        for w in plan.crash_windows() {
            if w.node < num_atoms {
                let atom = AtomId(w.node as u32);
                // Crash/restart run as ordinary simulator events feeding
                // the atom's protocol core. Scheduling them here — before
                // any same-instant arrival is scheduled — makes the tie
                // break the same way the old per-arrival `is_down` check
                // did: an arrival at exactly `down_at` parks, an arrival
                // at exactly `up_at` processes after the replay.
                let down_at = if w.down_at > now { w.down_at } else { now };
                self.sim
                    .schedule_at(down_at, move |sim| crash_atom(sim, atom));
                self.sim
                    .schedule_at(w.up_at, move |sim| restart_atom(sim, atom));
            }
        }
        self.sim.world_mut().fault = Some(FaultCtx {
            plan,
            messages_delayed: 0,
        });
    }

    /// What the installed fault plan did so far; all-zero when no plan
    /// was applied.
    pub fn fault_stats(&self) -> FaultStats {
        let world = self.sim.world();
        let mut recovery = RecoveryStats::default();
        for core in &world.cores {
            recovery.merge(core.recovery_stats());
        }
        FaultStats {
            recovery,
            messages_delayed: world.fault.as_ref().map_or(0, |c| c.messages_delayed),
        }
    }

    /// Runs until no events remain; returns the number of events executed.
    ///
    /// If an online reconfiguration is pending
    /// ([`OrderedPubSub::begin_reconfigure`]), draining the current epoch
    /// completes the handoff here: the new configuration is swapped in,
    /// parked publishes are injected under the new epoch, and the run
    /// continues until those drain too (possibly through further pending
    /// handoffs). A handoff whose epoch cannot drain — e.g. messages
    /// stuck in a circular dependency — is left pending, observable via
    /// [`OrderedPubSub::reconfig_pending`] and
    /// [`OrderedPubSub::stuck_messages`].
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut events = 0;
        loop {
            events += self.sim.run_to_quiescence();
            if self.sim.world().handoff.is_none() || self.stuck_messages() > 0 {
                break;
            }
            let now = self.sim.now();
            let parked = {
                let world = self.sim.world_mut();
                let Handoff {
                    membership,
                    graph,
                    parked,
                } = world.handoff.take().expect("pending handoff checked");
                apply_config(world, membership, graph);
                let epoch = world.protocol.epoch();
                if let Some(sink) = &world.sink {
                    let mut sink = sink.lock().expect("trace sink poisoned");
                    sink.now(now.as_micros());
                    if sink.enabled() {
                        sink.record(TraceEvent {
                            detail: Some(epoch),
                            ..TraceEvent::new(EventKind::EpochAdvance, Actor::Publisher)
                        });
                    }
                }
                parked
            };
            for p in parked {
                let at = p.at.max(now);
                self.sim.schedule_at(at, move |sim| {
                    inject(sim, p.id, p.sender, p.group, p.payload);
                });
            }
        }
        events
    }

    /// Runs events up to `deadline` and advances the clock to it.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.sim.run_until(deadline)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The deliveries at `node`, in delivery order.
    pub fn delivered(&self, node: NodeId) -> &[DeliveryRecord] {
        self.sim
            .world()
            .deliveries
            .get(&node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all delivery records of all nodes.
    pub fn all_deliveries(&self) -> impl Iterator<Item = &DeliveryRecord> {
        self.sim.world().deliveries.values().flatten()
    }

    /// Messages sitting in receiver buffers, waiting for predecessors.
    /// After [`OrderedPubSub::run_to_quiescence`], a non-zero value means
    /// messages are stuck forever — e.g. the circular dependency of
    /// Figure 2(a).
    pub fn stuck_messages(&self) -> usize {
        self.sim
            .world()
            .receivers
            .values()
            .map(|r| r.queue().pending())
            .sum()
    }

    /// Simulator events still pending (messages in flight between
    /// endpoints). Zero together with [`OrderedPubSub::stuck_messages`]
    /// means the service is quiescent.
    pub fn events_pending(&self) -> usize {
        self.sim.events_pending()
    }

    /// Causal reactions whose trigger never fired.
    pub fn pending_triggers(&self) -> usize {
        self.sim.world().triggers.len()
    }

    /// Total messages published so far.
    pub fn messages_published(&self) -> u64 {
        self.sim.world().messages_published
    }

    /// The sequencing graph in use.
    pub fn graph(&self) -> &SequencingGraph {
        &self.sim.world().graph
    }

    /// The membership matrix in use.
    pub fn membership(&self) -> &Membership {
        &self.sim.world().membership
    }

    /// Replaces membership and sequencing graph in one quiescent step:
    /// counters of surviving groups and atoms carry over (atom ids are
    /// stable under [`seqnet_overlap::GraphBuilder::dynamic`] updates),
    /// receiver expectations are re-synchronized, and subscribers joining
    /// mid-stream start from the counters' current positions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotQuiescent`] if events are pending or
    /// messages are buffered — run
    /// [`OrderedPubSub::run_to_quiescence`] first. Returns
    /// [`CoreError::InvalidGraph`] if a non-empty group lacks a path.
    pub fn reconfigure(
        &mut self,
        membership: &Membership,
        graph: SequencingGraph,
    ) -> Result<(), CoreError> {
        if self.sim.world().handoff.is_some() {
            return Err(CoreError::ReconfigPending {
                next_epoch: self.sim.world().protocol.epoch() + 1,
            });
        }
        let buffered = self.stuck_messages();
        if self.sim.events_pending() > 0 || buffered > 0 {
            return Err(CoreError::NotQuiescent {
                pending_events: self.sim.events_pending(),
                buffered_messages: buffered,
            });
        }
        for g in membership.groups() {
            if membership.group_size(g) > 0 && graph.path(g).is_none() {
                return Err(CoreError::InvalidGraph(format!("{g} has no path")));
            }
        }
        apply_config(self.sim.world_mut(), membership.clone(), graph);
        Ok(())
    }

    /// Begins a *non-quiescent* reconfiguration (PROTOCOL.md §14): the
    /// new configuration is registered while epoch-N traffic is still in
    /// flight. From this call on, new publishes validate against — and
    /// are parked for — the next configuration; the handoff itself (drain
    /// epoch N, adopt counters, re-synchronize receivers, inject parked
    /// publishes as epoch N+1) completes inside
    /// [`OrderedPubSub::run_to_quiescence`]. Returns the epoch number the
    /// new configuration will activate as.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ReconfigPending`] if a handoff is already
    /// pending (one configuration change at a time), or
    /// [`CoreError::InvalidGraph`] if a non-empty group of the new
    /// membership lacks a path in the new graph.
    pub fn begin_reconfigure(
        &mut self,
        membership: &Membership,
        graph: SequencingGraph,
    ) -> Result<u64, CoreError> {
        if self.sim.world().handoff.is_some() {
            return Err(CoreError::ReconfigPending {
                next_epoch: self.sim.world().protocol.epoch() + 1,
            });
        }
        for g in membership.groups() {
            if membership.group_size(g) > 0 && graph.path(g).is_none() {
                return Err(CoreError::InvalidGraph(format!("{g} has no path")));
            }
        }
        let world = self.sim.world_mut();
        world.handoff = Some(Handoff {
            membership: membership.clone(),
            graph,
            parked: Vec::new(),
        });
        Ok(world.protocol.epoch() + 1)
    }

    /// The configuration epoch currently sequencing messages. Starts at 0
    /// and advances by one per completed reconfiguration (quiescent or
    /// online).
    pub fn epoch(&self) -> u64 {
        self.sim.world().protocol.epoch()
    }

    /// `true` while an online reconfiguration has begun but its epoch
    /// handoff has not completed yet.
    pub fn reconfig_pending(&self) -> bool {
        self.sim.world().handoff.is_some()
    }

    /// Publishes accepted but parked behind the pending epoch handoff;
    /// 0 when no handoff is pending. Bounded by the publish rate times
    /// the drain time — the churn soak asserts exactly that.
    pub fn parked_publishes(&self) -> usize {
        self.sim
            .world()
            .handoff
            .as_ref()
            .map_or(0, |h| h.parked.len())
    }

    /// Total ordering-metadata bytes the network carried so far: each
    /// message's stamps + group number, counted once per hop between
    /// sequencing atoms and once per distribution copy. The §4.4 overhead
    /// argument, integrated over distance — compare against
    /// `vector_timestamp_bytes(n)` times the same hop count.
    pub fn ordering_overhead_bytes(&self) -> u64 {
        self.sim.world().overhead_bytes
    }

    /// The hop-by-hop timeline of a message: the publishing host, every
    /// sequencing atom it visited, and each destination's arrival, with
    /// virtual timestamps. Useful for debugging placements and latency.
    pub fn trace(&self, id: MessageId) -> Option<&[(Endpoint, SimTime)]> {
        self.sim.world().traces.get(&id).map(Vec::as_slice)
    }

    /// Messages processed by each atom (stamping or transit), for load
    /// comparisons against centralized sequencing.
    pub fn atom_loads(&self) -> &[u64] {
        self.sim.world().protocol.atom_loads()
    }

    /// Messages each atom actually stamped (transit excluded).
    pub fn atom_stamp_loads(&self) -> &[u64] {
        self.sim.world().protocol.stamp_loads()
    }

    /// Per-receiver ordering-buffer high-water marks: how deep the
    /// deliver-or-buffer queue got while waiting for predecessors.
    pub fn receiver_buffer_highwater(&self) -> BTreeMap<NodeId, usize> {
        self.sim
            .world()
            .receivers
            .iter()
            .map(|(n, r)| (*n, r.queue().max_buffered()))
            .collect()
    }

    /// Per-receiver delivered counts (the "most loaded receiver" bound of
    /// the paper's scalability argument).
    pub fn receiver_loads(&self) -> BTreeMap<NodeId, u64> {
        self.sim
            .world()
            .receivers
            .iter()
            .map(|(n, r)| (*n, r.queue().delivered_count()))
            .collect()
    }
}

/// Swaps a new configuration into a *drained* world — no frame in
/// flight, no message buffered, no core holding parked frames (callers
/// guarantee this; `resync_with` double-checks by panicking otherwise).
/// Counters of surviving groups and atoms carry over (atom ids are
/// stable under [`seqnet_overlap::GraphBuilder::dynamic`] updates) and
/// the configuration epoch advances; receiver expectations re-synchronize
/// so subscribers joining mid-stream start from the counters' current
/// positions; surviving cores keep their recovery counters and new atoms
/// get fresh cores.
fn apply_config(world: &mut World, membership: Membership, graph: SequencingGraph) {
    world.protocol.adopt(&graph);
    let old_receivers = std::mem::take(&mut world.receivers);
    let mut receivers = BTreeMap::new();
    for node in membership.nodes() {
        let receiver = match old_receivers.get(&node) {
            Some(r) => {
                let mut q = r.queue().clone();
                q.resync_with(&membership, &graph, &world.protocol);
                ReceiverCore::from_queue(q)
            }
            None => ReceiverCore::synced(node, &membership, &graph, &world.protocol),
        };
        receivers.insert(node, receiver);
    }
    world.receivers = receivers;
    let atoms = graph.num_atoms();
    world.cores.truncate(atoms);
    while world.cores.len() < atoms {
        world.cores.push(NodeCore::new(world.cores.len(), false));
    }
    world.membership = membership;
    world.graph = graph;
}

/// Event: a message enters the sequencing network.
fn inject(sim: &mut Simulator<World>, id: MessageId, sender: NodeId, group: GroupId, payload: Bytes) {
    let now = sim.now();
    let world = sim.world_mut();
    world.publish_time.insert(id, now);
    world.messages_published += 1;
    world.traces.insert(id, vec![(Endpoint::Host(sender), now)]);
    if let Some(sink) = &world.sink {
        let mut sink = sink.lock().expect("trace sink poisoned");
        sink.now(now.as_micros());
        if sink.enabled() {
            sink.record(TraceEvent {
                msg: Some(id.0),
                group: Some(u64::from(group.0)),
                detail: Some(u64::from(sender.0)),
                ..TraceEvent::new(EventKind::Publish, Actor::Publisher)
            });
        }
    }
    let msg = Message::new(id, sender, group, payload);
    let ingress = world
        .graph
        .ingress(group)
        .expect("publish checked the path exists");
    let mut delay = world
        .delays
        .delay(Endpoint::Host(sender), Endpoint::Atom(ingress));
    if let Some(ctx) = &mut world.fault {
        let tag = fault_tag(id, 0x4000_0000 | u64::from(sender.0), u64::from(ingress.0));
        let penalty = ctx.plan.loss_penalty(tag, now);
        if penalty > SimTime::ZERO {
            ctx.messages_delayed += 1;
            delay = delay + penalty;
        }
    }
    let arrival = world
        .fifo
        .arrival((Endpoint::Host(sender), Endpoint::Atom(ingress)), now, delay);
    enqueue_channel(sim, Endpoint::Host(sender), Endpoint::Atom(ingress), arrival, msg);
}

/// Appends a frame to its directed channel and, if the queue was empty,
/// schedules the pump that will drain it. The [`FifoStamper`] guarantees
/// per-channel arrivals are non-decreasing, so appending preserves the
/// queue's arrival order and the already-scheduled pump (at the old head's
/// arrival, ≤ this one) stays correct for a non-empty queue.
fn enqueue_channel(
    sim: &mut Simulator<World>,
    from: Endpoint,
    to: Endpoint,
    arrival: SimTime,
    msg: Message,
) {
    let world = sim.world_mut();
    let queue = world.channels.entry((from, to)).or_default();
    debug_assert!(
        queue.back().map_or(true, |&(a, _)| a <= arrival),
        "FIFO stamping keeps channel arrivals non-decreasing"
    );
    let was_empty = queue.is_empty();
    queue.push_back((arrival, msg));
    if was_empty {
        sim.schedule_at(arrival, move |sim| pump_channel(sim, from, to));
    }
}

/// Event: a channel pump fires. Drains every frame due now (up to the
/// batch limit) into one batched core call, and reschedules itself if
/// frames remain. This is the simulator's event-batching point: identical
/// arrival instants — bursts, fan-ins, replay storms — reach the core as
/// one batch instead of one event each.
fn pump_channel(sim: &mut Simulator<World>, from: Endpoint, to: Endpoint) {
    let now = sim.now();
    let (mut batch, reschedule) = {
        let world = sim.world_mut();
        let limit = world.batch_limit.max(1);
        let queue = world
            .channels
            .get_mut(&(from, to))
            .expect("a scheduled pump has a channel queue");
        let mut batch = std::mem::take(&mut world.batch_scratch);
        while batch.len() < limit && queue.front().is_some_and(|&(a, _)| a <= now) {
            batch.push(queue.pop_front().expect("front checked").1);
        }
        debug_assert!(!batch.is_empty(), "pumps fire at their head's arrival");
        *world.batch_sizes.entry(batch.len()).or_insert(0) += 1;
        (batch, queue.front().map(|&(a, _)| a.max(now)))
    };
    // Keep the queue-nonempty ⇒ pump-scheduled invariant before touching
    // the cores (which may enqueue onto *other* channels, never this one).
    if let Some(at) = reschedule {
        sim.schedule_at(at, move |sim| pump_channel(sim, from, to));
    }
    match to {
        Endpoint::Atom(atom) => at_atom_batch(sim, &mut batch, atom),
        Endpoint::Host(member) => arrive_batch(sim, &mut batch, member),
    }
    sim.world_mut().batch_scratch = batch;
}

/// Event: a batch of messages reaches a sequencing atom. The atom's
/// protocol core makes every ordering decision (stamp, forward, park);
/// this driver only translates the emitted commands into channel
/// transmissions under the delay, partition, and loss models. `msgs` is
/// drained in order; processing a batch of n is semantically identical to
/// n single arrivals (PROTOCOL.md §12), the commands merely accumulate in
/// one reused buffer.
fn at_atom_batch(sim: &mut Simulator<World>, msgs: &mut Vec<Message>, atom: AtomId) {
    let now = sim.now();
    let world = sim.world_mut();
    let mut out = std::mem::take(&mut world.cmdbuf);
    debug_assert!(out.is_empty(), "command buffer is drained between pumps");
    {
        let routing = Routing::solo(&world.membership, &world.graph);
        let core = &mut world.cores[atom.0 as usize];
        if core.is_accepting() {
            // Parked arrivals get their trace entry when the replay
            // re-processes them, so the hop timestamps reflect actual
            // work. Liveness cannot change inside a batch — crashes and
            // restarts are separate events — so one check covers it.
            for msg in msgs.iter() {
                world
                    .traces
                    .entry(msg.id)
                    .or_default()
                    .push((Endpoint::Atom(atom), now));
            }
        }
        let events = msgs.drain(..).map(|msg| Event::FrameArrived {
            frame: Frame {
                msg,
                target_atom: Some(atom),
            },
        });
        match &world.sink {
            Some(sink) => {
                let mut sink = sink.lock().expect("trace sink poisoned");
                sink.now(now.as_micros());
                core.on_events_traced(&routing, &mut world.protocol, events, &mut *sink, &mut out);
            }
            None => core.on_events(&routing, &mut world.protocol, events, &mut out),
        }
    }

    // Execute the emitted sends under the transport models. Each frame
    // yields either one forward to the next atom's owner or the egress
    // fan-out to the group members, in membership order; arrival stamps
    // are computed in command order, exactly as per-event stepping would.
    let mut outbox = std::mem::take(&mut world.outbox);
    for command in out.drain() {
        match command {
            Command::Send {
                to: Peer::Node(_),
                frame,
            } => {
                let next = frame
                    .target_atom
                    .expect("node-bound frames carry a target atom");
                let msg = frame.msg;
                world.overhead_bytes += msg.ordering_overhead_bytes() as u64;
                let mut delay = world
                    .delays
                    .delay(Endpoint::Atom(atom), Endpoint::Atom(next));
                let mut start = now;
                if let Some(ctx) = &mut world.fault {
                    if let Some(heal) = ctx.plan.cut_until(atom.0 as usize, next.0 as usize, now) {
                        // Partitioned: the frame waits out the cut.
                        ctx.messages_delayed += 1;
                        start = heal;
                    }
                    let tag = fault_tag(msg.id, u64::from(atom.0), u64::from(next.0));
                    let penalty = ctx.plan.loss_penalty(tag, now);
                    if penalty > SimTime::ZERO {
                        ctx.messages_delayed += 1;
                        delay = delay + penalty;
                    }
                }
                let arrival =
                    world
                        .fifo
                        .arrival((Endpoint::Atom(atom), Endpoint::Atom(next)), start, delay);
                outbox.push((Endpoint::Atom(next), arrival, msg));
            }
            Command::Send {
                to: Peer::Host(member),
                frame,
            } => {
                let msg = frame.msg;
                world.overhead_bytes += msg.ordering_overhead_bytes() as u64;
                let mut delay = world
                    .delays
                    .delay(Endpoint::Atom(atom), Endpoint::Host(member));
                if let Some(ctx) = &mut world.fault {
                    let tag = fault_tag(
                        msg.id,
                        u64::from(atom.0),
                        0x8000_0000 | u64::from(member.0),
                    );
                    let penalty = ctx.plan.loss_penalty(tag, now);
                    if penalty > SimTime::ZERO {
                        ctx.messages_delayed += 1;
                        delay = delay + penalty;
                    }
                }
                let arrival = world.fifo.arrival(
                    (Endpoint::Atom(atom), Endpoint::Host(member)),
                    now,
                    delay,
                );
                outbox.push((Endpoint::Host(member), arrival, msg));
            }
            other => unreachable!("unexpected node-core command {other:?}"),
        }
    }
    world.cmdbuf = out;
    for (dest, arrival, msg) in outbox.drain(..) {
        enqueue_channel(sim, Endpoint::Atom(atom), dest, arrival, msg);
    }
    sim.world_mut().outbox = outbox;
}

/// Event: a crash window opens — the atom's core stops accepting and
/// parks subsequent arrivals in its upstream buffer.
fn crash_atom(sim: &mut Simulator<World>, atom: AtomId) {
    let now = sim.now();
    let world = sim.world_mut();
    let routing = Routing::solo(&world.membership, &world.graph);
    let core = &mut world.cores[atom.0 as usize];
    let commands = match &world.sink {
        Some(sink) => {
            let mut sink = sink.lock().expect("trace sink poisoned");
            sink.now(now.as_micros());
            core.on_event_traced(&routing, &mut world.protocol, Event::NodeCrashed, &mut *sink)
        }
        None => core.on_event(&routing, &mut world.protocol, Event::NodeCrashed),
    };
    debug_assert!(commands.is_empty());
}

/// Event: a crash window closes — the core replays its parked arrivals,
/// in the order they arrived, through the normal arrival path (the
/// simulator counterpart of the runtime's
/// replay-from-upstream-retransmission-buffers recovery). With
/// overlapping windows the atom stays down until the last one ends.
fn restart_atom(sim: &mut Simulator<World>, atom: AtomId) {
    let now = sim.now();
    let world = sim.world_mut();
    if world
        .fault
        .as_ref()
        .is_some_and(|c| c.plan.is_down(atom.0 as usize, now))
    {
        return;
    }
    let limit = world.batch_limit.max(1);
    let routing = Routing::solo(&world.membership, &world.graph);
    let core = &mut world.cores[atom.0 as usize];
    let commands = match &world.sink {
        Some(sink) => {
            let mut sink = sink.lock().expect("trace sink poisoned");
            sink.now(now.as_micros());
            core.on_event_traced(&routing, &mut world.protocol, Event::NodeRestarted, &mut *sink)
        }
        None => core.on_event(&routing, &mut world.protocol, Event::NodeRestarted),
    };
    // Parked frames replay through the normal arrival path as natural
    // batches at the restart instant (arrival order preserved), chunked
    // to the batch limit so stepped mode replays one frame per call.
    let mut batch = std::mem::take(&mut sim.world_mut().batch_scratch);
    debug_assert!(batch.is_empty(), "replay scratch is drained between events");
    for command in commands {
        match command {
            Command::Replay { frame } => batch.push(frame.msg),
            other => unreachable!("unexpected restart command {other:?}"),
        }
        if batch.len() >= limit {
            at_atom_batch(sim, &mut batch, atom);
        }
    }
    if !batch.is_empty() {
        at_atom_batch(sim, &mut batch, atom);
    }
    sim.world_mut().batch_scratch = batch;
}

/// Event: a batch of messages reaches a destination host. The receiver
/// core runs the Definition 1 deliver-or-buffer decision per frame (one
/// batched call, reused buffers) and emits one `Deliver` command per
/// released message; this driver records them. All frames in a batch
/// share one arrival instant — the pump only coalesces same-instant
/// arrivals — so the recorded timings equal per-event stepping's.
fn arrive_batch(sim: &mut Simulator<World>, msgs: &mut Vec<Message>, member: NodeId) {
    let now = sim.now();
    let world = sim.world_mut();
    let mut out = std::mem::take(&mut world.cmdbuf);
    debug_assert!(out.is_empty(), "command buffer is drained between pumps");
    {
        for msg in msgs.iter() {
            world
                .traces
                .entry(msg.id)
                .or_default()
                .push((Endpoint::Host(member), now));
            world.arrivals.insert((msg.id, member), now);
        }
        let receiver = world
            .receivers
            .get_mut(&member)
            .expect("members have receiver cores");
        let events = msgs.drain(..).map(|msg| Event::FrameArrived {
            frame: Frame {
                msg,
                target_atom: None,
            },
        });
        match &world.sink {
            Some(sink) => {
                let mut sink = sink.lock().expect("trace sink poisoned");
                sink.now(now.as_micros());
                receiver.offer_batch_traced(events, &mut *sink, &mut out);
            }
            None => receiver.offer_batch(events, &mut out),
        }
    }

    let mut fired: Vec<Trigger> = Vec::new();
    for command in out.drain() {
        let d = match command {
            Command::Deliver { msg, .. } => msg,
            other => unreachable!("unexpected receiver command {other:?}"),
        };
        let published = world.publish_time[&d.id];
        let arrived = world.arrivals[&(d.id, member)];
        let unicast = world
            .delays
            .delay(Endpoint::Host(d.sender), Endpoint::Host(member));
        let record = DeliveryRecord {
            id: d.id,
            sender: d.sender,
            group: d.group,
            destination: member,
            published,
            arrived,
            delivered: now,
            unicast,
            stamps: d.stamps.len(),
            epoch: d.epoch,
            payload: d.payload,
        };
        world.deliveries.entry(member).or_default().push(record);

        // Causal reactions waiting on this delivery.
        let mut i = 0;
        while i < world.triggers.len() {
            if world.triggers[i].sender == member && world.triggers[i].after == d.id {
                fired.push(world.triggers.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    world.cmdbuf = out;
    for t in fired {
        inject(sim, t.id, t.sender, t.group, t.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn overlapped_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn every_member_delivers_every_message() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        bus.publish(n(0), g(0), b"a".to_vec()).unwrap();
        bus.publish(n(3), g(1), b"b".to_vec()).unwrap();
        bus.publish(n(1), g(0), b"c".to_vec()).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        assert_eq!(bus.delivered(n(0)).len(), 2, "n0 gets both g0 messages");
        assert_eq!(bus.delivered(n(1)).len(), 3);
        assert_eq!(bus.delivered(n(2)).len(), 3);
        assert_eq!(bus.delivered(n(3)).len(), 1);
        assert_eq!(bus.messages_published(), 3);
    }

    #[test]
    fn overlap_members_agree_on_order() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        for i in 0..10u32 {
            let (sender, group) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            bus.publish(sender, group, vec![i as u8]).unwrap();
        }
        bus.run_to_quiescence();
        let o1: Vec<MessageId> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<MessageId> = bus.delivered(n(2)).iter().map(|d| d.id).collect();
        assert_eq!(o1, o2, "nodes in both groups see identical order");
        assert_eq!(o1.len(), 10);
    }

    #[test]
    fn unknown_group_rejected() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        assert_eq!(
            bus.publish(n(0), g(9), vec![]),
            Err(CoreError::UnknownGroup(g(9)))
        );
    }

    #[test]
    fn causal_publish_requires_membership() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        assert!(bus.publish_causal(n(0), g(0), vec![]).is_ok());
        assert_eq!(
            bus.publish_causal(n(0), g(1), vec![]),
            Err(CoreError::SenderNotSubscribed {
                sender: n(0),
                group: g(1)
            })
        );
    }

    #[test]
    fn causal_reaction_ordering() {
        // n1 subscribes to both groups. It reacts to m_a (on g0) by
        // publishing m_b (on g1). Every common subscriber must deliver
        // m_a before m_b.
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        let ma = bus.publish(n(0), g(0), b"cause".to_vec()).unwrap();
        let mb = bus
            .publish_after(n(1), ma, g(1), b"effect".to_vec())
            .unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.pending_triggers(), 0);
        for node in [n(1), n(2)] {
            let order: Vec<MessageId> = bus.delivered(node).iter().map(|d| d.id).collect();
            let pa = order.iter().position(|&x| x == ma).unwrap();
            let pb = order.iter().position(|&x| x == mb).unwrap();
            assert!(pa < pb, "{node} delivered effect before cause");
        }
    }

    #[test]
    fn trigger_without_delivery_stays_pending() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        let ghost = MessageId(999);
        bus.publish_after(n(1), ghost, g(0), vec![]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.pending_triggers(), 1);
    }

    #[test]
    fn timing_fields_are_consistent() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        bus.publish(n(0), g(0), vec![]).unwrap();
        bus.run_to_quiescence();
        for d in bus.all_deliveries() {
            assert!(d.published <= d.arrived);
            assert!(d.arrived <= d.delivered);
        }
    }

    #[test]
    fn publish_at_future_time() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        bus.publish_at(SimTime::from_ms(5.0), n(0), g(0), vec![])
            .unwrap();
        bus.run_to_quiescence();
        let d = &bus.delivered(n(0))[0];
        assert_eq!(d.published, SimTime::from_ms(5.0));
    }

    #[test]
    fn network_backed_run_delivers_everything() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let setup = NetworkSetup::generate(&TransitStubParams::small(), 8, 4, &mut rng);
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2), n(3)]),
            (g(1), vec![n(2), n(3), n(4), n(5)]),
            (g(2), vec![n(0), n(3), n(6), n(7)]),
        ]);
        let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
        // Every node publishes to each of its groups (the fig-3 workload).
        for node in m.nodes().collect::<Vec<_>>() {
            for grp in m.groups_of(node).collect::<Vec<_>>() {
                bus.publish(node, grp, vec![]).unwrap();
            }
        }
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0, "no deadlock on a valid graph");
        // Each group's members deliver size(group) messages per group.
        let expected: usize = m
            .nodes()
            .map(|node| {
                m.groups_of(node)
                    .map(|grp| m.group_size(grp))
                    .sum::<usize>()
            })
            .sum();
        let total: usize = bus.all_deliveries().count();
        assert_eq!(total, expected);
    }

    #[test]
    fn atom_and_receiver_loads_reported() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        for _ in 0..4 {
            bus.publish(n(0), g(0), vec![]).unwrap();
        }
        bus.run_to_quiescence();
        let total_atom_load: u64 = bus.atom_loads().iter().sum();
        assert!(total_atom_load >= 4, "each message hits at least one atom");
        let loads = bus.receiver_loads();
        assert_eq!(loads[&n(0)], 4);
        assert_eq!(loads[&n(3)], 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use seqnet_sim::FaultPlan;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn overlapped_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    /// Crashing every atom parks in-flight messages; once the atoms come
    /// back, parked messages replay in arrival order and the total-order
    /// guarantee (Definition 1 / Theorem 1) still holds.
    #[test]
    fn crash_all_atoms_then_recover() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        let atoms = bus.graph().num_atoms();
        let mut plan = FaultPlan::new();
        for a in 0..atoms {
            plan = plan.crash(a, SimTime::from_ms(0.5), SimTime::from_ms(20.0));
        }
        bus.apply_fault_plan(plan);
        for i in 0..6u32 {
            let (sender, group) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            bus.publish(sender, group, vec![i as u8]).unwrap();
        }
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0, "recovery left messages stuck");
        let o1: Vec<MessageId> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<MessageId> = bus.delivered(n(2)).iter().map(|d| d.id).collect();
        assert_eq!(o1, o2, "order diverged across a full-crash outage");
        assert_eq!(o1.len(), 6);
        let stats = bus.fault_stats();
        assert_eq!(stats.recovery.crashes, atoms as u64);
        assert!(
            stats.recovery.messages_parked > 0,
            "publishes at 1ms hit down atoms"
        );
        assert_eq!(
            stats.recovery.frames_replayed, stats.recovery.messages_parked,
            "every parked message was replayed"
        );
    }

    /// Partitions and loss bursts delay but never lose or reorder: every
    /// message is still delivered, in an order all overlap members share.
    #[test]
    fn partition_and_loss_preserve_delivery() {
        let m = overlapped_membership();
        let mut bus = OrderedPubSub::new(&m);
        let atoms = bus.graph().num_atoms();
        let mut plan =
            FaultPlan::new().loss_burst(SimTime::ZERO, SimTime::from_ms(30.0), SimTime::from_ms(2.0), 3);
        if atoms >= 2 {
            plan = plan.partition(0, 1, SimTime::ZERO, SimTime::from_ms(10.0));
        }
        bus.apply_fault_plan(plan);
        for i in 0..8u32 {
            let (sender, group) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            bus.publish(sender, group, vec![i as u8]).unwrap();
        }
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        let o1: Vec<MessageId> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<MessageId> = bus.delivered(n(2)).iter().map(|d| d.id).collect();
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 8);
    }

    /// The same seed produces the byte-for-byte same run: identical
    /// deliveries at identical simulated times.
    #[test]
    fn randomized_plan_is_deterministic() {
        fn run_once(seed: u64) -> (Vec<(NodeId, MessageId, SimTime)>, FaultStats) {
            let m = overlapped_membership();
            let mut bus = OrderedPubSub::new(&m);
            let atoms = bus.graph().num_atoms();
            bus.apply_fault_plan(FaultPlan::randomized(seed, atoms, SimTime::from_ms(50.0)));
            for i in 0..8u32 {
                let (sender, group) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
                bus.publish_at(SimTime::from_ms(f64::from(i)), sender, group, vec![i as u8])
                    .unwrap();
            }
            bus.run_to_quiescence();
            assert_eq!(bus.stuck_messages(), 0, "seed {seed} left messages stuck");
            let mut log: Vec<(NodeId, MessageId, SimTime)> = bus
                .all_deliveries()
                .map(|d| (d.destination, d.id, d.delivered))
                .collect();
            log.sort();
            (log, bus.fault_stats())
        }
        for seed in [1u64, 7, 42] {
            let (log_a, stats_a) = run_once(seed);
            let (log_b, stats_b) = run_once(seed);
            assert_eq!(log_a, log_b, "seed {seed} was not reproducible");
            assert_eq!(stats_a, stats_b);
            // 8 messages, each delivered by its group's 3 members.
            assert_eq!(log_a.len(), 24, "seed {seed} lost deliveries");
        }
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use seqnet_membership::{GroupId, Membership, NodeId};
    use seqnet_topology::TransitStubParams;

    /// Every ablation variant must still satisfy the ordering contract —
    /// the knobs trade performance, never correctness.
    #[test]
    fn all_network_configs_order_correctly() {
        let m = Membership::from_groups([
            (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
            (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
            (GroupId(2), vec![NodeId(0), NodeId(2), NodeId(3)]),
        ]);
        let setup = NetworkSetup::generate(
            &TransitStubParams::small(),
            4,
            2,
            &mut StdRng::seed_from_u64(2),
        );
        for colocate in [true, false] {
            for anchored in [true, false] {
                for heuristic_placement in [true, false] {
                    for optimize_chains in [true, false] {
                        let config = NetworkConfig {
                            colocate,
                            anchored,
                            heuristic_placement,
                            optimize_chains,
                        };
                        let mut rng = StdRng::seed_from_u64(5);
                        let mut bus =
                            OrderedPubSub::with_network_config(&m, &setup, config, &mut rng);
                        for i in 0..6u32 {
                            let grp = GroupId(i % 3);
                            let sender = m.members(grp).next().unwrap();
                            bus.publish(sender, grp, vec![]).unwrap();
                        }
                        bus.run_to_quiescence();
                        assert_eq!(bus.stuck_messages(), 0, "{config:?} deadlocked");
                        let o2: Vec<_> =
                            bus.delivered(NodeId(2)).iter().map(|d| d.id).collect();
                        assert_eq!(o2.len(), 6, "{config:?} lost messages");
                        for a in [NodeId(0), NodeId(1), NodeId(3)] {
                            let da: Vec<_> =
                                bus.delivered(a).iter().map(|d| d.id).collect();
                            let ca: Vec<_> =
                                da.iter().filter(|x| o2.contains(x)).collect();
                            let cb: Vec<_> =
                                o2.iter().filter(|x| da.contains(x)).collect();
                            assert_eq!(ca, cb, "{config:?}: {a} disagrees with N2");
                        }
                    }
                }
            }
        }
    }
}
