//! The static routing view a node core consults: who subscribes where,
//! which atoms chain into which sequencing paths, and which driver-level
//! node owns each atom.

use seqnet_membership::Membership;
use seqnet_overlap::{AtomId, SequencingGraph};
use std::collections::HashMap;

/// How atoms map onto driver-level sequencing nodes.
#[derive(Debug, Clone, Copy)]
enum OwnerMap<'a> {
    /// One node per atom, both indexed identically — the simulator's
    /// layout, where every atom is its own event target.
    Solo,
    /// Atoms co-located onto fewer nodes (§3.4), as computed by
    /// [`seqnet_overlap::Colocation`] — the threaded runtime's layout.
    Colocated(&'a HashMap<AtomId, usize>),
}

/// A borrowed, immutable view of the deployment's routing facts, passed to
/// [`NodeCore::on_event`](crate::proto::NodeCore::on_event) on every call.
/// Building one is free; drivers construct it from the membership, graph,
/// and atom-placement state they already own, so the core never holds (or
/// clones) routing state that the driver might reconfigure.
#[derive(Debug, Clone, Copy)]
pub struct Routing<'a> {
    membership: &'a Membership,
    graph: &'a SequencingGraph,
    owner: OwnerMap<'a>,
}

impl<'a> Routing<'a> {
    /// Routing for a one-node-per-atom layout: atom `i` is owned by node
    /// `i`. Used by the simulator.
    pub fn solo(membership: &'a Membership, graph: &'a SequencingGraph) -> Self {
        Routing {
            membership,
            graph,
            owner: OwnerMap::Solo,
        }
    }

    /// Routing for a co-located layout: `atom_node` maps every live atom
    /// to the sequencing node hosting it. Used by the threaded runtime.
    pub fn colocated(
        membership: &'a Membership,
        graph: &'a SequencingGraph,
        atom_node: &'a HashMap<AtomId, usize>,
    ) -> Self {
        Routing {
            membership,
            graph,
            owner: OwnerMap::Colocated(atom_node),
        }
    }

    /// The driver-level node that owns (executes) `atom`.
    ///
    /// # Panics
    ///
    /// Panics if a co-location map has no entry for `atom` — wiring bug,
    /// not an input error.
    pub fn owner_of(&self, atom: AtomId) -> usize {
        match self.owner {
            OwnerMap::Solo => atom.0 as usize,
            OwnerMap::Colocated(map) => {
                *map.get(&atom).expect("every live atom has an owner node")
            }
        }
    }

    /// The membership matrix (who subscribes to what).
    pub fn membership(&self) -> &'a Membership {
        self.membership
    }

    /// The sequencing graph (paths, overlaps, retirement).
    pub fn graph(&self) -> &'a SequencingGraph {
        self.graph
    }
}
