//! The sequencing-atom state machine (paper §3.1).

use crate::{Message, SeqNo};
use seqnet_membership::GroupId;
use seqnet_overlap::{AtomId, SequencingGraph};
use std::collections::BTreeMap;

/// Where a message goes after an atom processes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Forward to the next sequencing atom on the group's path.
    Atom(AtomId),
    /// The path ends here: hand the message to the distribution phase.
    Egress,
}

/// The mutable sequencing state of an entire sequencing network: one
/// overlap counter per atom plus one group-local counter per group (owned
/// by the group's ingress atom).
///
/// Each atom's per-§3.1 state maps onto this as follows: the *sequence
/// number for its overlapped groups* is `overlap_counters[atom]`; the
/// *group-local sequence numbers* live in `group_counters` keyed by the
/// groups the atom ingresses; the *forwarding and reverse-path tables* are
/// derived from the (static) group paths of the [`SequencingGraph`]; the
/// *retransmission and receive buffers* exist only where links can
/// actually lose or reorder messages — the threaded runtime
/// (`seqnet-runtime`) implements them, the simulator's channels are
/// reliable like the paper's.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::GraphBuilder;
/// use seqnet_core::{ProtocolState, Message, MessageId, NextHop};
///
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1)]),
/// ]);
/// let graph = GraphBuilder::new().build(&m);
/// let mut state = ProtocolState::new(&graph);
/// let mut msg = Message::new(MessageId(0), NodeId(0), GroupId(0), vec![]);
/// let ingress = graph.ingress(GroupId(0)).unwrap();
/// let hop = state.process(&graph, &mut msg, ingress);
/// assert_eq!(hop, NextHop::Egress);
/// assert!(msg.is_sequenced());
/// assert_eq!(msg.stamps.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProtocolState {
    /// Last number assigned by each atom (indexed by atom id).
    overlap_counters: Vec<SeqNo>,
    /// Last group-local number per group.
    group_counters: BTreeMap<GroupId, SeqNo>,
    /// Messages processed per atom (stamping or transit), for load stats.
    atom_loads: Vec<u64>,
    /// Messages actually stamped per atom (excludes transit traffic).
    stamp_loads: Vec<u64>,
    /// Configuration epoch this sequencing state operates under. Epoch 0
    /// is the initial configuration; [`ProtocolState::adopt`] increments
    /// it at each online-reconfiguration handoff (PROTOCOL.md §14).
    /// Ingress atoms stamp the current epoch into every message they
    /// sequence, so deliveries are attributable to a configuration.
    epoch: u64,
}

impl Clone for ProtocolState {
    fn clone(&self) -> Self {
        ProtocolState {
            overlap_counters: self.overlap_counters.clone(),
            group_counters: self.group_counters.clone(),
            atom_loads: self.atom_loads.clone(),
            stamp_loads: self.stamp_loads.clone(),
            epoch: self.epoch,
        }
    }

    /// Allocation-reusing clone, for drivers that checkpoint the same
    /// state every few milliseconds (the threaded runtime's snapshot
    /// loop): vectors are overwritten in place, and the group-counter
    /// map is updated value-wise when both sides index the same groups —
    /// the steady state, since the group set is fixed per graph.
    fn clone_from(&mut self, source: &Self) {
        self.overlap_counters.clone_from(&source.overlap_counters);
        self.atom_loads.clone_from(&source.atom_loads);
        self.stamp_loads.clone_from(&source.stamp_loads);
        self.epoch = source.epoch;
        let same_keys = self.group_counters.len() == source.group_counters.len()
            && self
                .group_counters
                .keys()
                .zip(source.group_counters.keys())
                .all(|(a, b)| a == b);
        if same_keys {
            for (dst, src) in self
                .group_counters
                .values_mut()
                .zip(source.group_counters.values())
            {
                *dst = *src;
            }
        } else {
            self.group_counters = source.group_counters.clone();
        }
    }
}

impl ProtocolState {
    /// Fresh counters for every atom and group of `graph`.
    pub fn new(graph: &SequencingGraph) -> Self {
        ProtocolState {
            overlap_counters: vec![SeqNo::ZERO; graph.num_atoms()],
            group_counters: graph.paths().map(|(g, _)| (g, SeqNo::ZERO)).collect(),
            atom_loads: vec![0; graph.num_atoms()],
            stamp_loads: vec![0; graph.num_atoms()],
            epoch: 0,
        }
    }

    /// The configuration epoch this state currently sequences under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Forces the configuration epoch, for drivers restoring a node from
    /// a checkpoint or rebuilding state for a later configuration.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Processes `msg` at `atom`:
    ///
    /// * the group's ingress atom assigns the group-local number,
    /// * a live overlap atom involving the group assigns its next overlap
    ///   number,
    /// * transit and retired atoms only forward.
    ///
    /// Returns where the message goes next on its group's path.
    ///
    /// # Panics
    ///
    /// Panics if the destination group has no path or `atom` is not on it —
    /// both indicate the caller routed the message incorrectly.
    pub fn process(
        &mut self,
        graph: &SequencingGraph,
        msg: &mut Message,
        atom: AtomId,
    ) -> NextHop {
        let path = graph
            .path(msg.group)
            .unwrap_or_else(|| panic!("{} has no sequencing path", msg.group));
        let pos = path
            .iter()
            .position(|&a| a == atom)
            .unwrap_or_else(|| panic!("{atom} is not on the path of {}", msg.group));

        self.atom_loads[atom.index()] += 1;

        // Ingress: assign the group-local number.
        if pos == 0 {
            let counter = self
                .group_counters
                .entry(msg.group)
                .or_insert(SeqNo::ZERO);
            *counter = counter.next();
            msg.group_seq = *counter;
            msg.epoch = self.epoch;
        }

        // Stamper: assign the overlap number.
        let a = graph.atom(atom);
        if !graph.is_retired(atom) && a.overlap().is_some() && a.stamps(msg.group) {
            let counter = &mut self.overlap_counters[atom.index()];
            *counter = counter.next();
            msg.stamps.push(crate::Stamp {
                atom,
                seq: *counter,
            });
            self.stamp_loads[atom.index()] += 1;
        }

        match path.get(pos + 1) {
            Some(&next) => NextHop::Atom(next),
            None => NextHop::Egress,
        }
    }

    /// Runs `msg` through its group's entire path at once, returning the
    /// fully sequenced message. Useful when per-hop timing is irrelevant
    /// (e.g. logical-order tests).
    ///
    /// # Panics
    ///
    /// Panics if the group has no path.
    pub fn sequence_fully(&mut self, graph: &SequencingGraph, msg: &mut Message) {
        let mut at = graph
            .ingress(msg.group)
            .unwrap_or_else(|| panic!("{} has no sequencing path", msg.group));
        while let NextHop::Atom(next) = self.process(graph, msg, at) {
            at = next;
        }
    }

    /// Messages processed by each atom so far (stamping or transit).
    pub fn atom_loads(&self) -> &[u64] {
        &self.atom_loads
    }

    /// Messages each atom actually stamped (transit traffic excluded).
    /// The paper's scalability bound applies to this quantity: an atom's
    /// overlap members receive every message it stamps, so no atom stamps
    /// more than its most loaded overlap member receives.
    pub fn stamp_loads(&self) -> &[u64] {
        &self.stamp_loads
    }

    /// Adapts the state to a reconfigured sequencing graph (the epoch-N
    /// → N+1 handoff of PROTOCOL.md §14, or a quiescent membership
    /// change): counters of surviving atoms and groups carry over — atom
    /// ids are stable across incremental updates — and new atoms/groups
    /// start fresh. Counters of vanished groups are dropped, and the
    /// configuration epoch advances by one.
    pub fn adopt(&mut self, graph: &SequencingGraph) {
        self.epoch += 1;
        self.overlap_counters.resize(graph.num_atoms(), SeqNo::ZERO);
        self.atom_loads.resize(graph.num_atoms(), 0);
        self.stamp_loads.resize(graph.num_atoms(), 0);
        let live: BTreeMap<GroupId, SeqNo> = graph
            .paths()
            .map(|(g, _)| (g, self.group_counters.get(&g).copied().unwrap_or(SeqNo::ZERO)))
            .collect();
        self.group_counters = live;
    }

    /// The last group-local number assigned for `group`.
    pub fn group_counter(&self, group: GroupId) -> SeqNo {
        self.group_counters.get(&group).copied().unwrap_or(SeqNo::ZERO)
    }

    /// The last overlap number assigned by `atom`.
    pub fn overlap_counter(&self, atom: AtomId) -> SeqNo {
        self.overlap_counters[atom.index()]
    }

    /// Exports the durable sequencing counters as plain integers for an
    /// on-disk checkpoint: overlap counters in atom-index order plus
    /// `(group, counter)` pairs. Load statistics are excluded — they are
    /// diagnostics, not protocol state — so a restored node reports loads
    /// from its restart onward.
    pub fn export_counters(&self) -> (Vec<u64>, Vec<(u32, u64)>) {
        let overlaps = self.overlap_counters.iter().map(|c| c.0).collect();
        let groups = self
            .group_counters
            .iter()
            .map(|(g, c)| (g.0, c.0))
            .collect();
        (overlaps, groups)
    }

    /// Rebuilds protocol state from [`export_counters`](Self::export_counters)
    /// output. The graph must be the same one the exporting node ran
    /// (both sides derive it deterministically from the cluster seed);
    /// counters for atoms or groups beyond the snapshot start at zero.
    pub fn import_counters(
        graph: &SequencingGraph,
        overlaps: &[u64],
        groups: &[(u32, u64)],
    ) -> Self {
        let mut state = Self::new(graph);
        for (i, &c) in overlaps.iter().enumerate().take(state.overlap_counters.len()) {
            state.overlap_counters[i] = SeqNo(c);
        }
        for &(g, c) in groups {
            if let Some(counter) = state.group_counters.get_mut(&GroupId(g)) {
                *counter = SeqNo(c);
            }
        }
        state
    }

    /// Folds the sequencing counters into `d`, for model checkers
    /// deduplicating explored states. Load statistics are excluded: they
    /// never influence which number the next message receives.
    pub fn digest_into(&self, d: &mut crate::proto::Digest) {
        d.write_u64(self.epoch);
        d.write_u64(self.overlap_counters.len() as u64);
        for c in &self.overlap_counters {
            d.write_seq(*c);
        }
        d.write_u64(self.group_counters.len() as u64);
        for (g, c) in &self.group_counters {
            d.write_u64(u64::from(g.0));
            d.write_seq(*c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageId;
    use seqnet_membership::{Membership, NodeId};
    use seqnet_overlap::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn fig2_setup() -> (Membership, SequencingGraph) {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(3)]),
            (g(1), vec![n(0), n(1), n(2)]),
            (g(2), vec![n(1), n(2), n(3)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        (m, graph)
    }

    #[test]
    fn counter_export_import_roundtrip_preserves_sequencing() {
        let (_, graph) = fig2_setup();
        let mut state = ProtocolState::new(&graph);
        for i in 0..5 {
            let mut msg = Message::new(MessageId(i), n(0), g(0), vec![]);
            state.sequence_fully(&graph, &mut msg);
        }

        let (overlaps, groups) = state.export_counters();
        let mut restored = ProtocolState::import_counters(&graph, &overlaps, &groups);

        // The restored state hands out exactly the numbers the original
        // would have assigned next.
        let mut next_orig = Message::new(MessageId(5), n(0), g(0), vec![]);
        let mut next_rest = next_orig.clone();
        state.sequence_fully(&graph, &mut next_orig);
        restored.sequence_fully(&graph, &mut next_rest);
        assert_eq!(next_orig.group_seq, next_rest.group_seq);
        assert_eq!(next_orig.stamps, next_rest.stamps);
        let mut d1 = crate::proto::Digest::new();
        let mut d2 = crate::proto::Digest::new();
        state.digest_into(&mut d1);
        restored.digest_into(&mut d2);
        assert_eq!(d1.finish(), d2.finish());
    }

    #[test]
    fn stamps_collected_along_path() {
        let (_, graph) = fig2_setup();
        let mut state = ProtocolState::new(&graph);
        let mut msg = Message::new(MessageId(0), n(0), g(0), vec![]);
        state.sequence_fully(&graph, &mut msg);
        assert_eq!(msg.group_seq, SeqNo(1));
        // G0 has two double overlaps, so two stamps.
        assert_eq!(msg.stamps.len(), 2);
        for s in &msg.stamps {
            assert_eq!(s.seq, SeqNo(1), "first message through each atom");
        }
    }

    #[test]
    fn group_local_numbers_are_consecutive_per_group() {
        let (_, graph) = fig2_setup();
        let mut state = ProtocolState::new(&graph);
        for i in 1..=3u64 {
            let mut msg = Message::new(MessageId(i), n(0), g(0), vec![]);
            state.sequence_fully(&graph, &mut msg);
            assert_eq!(msg.group_seq, SeqNo(i));
        }
        let mut other = Message::new(MessageId(9), n(0), g(1), vec![]);
        state.sequence_fully(&graph, &mut other);
        assert_eq!(other.group_seq, SeqNo(1), "independent per-group space");
    }

    #[test]
    fn overlap_numbers_shared_between_pair_groups() {
        let (_, graph) = fig2_setup();
        let mut state = ProtocolState::new(&graph);
        let mut m0 = Message::new(MessageId(0), n(0), g(0), vec![]);
        state.sequence_fully(&graph, &mut m0);
        let mut m1 = Message::new(MessageId(1), n(0), g(1), vec![]);
        state.sequence_fully(&graph, &mut m1);
        // The overlap atom for (G0, G1) stamped both, consecutively.
        let shared = graph
            .stampers(g(0))
            .into_iter()
            .find(|a| graph.atom(*a).stamps(g(1)))
            .expect("overlap (G0,G1) exists");
        assert_eq!(m0.stamp_of(shared), Some(SeqNo(1)));
        assert_eq!(m1.stamp_of(shared), Some(SeqNo(2)));
    }

    #[test]
    fn transit_atoms_count_load_but_do_not_stamp() {
        let (_, graph) = fig2_setup();
        // Find the group whose path is longer than its stamper count (the
        // chain of 3 atoms gives one group a transit hop).
        let transit_group = graph
            .paths()
            .find(|(grp, p)| p.len() > graph.stampers(*grp).len())
            .map(|(grp, _)| grp)
            .expect("one group crosses the middle atom in transit");
        let mut state = ProtocolState::new(&graph);
        let mut msg = Message::new(MessageId(0), n(1), transit_group, vec![]);
        state.sequence_fully(&graph, &mut msg);
        assert_eq!(msg.stamps.len(), 2);
        let total_load: u64 = state.atom_loads().iter().sum();
        assert_eq!(total_load, 3, "three atoms processed the message");
    }

    #[test]
    fn ingress_only_group_gets_group_seq_only() {
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        let graph = GraphBuilder::new().build(&m);
        let mut state = ProtocolState::new(&graph);
        let mut msg = Message::new(MessageId(0), n(0), g(0), vec![]);
        state.sequence_fully(&graph, &mut msg);
        assert_eq!(msg.group_seq, SeqNo(1));
        assert!(msg.stamps.is_empty());
    }

    #[test]
    fn retired_atoms_forward_without_stamping() {
        let (_, graph) = fig2_setup();
        let mut graph = graph;
        let victim = graph.stampers(g(0))[0];
        graph.retire(victim);
        let mut state = ProtocolState::new(&graph);
        let mut msg = Message::new(MessageId(0), n(0), g(0), vec![]);
        state.sequence_fully(&graph, &mut msg);
        assert_eq!(msg.stamps.len(), 1, "retired atom skipped");
        assert!(msg.stamp_of(victim).is_none());
    }

    #[test]
    #[should_panic(expected = "is not on the path")]
    fn processing_off_path_panics() {
        let (_, graph) = fig2_setup();
        let mut state = ProtocolState::new(&graph);
        let mut msg = Message::new(MessageId(0), n(0), g(0), vec![]);
        // Find an atom not on g0's path, if any; otherwise force with a
        // bogus atom id via the other group's exclusive stamper.
        let path = graph.path(g(0)).unwrap().to_vec();
        let off = graph
            .atoms()
            .iter()
            .map(|a| a.id)
            .find(|a| !path.contains(a));
        match off {
            Some(a) => {
                let _ = state.process(&graph, &mut msg, a);
            }
            None => panic!("is not on the path (degenerate topology)"),
        }
    }
}
