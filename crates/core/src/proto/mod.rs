//! The sans-I/O protocol core: every ordering decision, no transport.
//!
//! This module family is the single implementation of the paper's
//! protocol logic, shared verbatim by the deterministic simulator
//! ([`OrderedPubSub`](crate::OrderedPubSub)) and the threaded runtime
//! (`seqnet-runtime`). It is structured as pure state machines that
//! consume [`Event`]s and emit [`Command`]s:
//!
//! * [`ProtocolState`] ([`atom`](self)) — the §3.1 sequencing-atom state
//!   machine: group-local numbering at ingress, overlap stamping, transit
//!   forwarding.
//! * [`NodeCore`] — a sequencing node: routes frames through its
//!   consecutive atoms, fans out at egress, parks frames across crash
//!   windows and replays them on restart, and implements the PR 1
//!   group-commit rule (stage outputs, flush + cumulatively ack at
//!   snapshot time).
//! * [`ReceiverCore`] / [`DeliveryQueue`] — the Definition 1
//!   deliver-or-buffer rule at each subscriber.
//! * [`Routing`] — the borrowed routing view (membership, graph, atom
//!   ownership) a core consults per event.
//! * [`RecoveryStats`] — crash-recovery counters shared by the
//!   simulator's `FaultStats` and the runtime's `RuntimeStats`.
//! * [`CommandBuf`] — the caller-owned command buffer behind the batched
//!   fast path (`NodeCore::on_events`, `ReceiverCore::offer_batch`): a
//!   batch is semantically a sequence of single events, executed without
//!   per-message allocations (PROTOCOL.md §12).
//! * [`Digest`] — platform-stable state digests; every core folds its
//!   observable state in via `digest_into`, which is how the
//!   `seqnet-check` model checker deduplicates explored states.
//! * [`testing`] — seeded configuration and fault-plan generators shared
//!   by the proptest suites and the checker's random-walk mode.
//! * [`trace`] — the structured tracing hooks: every core has an
//!   `on_event_traced` variant taking a `TraceSink`, and `on_event`
//!   delegates to it with the zero-cost `NullSink`.
//!
//! Nothing in here touches clocks, threads, channels, or randomness;
//! drivers own all of that. The contract each driver must uphold (FIFO
//! frame delivery per channel, command execution order, snapshot
//! semantics) is documented in `PROTOCOL.md` under "Protocol core API",
//! and the `sim_runtime_equivalence` integration test feeds identical
//! workloads and fault schedules through both drivers to check they
//! produce identical per-receiver delivery orders.

mod atom;
mod batch;
mod digest;
mod event;
mod node;
mod receiver;
mod routing;
mod stats;
pub mod testing;
pub mod trace;

pub use atom::{NextHop, ProtocolState};
pub use batch::CommandBuf;
pub use digest::Digest;
pub use event::{Command, Event, Frame, Peer};
pub use node::NodeCore;
pub use receiver::{DeliveryQueue, ReceiverCore};
pub use routing::Routing;
pub use stats::RecoveryStats;
