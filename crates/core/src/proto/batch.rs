//! Batched execution support: a caller-owned command buffer the cores
//! write into, so whole frame batches flow through the stamp/forward/
//! deliver path without per-message `Vec` allocations.
//!
//! The equivalence contract (PROTOCOL.md §12): a batch is semantically a
//! sequence of single events. [`NodeCore::on_events`] and
//! [`ReceiverCore::offer_batch`] produce exactly the commands the
//! corresponding `on_event` calls would, in the same order — batching
//! changes allocation behavior, never protocol behavior. The
//! `batch_vs_step` checker oracle and `tests/batch_equivalence.rs` hold
//! both implementations to that contract on every explored schedule.
//!
//! [`NodeCore::on_events`]: super::NodeCore::on_events
//! [`ReceiverCore::offer_batch`]: super::ReceiverCore::offer_batch

use super::event::Command;
use crate::Message;
use seqnet_membership::NodeId;

/// A reusable command sink plus the scratch space the cores need while
/// filling it. Create one per driver loop, pass it to every batched core
/// call, and [`clear`](CommandBuf::clear) (or [`drain`](CommandBuf::drain))
/// between batches: after warm-up the hot path performs no allocation at
/// all.
///
/// Batched calls **append**; they never clear. That lets a driver collect
/// the output of several cores (e.g. a node batch followed by the
/// receiver batches it fans out to) into one buffer when convenient.
#[derive(Debug, Default)]
pub struct CommandBuf {
    /// The commands emitted so far, in execution order.
    pub(super) cmds: Vec<Command>,
    /// Egress fan-out scratch: the member list of the group being fanned
    /// out, reused across frames. Always left empty between uses.
    pub(super) members: Vec<NodeId>,
    /// Receiver release scratch: messages a `DeliveryQueue` released,
    /// reused across offers. Always left empty between uses.
    pub(super) msgs: Vec<Message>,
}

impl CommandBuf {
    /// An empty buffer. Equivalent to `CommandBuf::default()`.
    pub fn new() -> Self {
        CommandBuf::default()
    }

    /// Clears the accumulated commands, retaining every allocation.
    pub fn clear(&mut self) {
        self.cmds.clear();
    }

    /// The commands accumulated so far, in execution order.
    pub fn commands(&self) -> &[Command] {
        &self.cmds
    }

    /// Drains the accumulated commands in order, leaving the buffer (and
    /// its capacity) ready for the next batch.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Command> {
        self.cmds.drain(..)
    }

    /// Consumes the buffer, returning the commands. Used by the
    /// single-event wrappers, which still return `Vec<Command>`.
    pub fn into_commands(self) -> Vec<Command> {
        self.cmds
    }

    /// Appends one command (drivers occasionally interleave their own).
    pub fn push(&mut self, cmd: Command) {
        self.cmds.push(cmd);
    }

    /// Number of accumulated commands.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// `true` if no commands have accumulated.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Command, Event, Frame, NodeCore, ProtocolState, ReceiverCore, Routing};
    use super::*;
    use crate::{Message, MessageId};
    use seqnet_membership::{GroupId, Membership};
    use seqnet_overlap::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn setup() -> (Membership, seqnet_overlap::SequencingGraph) {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        (m, graph)
    }

    fn ingress_frame(graph: &seqnet_overlap::SequencingGraph, id: u64, group: GroupId) -> Frame {
        Frame {
            msg: Message::new(MessageId(id), n(0), group, bytes::Bytes::new()),
            target_atom: Some(graph.ingress(group).expect("group has a path")),
        }
    }

    #[test]
    fn on_events_matches_per_event_stepping_command_for_command() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let events = |graph: &seqnet_overlap::SequencingGraph| -> Vec<Event> {
            (0..8u64)
                .map(|id| Event::FrameArrived {
                    frame: ingress_frame(graph, id, g(0)),
                })
                .collect()
        };

        let mut stepped_protocol = ProtocolState::new(&graph);
        let mut stepped = NodeCore::new(routing.owner_of(graph.ingress(g(0)).unwrap()), false);
        let mut expected = Vec::new();
        for event in events(&graph) {
            expected.extend(stepped.on_event(&routing, &mut stepped_protocol, event));
        }

        let mut batched_protocol = ProtocolState::new(&graph);
        let mut batched = NodeCore::new(stepped.node(), false);
        let mut buf = CommandBuf::new();
        batched.on_events(&routing, &mut batched_protocol, events(&graph), &mut buf);
        assert_eq!(format!("{:?}", buf.commands()), format!("{expected:?}"));
        assert!(buf.members.is_empty(), "fan-out scratch restored empty");
    }

    #[test]
    fn command_buf_appends_across_batches_until_cleared() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let mut core = NodeCore::new(routing.owner_of(graph.ingress(g(0)).unwrap()), false);
        let mut buf = CommandBuf::new();
        core.on_events(
            &routing,
            &mut protocol,
            [Event::FrameArrived {
                frame: ingress_frame(&graph, 0, g(0)),
            }],
            &mut buf,
        );
        let first = buf.len();
        assert!(first > 0);
        core.on_events(
            &routing,
            &mut protocol,
            [Event::FrameArrived {
                frame: ingress_frame(&graph, 1, g(0)),
            }],
            &mut buf,
        );
        assert_eq!(buf.len(), 2 * first, "second batch appended");
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn offer_batch_matches_per_event_receiver_stepping() {
        let (m, graph) = setup();
        let mut protocol = ProtocolState::new(&graph);
        let mut msgs = Vec::new();
        for id in 0..6u64 {
            let mut msg = Message::new(MessageId(id), n(0), g(id as u32 % 2), bytes::Bytes::new());
            protocol.sequence_fully(&graph, &mut msg);
            msgs.push(msg);
        }
        // Permuted arrival exercises buffering inside the batch.
        let order = [3usize, 0, 5, 2, 1, 4];
        let frames = |msgs: &[Message]| {
            order
                .iter()
                .map(|&i| Event::FrameArrived {
                    frame: Frame {
                        msg: msgs[i].clone(),
                        target_atom: None,
                    },
                })
                .collect::<Vec<_>>()
        };

        let mut stepped = ReceiverCore::new(n(1), &m, &graph);
        let mut expected = Vec::new();
        for event in frames(&msgs) {
            expected.extend(stepped.on_event(event));
        }

        let mut batched = ReceiverCore::new(n(1), &m, &graph);
        let mut buf = CommandBuf::new();
        batched.offer_batch(frames(&msgs), &mut buf);
        let ids = |cmds: &[Command]| {
            cmds.iter()
                .map(|c| match c {
                    Command::Deliver { msg, .. } => msg.id.0,
                    other => panic!("unexpected command {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(buf.commands()), ids(&expected));
        assert_eq!(ids(buf.commands()), vec![0, 1, 2, 3, 4, 5]);
        assert!(buf.msgs.is_empty(), "release scratch restored empty");
        assert_eq!(
            batched.queue().delivered_count(),
            stepped.queue().delivered_count()
        );
    }
}
