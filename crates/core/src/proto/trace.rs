//! Protocol tracing hooks: the [`TraceSink`] vocabulary the cores emit
//! into.
//!
//! With the default `obs` feature the types here are re-exports from
//! `seqnet-obs`, so every driver shares one event schema and one set of
//! sinks. With `--no-default-features` the module provides a minimal
//! no-op mirror (same shapes, no behavior): the instrumented cores
//! compile unchanged, every `sink.enabled()` guard folds to a constant
//! `false`, and nothing from the obs crate is needed — which is exactly
//! what CI builds to prove the untraced hot path is dependency-free.
//!
//! Emission protocol (both modes):
//!
//! * Cores are clock-free. They emit events with `at == 0`; sinks stamp
//!   `at` from the driver's last [`TraceSink::now`] call at record time.
//! * `NodeCore` emits `AtomStamp`, `FrameForward`, `Crash`, and `Replay`;
//!   `ReceiverCore` emits `Arrive`, `Buffer`, and `Deliver`. Drivers emit
//!   what only they can see: `Publish` (injection), `SnapshotFlush` (the
//!   staged-frame count), and `HeartbeatMiss` (the runtime's failure
//!   detector).

#[cfg(feature = "obs")]
pub use seqnet_obs::{Actor, BufferReason, EventKind, NullSink, TraceEvent, TraceSink};

#[cfg(not(feature = "obs"))]
mod mirror {
    //! Dependency-free stand-ins for the `seqnet-obs` sink API. Kept to
    //! the exact shapes the instrumented cores use; no exporters, no
    //! recorders — a disabled build has nowhere to send events anyway.
    #![allow(missing_docs, dead_code)]

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BufferReason {
        GroupGap,
        AtomGap,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum EventKind {
        Publish,
        AtomStamp,
        FrameForward,
        Arrive,
        Buffer(BufferReason),
        Deliver,
        Crash,
        Replay,
        SnapshotFlush,
        HeartbeatMiss,
        EpochAdvance,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Actor {
        Publisher,
        Node(u64),
        Host(u64),
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TraceEvent {
        pub at: u64,
        pub kind: EventKind,
        pub actor: Actor,
        pub msg: Option<u64>,
        pub group: Option<u64>,
        pub atom: Option<u64>,
        pub seq: Option<u64>,
        pub detail: Option<u64>,
        pub stamps: Vec<(u64, u64)>,
    }

    impl TraceEvent {
        pub fn new(kind: EventKind, actor: Actor) -> Self {
            TraceEvent {
                at: 0,
                kind,
                actor,
                msg: None,
                group: None,
                atom: None,
                seq: None,
                detail: None,
                stamps: Vec::new(),
            }
        }
    }

    pub trait TraceSink: std::fmt::Debug {
        fn enabled(&self) -> bool {
            true
        }
        fn now(&mut self, _at: u64) {}
        fn record(&mut self, event: TraceEvent);
    }

    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct NullSink;

    impl TraceSink for NullSink {
        fn enabled(&self) -> bool {
            false
        }
        fn record(&mut self, _event: TraceEvent) {}
    }
}

#[cfg(not(feature = "obs"))]
pub use mirror::{Actor, BufferReason, EventKind, NullSink, TraceEvent, TraceSink};

use crate::Message;

/// The sequence vector of `msg` as raw `(atom, seq)` pairs, in path
/// order — the form [`TraceEvent::stamps`] carries.
pub fn stamp_vector(msg: &Message) -> Vec<(u64, u64)> {
    msg.stamps
        .iter()
        .map(|s| (u64::from(s.atom.0), s.seq.0))
        .collect()
}
