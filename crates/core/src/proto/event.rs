//! The event/command vocabulary of the sans-I/O protocol core.
//!
//! Drivers translate their transport's happenings into [`Event`]s, feed
//! them to a core ([`NodeCore`](crate::proto::NodeCore) or
//! [`ReceiverCore`](crate::proto::ReceiverCore)), and execute the returned
//! [`Command`]s on whatever medium they own — simulated channels with a
//! delay model, or real links with retransmission. The core itself never
//! touches clocks, threads, channels, or randomness.

use crate::Message;
use seqnet_membership::NodeId;
use seqnet_overlap::AtomId;

/// A party a protocol frame can travel between. Sequencing nodes are
/// identified by driver-assigned index (one per atom in the simulator,
/// one per co-location class in the threaded runtime); hosts are the
/// subscriber endpoints; the publisher is the external message source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Peer {
    /// An external publisher front-end.
    Publisher,
    /// A sequencing node, by driver-assigned index.
    Node(usize),
    /// A subscriber host.
    Host(NodeId),
}

impl std::fmt::Display for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Peer::Publisher => write!(f, "publisher"),
            Peer::Node(i) => write!(f, "node{i}"),
            Peer::Host(n) => write!(f, "host{}", n.0),
        }
    }
}

/// A protocol frame: a message plus the sequencing atom it is addressed
/// to. Frames bound for a subscriber (distribution copies) carry no
/// target atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message being carried.
    pub msg: Message,
    /// The atom that must process the message next, or `None` for a
    /// distribution copy addressed to a host's delivery queue.
    pub target_atom: Option<AtomId>,
}

/// An input to a protocol core. Every driver obligation is expressed as
/// one of these; see `PROTOCOL.md` ("Protocol core API") for the full
/// contract.
#[derive(Debug, Clone)]
pub enum Event {
    /// A frame arrived over the transport, in channel-FIFO order.
    FrameArrived {
        /// The frame, already reassembled/deduplicated by the transport.
        frame: Frame,
    },
    /// The node crashed: it stops processing and parks subsequent
    /// arrivals until [`Event::NodeRestarted`].
    NodeCrashed,
    /// The node came back: parked frames are replayed in arrival order
    /// (the core emits one [`Command::Replay`] per frame).
    NodeRestarted,
    /// The driver persisted a snapshot of the node's protocol state plus
    /// the transport's receive progress. `rx_next` lists, per upstream
    /// peer, the next link sequence number expected at the moment the
    /// snapshot was taken — everything below it is now stable and may be
    /// acknowledged (the PR 1 group-commit rule).
    SnapshotTaken {
        /// Per-upstream-peer next-expected link sequence numbers.
        rx_next: Vec<(Peer, u64)>,
    },
    /// A timer tick. The core currently has no time-driven behavior and
    /// returns no commands; the variant exists so drivers with timers
    /// (heartbeats, batching) have a stable entry point.
    Tick,
}

/// An output of a protocol core, to be executed by the driver.
#[derive(Debug, Clone)]
pub enum Command {
    /// Transmit `frame` to `to` now.
    Send {
        /// The destination party.
        to: Peer,
        /// The frame to transmit.
        frame: Frame,
    },
    /// Hold `frame` for `to` in the staged-output buffer; it must not
    /// reach the wire before the next [`Command::Flush`]. Emitted instead
    /// of [`Command::Send`] when the core runs with the group-commit
    /// discipline (nothing escapes a node before a snapshot contains it).
    Stage {
        /// The destination party.
        to: Peer,
        /// The frame to stage.
        frame: Frame,
    },
    /// Release every staged frame to the wire (a snapshot sealed them).
    Flush,
    /// Tell `to` that every frame through link sequence number `through`
    /// is stable here and may be dropped from its retransmission buffer.
    Ack {
        /// The upstream party being acknowledged.
        to: Peer,
        /// Cumulative link sequence number acknowledged.
        through: u64,
    },
    /// Deliver `msg` to the application at `host` (Definition 1 said
    /// yes). Emitted only by [`ReceiverCore`](crate::proto::ReceiverCore).
    Deliver {
        /// The subscriber delivering the message.
        host: NodeId,
        /// The message, in final delivery order.
        msg: Message,
    },
    /// Re-process a frame that was parked across a crash window. Emitted
    /// only while handling [`Event::NodeRestarted`], in arrival order;
    /// the driver feeds each frame back as [`Event::FrameArrived`] (at
    /// the restart instant, before any new arrival), which keeps the
    /// channel-FIFO assumption across the outage.
    Replay {
        /// The parked frame to re-process.
        frame: Frame,
    },
}
