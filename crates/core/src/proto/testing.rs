//! Seeded generators for randomized protocol testing.
//!
//! Shared by the proptest suites (which wrap these behind `Strategy`
//! adapters in `tests/strategies.rs`) and by `seqnet-check`'s random-walk
//! mode (which has no proptest runner and draws configurations directly
//! from a walk seed). Everything here is a pure function of its seed —
//! no thread-local RNG, no environment — so any failure reported against
//! a seed reproduces exactly.

use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::{FaultPlan, SimTime};

/// The splitmix64 step, the same tiny generator `FaultPlan::randomized`
/// uses, so the testing module needs no external RNG dependency.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounds for [`random_membership_with`]. The defaults match the
/// long-standing `membership_strategy` of the property suite: 4–10 nodes,
/// 2–5 groups, 2–6 subscriptions sampled per group.
#[derive(Debug, Clone, Copy)]
pub struct MembershipBounds {
    /// Inclusive node-count range.
    pub nodes: (usize, usize),
    /// Inclusive group-count range.
    pub groups: (usize, usize),
    /// Inclusive range of member samples drawn per group (duplicates
    /// collapse, so a group may end up smaller).
    pub members: (usize, usize),
}

impl Default for MembershipBounds {
    fn default() -> Self {
        MembershipBounds {
            nodes: (4, 10),
            groups: (2, 5),
            members: (2, 6),
        }
    }
}

fn pick(state: &mut u64, range: (usize, usize)) -> usize {
    let (lo, hi) = range;
    debug_assert!(lo <= hi);
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

/// An arbitrary valid membership drawn deterministically from `seed`
/// within `bounds`. Every group subscribes at least one node, group ids
/// are dense from zero, and the result is always a valid
/// [`Membership`] — though groups may lack double overlaps.
pub fn random_membership_with(seed: u64, bounds: MembershipBounds) -> Membership {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let nodes = pick(&mut state, bounds.nodes);
    let groups = pick(&mut state, bounds.groups);
    let mut m = Membership::new();
    for g in 0..groups {
        let samples = pick(&mut state, bounds.members);
        for _ in 0..samples {
            let n = (splitmix64(&mut state) % nodes as u64) as u32;
            m.subscribe(NodeId(n), GroupId(g as u32));
        }
    }
    m
}

/// [`random_membership_with`] under the default bounds.
pub fn random_membership(seed: u64) -> Membership {
    random_membership_with(seed, MembershipBounds::default())
}

/// Like [`random_membership`], but guaranteed to contain at least one
/// double overlap (two groups sharing two subscribers) — the
/// configurations where ordering is actually at stake. Achieved by
/// forcing nodes 0 and 1 into the first two groups.
pub fn random_overlapped_membership(seed: u64) -> Membership {
    let mut m = random_membership(seed);
    for g in 0..2u32 {
        m.subscribe(NodeId(0), GroupId(g));
        m.subscribe(NodeId(1), GroupId(g));
    }
    m
}

/// A deterministic fault plan for `nodes` fault targets over `horizon`.
/// Thin, intention-revealing wrapper over [`FaultPlan::randomized`] so
/// test code has a single spelling for "give me reproducible faults".
pub fn random_fault_plan(seed: u64, nodes: usize, horizon: SimTime) -> FaultPlan {
    FaultPlan::randomized(seed, nodes, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memberships_are_reproducible_and_in_bounds() {
        for seed in 0..50u64 {
            let a = random_membership(seed);
            let b = random_membership(seed);
            assert_eq!(a, b, "same seed, same membership");
            let bounds = MembershipBounds::default();
            assert!(a.num_groups() >= bounds.groups.0);
            assert!(a.num_groups() <= bounds.groups.1);
            assert!(a.num_nodes() <= bounds.nodes.1);
            for g in a.groups() {
                assert!(a.group_size(g) >= 1, "no empty groups");
                assert!(a.group_size(g) <= bounds.members.1);
            }
        }
        assert_ne!(random_membership(1), random_membership(2), "seeds diverge");
    }

    #[test]
    fn overlapped_memberships_have_a_double_overlap() {
        for seed in 0..50u64 {
            let m = random_overlapped_membership(seed);
            assert!(
                m.double_overlapped(GroupId(0), GroupId(1)),
                "seed {seed} lacks the forced overlap"
            );
        }
    }

    #[test]
    fn generated_graphs_validate() {
        for seed in 0..25u64 {
            let m = random_overlapped_membership(seed);
            let graph = seqnet_overlap::GraphBuilder::new().build(&m);
            graph.validate_against(&m).expect("C1/C2 hold");
        }
    }

    #[test]
    fn fault_plans_delegate_deterministically() {
        let a = random_fault_plan(9, 4, SimTime::from_ms(50.0));
        let b = FaultPlan::randomized(9, 4, SimTime::from_ms(50.0));
        assert_eq!(a, b);
    }
}
