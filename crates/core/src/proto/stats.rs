//! Shared crash-recovery counters.
//!
//! Both the simulator's `FaultStats` and the threaded runtime's
//! `RuntimeStats` embed [`RecoveryStats`], so the two report recovery
//! behavior with identical counter definitions — a prerequisite for the
//! differential sim↔runtime test to compare them at all.

/// Counters for the park/replay crash-recovery path. Maintained by
/// [`NodeCore`](crate::proto::NodeCore) (except `recovery_micros`, which
/// needs a clock and is therefore filled in by the driver).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Crash events processed ([`Event::NodeCrashed`](crate::proto::Event)).
    pub crashes: u64,
    /// Frames that arrived while the node was down and were parked.
    pub messages_parked: u64,
    /// Parked frames replayed after a restart.
    pub frames_replayed: u64,
    /// Total wall-clock (runtime) or virtual (simulator) microseconds
    /// spent recovering; divided by `crashes` in
    /// [`metrics::mean_recovery_ms`](crate::metrics::mean_recovery_ms).
    pub recovery_micros: u64,
}

impl RecoveryStats {
    /// Add another node's counters into this aggregate.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.crashes += other.crashes;
        self.messages_parked += other.messages_parked;
        self.frames_replayed += other.frames_replayed;
        self.recovery_micros += other.recovery_micros;
    }
}
