//! The receiver-side delivery queue (Definition 1, operationalized).

use super::trace::{self, Actor, BufferReason, EventKind, NullSink, TraceEvent, TraceSink};
use crate::{Message, SeqNo};
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::{AtomId, SequencingGraph};
use std::collections::BTreeMap;

/// Decides, for one subscriber, whether each arriving message is delivered
/// immediately or buffered — using only the sequence numbers the message
/// carries.
///
/// The subscriber tracks the next expected group-local number for each of
/// its groups and the next expected overlap number for each *relevant*
/// atom (atoms whose common-member set contains the subscriber — it
/// receives every message such an atom stamps, so continuity is
/// observable). A message is deliverable when **all** of those counters
/// match; the decision is immediate and deterministic (paper §3.1), and
/// Theorem 1 guarantees all members of a group deliver in the same order.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_overlap::GraphBuilder;
/// use seqnet_core::{DeliveryQueue, ProtocolState, Message, MessageId};
///
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
///     (GroupId(1), vec![NodeId(0), NodeId(1)]),
/// ]);
/// let graph = GraphBuilder::new().build(&m);
/// let mut state = ProtocolState::new(&graph);
/// let mut queue = DeliveryQueue::new(NodeId(1), &m, &graph);
///
/// let mut m1 = Message::new(MessageId(1), NodeId(0), GroupId(0), vec![]);
/// let mut m2 = Message::new(MessageId(2), NodeId(0), GroupId(1), vec![]);
/// state.sequence_fully(&graph, &mut m1);
/// state.sequence_fully(&graph, &mut m2);
///
/// // m2 arrives first but must wait for m1 (the overlap atom stamped m1
/// // first).
/// assert!(queue.offer(m2).is_empty());
/// let delivered = queue.offer(m1);
/// assert_eq!(delivered.len(), 2);
/// assert_eq!(delivered[0].id, MessageId(1));
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryQueue {
    node: NodeId,
    next_group: BTreeMap<GroupId, SeqNo>,
    next_atom: BTreeMap<AtomId, SeqNo>,
    /// Buffered messages indexed by group and group-local number. Only a
    /// group's head (lowest number) can ever be deliverable, so the
    /// deliver-or-buffer loop inspects one candidate per group instead of
    /// rescanning a flat buffer.
    buffer: BTreeMap<GroupId, BTreeMap<SeqNo, Message>>,
    pending: usize,
    delivered_count: u64,
    max_buffered: usize,
}

impl DeliveryQueue {
    /// Creates the queue for `node`, deriving its groups from `membership`
    /// and its relevant atoms from `graph`.
    pub fn new(node: NodeId, membership: &seqnet_membership::Membership, graph: &SequencingGraph) -> Self {
        let next_group = membership
            .groups_of(node)
            .map(|g| (g, SeqNo::FIRST))
            .collect();
        let next_atom = graph
            .relevant_atoms(node)
            .into_iter()
            .map(|a| (a, SeqNo::FIRST))
            .collect();
        DeliveryQueue {
            node,
            next_group,
            next_atom,
            buffer: BTreeMap::new(),
            pending: 0,
            delivered_count: 0,
            max_buffered: 0,
        }
    }

    /// The subscriber this queue belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether `msg` could be delivered right now.
    pub fn is_deliverable(&self, msg: &Message) -> bool {
        match self.next_group.get(&msg.group) {
            Some(&expected) if msg.group_seq == expected => {}
            _ => return false,
        }
        msg.stamps.iter().all(|s| {
            match self.next_atom.get(&s.atom) {
                // Relevant atom: require continuity.
                Some(&expected) => s.seq == expected,
                // Irrelevant atom: "the rest need only use the group-local
                // sequence number" (§3.2) — ignore the stamp.
                None => true,
            }
        })
    }

    /// Which continuity check would buffer `msg` right now: the
    /// group-local counter ([`BufferReason::GroupGap`]) or a relevant
    /// atom's counter ([`BufferReason::AtomGap`]); `None` when the
    /// message is deliverable (or a stale duplicate, which
    /// [`DeliveryQueue::offer`] drops rather than buffers). Group
    /// continuity is checked first, mirroring [`DeliveryQueue::is_deliverable`].
    pub fn blocking_reason(&self, msg: &Message) -> Option<BufferReason> {
        match self.next_group.get(&msg.group) {
            Some(&expected) if msg.group_seq == expected => {}
            Some(&expected) if msg.group_seq < expected => return None,
            Some(_) => return Some(BufferReason::GroupGap),
            // Not a subscriber: offer() will panic; no reason to give.
            None => return None,
        }
        let atom_gap = msg
            .stamps
            .iter()
            .any(|s| matches!(self.next_atom.get(&s.atom), Some(&e) if s.seq != e));
        atom_gap.then_some(BufferReason::AtomGap)
    }

    /// Accepts an arriving message; returns every message that becomes
    /// deliverable (in delivery order), which may be empty (buffered) and
    /// may include previously buffered messages unblocked by this one.
    ///
    /// Duplicate arrivals are idempotent: a message whose group-local
    /// number was already delivered (it is below the group's expectation)
    /// is dropped, and a copy of a message still buffered leaves the first
    /// copy in place. Transports normally deduplicate before the core sees
    /// a frame, but crash-replay paths can legally re-present one, so the
    /// queue must not double-deliver or double-count.
    ///
    /// # Panics
    ///
    /// Panics if the message is not sequenced or the node does not
    /// subscribe to its group — both indicate a routing bug.
    pub fn offer(&mut self, msg: Message) -> Vec<Message> {
        let mut out = Vec::new();
        self.offer_into(msg, &mut out);
        out
    }

    /// [`DeliveryQueue::offer`] writing the released messages into a
    /// caller-owned buffer instead of allocating one — the batched fast
    /// path. Released messages are **appended** to `out` in delivery
    /// order; the caller decides when to drain. Identical semantics to
    /// `offer` otherwise (same panics, same duplicate handling, same
    /// counters).
    pub fn offer_into(&mut self, msg: Message, out: &mut Vec<Message>) {
        assert!(msg.is_sequenced(), "{} arrived unsequenced", msg.id);
        let expected = *self
            .next_group
            .get(&msg.group)
            .unwrap_or_else(|| panic!("{} does not subscribe to {}", self.node, msg.group));
        if msg.group_seq < expected {
            // Delivery is consecutive per group, so a number below the
            // expectation was already delivered: a stale duplicate.
            return;
        }
        // `out` may already hold earlier releases; count only ours.
        let base = out.len();
        if self.is_deliverable(&msg) {
            // Fast path: an in-order arrival never touches the buffer.
            self.advance(&msg);
            out.push(msg);
            if self.pending == 0 {
                self.delivered_count += 1;
                return;
            }
        } else {
            let slot = self.buffer.entry(msg.group).or_default();
            if slot.contains_key(&msg.group_seq) {
                // A copy of a still-buffered message: keep the original.
                return;
            }
            slot.insert(msg.group_seq, msg);
            self.pending += 1;
            self.max_buffered = self.max_buffered.max(self.pending);
            // Buffering changes no counter, so no previously buffered
            // message can have become deliverable (the loop below always
            // leaves the buffer head-free of deliverables).
            return;
        }

        // Only group heads can be deliverable; iterate to a fixpoint.
        let mut progress = true;
        while progress {
            progress = false;
            let groups: Vec<GroupId> = self.buffer.keys().copied().collect();
            for g in groups {
                loop {
                    let deliverable = self
                        .buffer
                        .get(&g)
                        .and_then(|q| q.values().next())
                        .is_some_and(|head| self.is_deliverable(head));
                    if !deliverable {
                        break;
                    }
                    let queue = self.buffer.get_mut(&g).expect("group has entries");
                    let (_, msg) = queue.pop_first().expect("head exists");
                    if queue.is_empty() {
                        self.buffer.remove(&g);
                    }
                    self.pending -= 1;
                    self.advance(&msg);
                    out.push(msg);
                    progress = true;
                }
            }
        }
        self.delivered_count += (out.len() - base) as u64;
    }

    fn advance(&mut self, msg: &Message) {
        let counter = self
            .next_group
            .get_mut(&msg.group)
            .expect("checked in offer");
        *counter = counter.next();
        for s in &msg.stamps {
            if let Some(counter) = self.next_atom.get_mut(&s.atom) {
                *counter = counter.next();
            }
        }
    }

    /// Number of messages waiting for predecessors.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Iterates the buffered (not yet deliverable) messages.
    pub fn pending_messages(&self) -> impl Iterator<Item = &Message> {
        self.buffer.values().flat_map(|q| q.values())
    }

    /// Total messages delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// High-water mark of the buffer, an indicator of reordering depth.
    pub fn max_buffered(&self) -> usize {
        self.max_buffered
    }

    /// Folds this queue's observable state — expectations and the buffered
    /// messages — into `d`, for model checkers deduplicating explored
    /// states. Delivered/high-water counters are excluded: they are
    /// statistics and never influence a deliver-or-buffer decision.
    pub fn digest_into(&self, d: &mut crate::proto::Digest) {
        d.write_u64(u64::from(self.node.0));
        d.write_u64(self.next_group.len() as u64);
        for (g, s) in &self.next_group {
            d.write_u64(u64::from(g.0));
            d.write_seq(*s);
        }
        d.write_u64(self.next_atom.len() as u64);
        for (a, s) in &self.next_atom {
            d.write_u64(u64::from(a.0));
            d.write_seq(*s);
        }
        d.write_u64(self.pending as u64);
        for q in self.buffer.values() {
            for msg in q.values() {
                d.write_message(msg);
            }
        }
    }

    /// Re-synchronizes expectations after a quiescent reconfiguration of
    /// the sequencing graph (groups added/removed): newly relevant atoms
    /// start at [`SeqNo::FIRST`], atoms gone from the graph are dropped,
    /// and group expectations are kept for still-subscribed groups.
    ///
    /// # Panics
    ///
    /// Panics if messages are still buffered — reconfiguration must be
    /// quiescent (the paper defers dynamic behavior to future work).
    pub fn resync(
        &mut self,
        membership: &seqnet_membership::Membership,
        graph: &SequencingGraph,
    ) {
        assert!(
            self.pending == 0,
            "cannot resync with {} buffered messages",
            self.pending
        );
        let old_groups = std::mem::take(&mut self.next_group);
        self.next_group = membership
            .groups_of(self.node)
            .map(|g| (g, old_groups.get(&g).copied().unwrap_or(SeqNo::FIRST)))
            .collect();
        let old_atoms = std::mem::take(&mut self.next_atom);
        self.next_atom = graph
            .relevant_atoms(self.node)
            .into_iter()
            .map(|a| (a, old_atoms.get(&a).copied().unwrap_or(SeqNo::FIRST)))
            .collect();
    }

    /// Like [`DeliveryQueue::resync`], but *new* subscriptions and newly
    /// relevant atoms expect the next number the live counters will assign
    /// (`counter + 1`) rather than 1 — a subscriber joining mid-stream
    /// starts from "now" instead of waiting for history it will never see.
    ///
    /// # Panics
    ///
    /// Panics if messages are still buffered.
    pub fn resync_with(
        &mut self,
        membership: &seqnet_membership::Membership,
        graph: &SequencingGraph,
        protocol: &crate::ProtocolState,
    ) {
        assert!(
            self.pending == 0,
            "cannot resync with {} buffered messages",
            self.pending
        );
        let old_groups = std::mem::take(&mut self.next_group);
        self.next_group = membership
            .groups_of(self.node)
            .map(|g| {
                let expect = old_groups
                    .get(&g)
                    .copied()
                    .unwrap_or_else(|| protocol.group_counter(g).next());
                (g, expect)
            })
            .collect();
        let old_atoms = std::mem::take(&mut self.next_atom);
        self.next_atom = graph
            .relevant_atoms(self.node)
            .into_iter()
            .map(|a| {
                let expect = old_atoms
                    .get(&a)
                    .copied()
                    .unwrap_or_else(|| protocol.overlap_counter(a).next());
                (a, expect)
            })
            .collect();
    }

    /// Creates a queue for a node joining a live system: expectations are
    /// seeded from the protocol's current counters so the node starts from
    /// "now".
    pub fn synced(
        node: NodeId,
        membership: &seqnet_membership::Membership,
        graph: &SequencingGraph,
        protocol: &crate::ProtocolState,
    ) -> Self {
        let mut q = DeliveryQueue {
            node,
            next_group: BTreeMap::new(),
            next_atom: BTreeMap::new(),
            buffer: BTreeMap::new(),
            pending: 0,
            delivered_count: 0,
            max_buffered: 0,
        };
        q.resync_with(membership, graph, protocol);
        q
    }
}

/// The receiver half of the protocol core: wraps a [`DeliveryQueue`] in
/// the event-in/command-out shape, so host drivers (simulated arrival
/// events or a runtime host thread) run Definition 1 the same way node
/// drivers run the atom state machine. Feeding a distribution frame in
/// returns one [`Command::Deliver`] per message the queue released, in
/// final delivery order.
#[derive(Debug, Clone)]
pub struct ReceiverCore {
    queue: DeliveryQueue,
}

impl ReceiverCore {
    /// A core for subscriber `node`, expecting the first sequence numbers.
    pub fn new(
        node: NodeId,
        membership: &seqnet_membership::Membership,
        graph: &SequencingGraph,
    ) -> Self {
        ReceiverCore {
            queue: DeliveryQueue::new(node, membership, graph),
        }
    }

    /// A core for a subscriber joining a live system; see
    /// [`DeliveryQueue::synced`].
    pub fn synced(
        node: NodeId,
        membership: &seqnet_membership::Membership,
        graph: &SequencingGraph,
        protocol: &crate::ProtocolState,
    ) -> Self {
        ReceiverCore {
            queue: DeliveryQueue::synced(node, membership, graph, protocol),
        }
    }

    /// Wraps an existing queue (e.g. one carried across a reconfiguration
    /// via [`DeliveryQueue::resync_with`]).
    pub fn from_queue(queue: DeliveryQueue) -> Self {
        ReceiverCore { queue }
    }

    /// The underlying deliver-or-buffer queue (pending counts, high-water
    /// marks, delivered counts).
    pub fn queue(&self) -> &DeliveryQueue {
        &self.queue
    }

    /// Mutable access to the underlying queue, for driver-side
    /// reconfiguration.
    pub fn queue_mut(&mut self) -> &mut DeliveryQueue {
        &mut self.queue
    }

    /// Folds the receiver's state into `d`; see
    /// [`DeliveryQueue::digest_into`].
    pub fn digest_into(&self, d: &mut super::Digest) {
        self.queue.digest_into(d);
    }

    /// Feeds one event through the receiver; returns the commands the
    /// driver must execute, in order. Only
    /// [`Event::FrameArrived`](super::Event::FrameArrived) (with a
    /// distribution frame, i.e. no target atom) produces output; hosts
    /// never crash, so the remaining events are accepted as no-ops.
    ///
    /// # Panics
    ///
    /// Panics if a frame still carries a `target_atom` (it was routed to a
    /// host by mistake), or on the [`DeliveryQueue::offer`] contract
    /// violations (unsequenced message, non-subscriber).
    pub fn on_event(&mut self, event: super::Event) -> Vec<super::Command> {
        self.on_event_traced(event, &mut NullSink)
    }

    /// [`ReceiverCore::on_event`] with protocol tracing: arrivals,
    /// buffer decisions (with the failed continuity check as the
    /// reason), and deliveries (with the full sequence vector) are
    /// reported to `sink`. Thin wrapper over the batched implementation
    /// allocating a fresh buffer per call; hot loops should batch via
    /// [`ReceiverCore::offer_batch`] instead.
    pub fn on_event_traced<S: TraceSink + ?Sized>(
        &mut self,
        event: super::Event,
        sink: &mut S,
    ) -> Vec<super::Command> {
        match event {
            super::Event::FrameArrived { frame } => {
                let mut out = super::CommandBuf::new();
                self.frame_into(frame, sink, &mut out);
                out.into_commands()
            }
            _ => Vec::new(),
        }
    }

    /// Batched fast path: runs every arrival through the deliver-or-buffer
    /// rule in order, appending one [`Command::Deliver`](super::Command)
    /// per released message to the caller-owned `out`. Semantically
    /// identical to calling [`ReceiverCore::on_event`] per event and
    /// concatenating the results (PROTOCOL.md §12); non-frame events are
    /// no-ops exactly as there. Scratch buffers are reused, so a warm
    /// buffer makes the whole batch allocation-free apart from the
    /// messages themselves.
    pub fn offer_batch(
        &mut self,
        events: impl IntoIterator<Item = super::Event>,
        out: &mut super::CommandBuf,
    ) {
        self.offer_batch_traced(events, &mut NullSink, out);
    }

    /// [`ReceiverCore::offer_batch`] with protocol tracing.
    pub fn offer_batch_traced<S: TraceSink + ?Sized>(
        &mut self,
        events: impl IntoIterator<Item = super::Event>,
        sink: &mut S,
        out: &mut super::CommandBuf,
    ) {
        for event in events {
            if let super::Event::FrameArrived { frame } = event {
                self.frame_into(frame, sink, out);
            }
        }
    }

    /// The single implementation: one distribution frame through the
    /// queue, deliveries appended to `out`. Every entry point funnels
    /// here.
    fn frame_into<S: TraceSink + ?Sized>(
        &mut self,
        frame: super::Frame,
        sink: &mut S,
        out: &mut super::CommandBuf,
    ) {
        assert!(
            frame.target_atom.is_none(),
            "distribution frames carry no target atom"
        );
        let host = self.queue.node();
        let actor = Actor::Host(u64::from(host.0));
        let traced = sink.enabled();
        let msg = frame.msg;
        let (id, group) = (msg.id.0, u64::from(msg.group.0));
        if traced {
            sink.record(TraceEvent {
                msg: Some(id),
                group: Some(group),
                ..TraceEvent::new(EventKind::Arrive, actor)
            });
        }
        // The reason must be read before `offer` advances the
        // counters; it is only reported if the message actually
        // buffered (stale duplicates are dropped, not buffered).
        let reason = if traced { self.queue.blocking_reason(&msg) } else { None };
        let pending_before = self.queue.pending();
        let mut released = std::mem::take(&mut out.msgs);
        self.queue.offer_into(msg, &mut released);
        if traced && self.queue.pending() > pending_before {
            sink.record(TraceEvent {
                msg: Some(id),
                group: Some(group),
                detail: Some(self.queue.pending() as u64),
                ..TraceEvent::new(
                    EventKind::Buffer(
                        reason.expect("a buffered message has a blocking reason"),
                    ),
                    actor,
                )
            });
        }
        for msg in released.drain(..) {
            if traced {
                sink.record(TraceEvent {
                    msg: Some(msg.id.0),
                    group: Some(u64::from(msg.group.0)),
                    seq: Some(msg.group_seq.0),
                    detail: Some(msg.epoch),
                    stamps: trace::stamp_vector(&msg),
                    ..TraceEvent::new(EventKind::Deliver, actor)
                });
            }
            out.push(super::Command::Deliver { host, msg });
        }
        out.msgs = released;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageId, ProtocolState};
    use seqnet_membership::Membership;
    use seqnet_overlap::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn two_group_setup() -> (Membership, SequencingGraph, ProtocolState) {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        let state = ProtocolState::new(&graph);
        (m, graph, state)
    }

    fn seq(
        state: &mut ProtocolState,
        graph: &SequencingGraph,
        id: u64,
        sender: u32,
        group: u32,
    ) -> Message {
        let mut msg = Message::new(MessageId(id), n(sender), g(group), vec![]);
        state.sequence_fully(graph, &mut msg);
        msg
    }

    #[test]
    fn in_order_arrival_delivers_immediately() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        for i in 1..=3 {
            let msg = seq(&mut state, &graph, i, 0, 0);
            let out = q.offer(msg);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].id, MessageId(i));
        }
        assert_eq!(q.pending(), 0);
        assert_eq!(q.delivered_count(), 3);
    }

    #[test]
    fn gap_buffers_until_filled() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0);
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        let m3 = seq(&mut state, &graph, 3, 0, 0);
        assert!(q.offer(m3).is_empty());
        assert!(q.offer(m2).is_empty());
        assert_eq!(q.pending(), 2);
        let out = q.offer(m1);
        assert_eq!(
            out.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "buffered messages released in order"
        );
        assert_eq!(q.max_buffered(), 2, "m1 passed through without buffering");
    }

    #[test]
    fn cross_group_order_enforced_for_overlap_members() {
        let (m, graph, mut state) = two_group_setup();
        // Node 1 is in both groups: the overlap atom's numbers bind the
        // two streams together.
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let ma = seq(&mut state, &graph, 1, 0, 0); // stamped first
        let mb = seq(&mut state, &graph, 2, 1, 1); // stamped second
        assert!(q.offer(mb).is_empty(), "mb waits for ma");
        let out = q.offer(ma);
        assert_eq!(out.iter().map(|m| m.id.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn non_overlap_member_ignores_foreign_stamps() {
        let (m, graph, mut state) = two_group_setup();
        // Node 0 subscribes only to g0; the (g0,g1) overlap atom is not
        // relevant to it even though g0 messages carry its stamps.
        let mut q = DeliveryQueue::new(n(0), &m, &graph);
        let _skip = seq(&mut state, &graph, 1, 1, 1); // g1 message consumes atom seq 1
        let mg0 = seq(&mut state, &graph, 2, 0, 0); // g0 message has atom seq 2
        let out = q.offer(mg0);
        assert_eq!(out.len(), 1, "node 0 must not wait for a g1 message it will never get");
    }

    #[test]
    fn same_order_at_all_overlap_members() {
        let (m, graph, mut state) = two_group_setup();
        let msgs: Vec<Message> = vec![
            seq(&mut state, &graph, 1, 0, 0),
            seq(&mut state, &graph, 2, 1, 1),
            seq(&mut state, &graph, 3, 2, 0),
            seq(&mut state, &graph, 4, 1, 1),
        ];
        // Deliver to node 1 in sequencing order, to node 2 in a permuted
        // arrival order; final delivery order must match.
        let mut q1 = DeliveryQueue::new(n(1), &m, &graph);
        let mut order1 = Vec::new();
        for msg in msgs.clone() {
            order1.extend(q1.offer(msg).into_iter().map(|m| m.id));
        }
        let mut q2 = DeliveryQueue::new(n(2), &m, &graph);
        let mut order2 = Vec::new();
        for idx in [2, 0, 3, 1] {
            order2.extend(q2.offer(msgs[idx].clone()).into_iter().map(|m| m.id));
        }
        assert_eq!(order1.len(), 4);
        assert_eq!(order1, order2, "consistent order despite different arrival");
    }

    #[test]
    #[should_panic(expected = "arrived unsequenced")]
    fn unsequenced_message_rejected() {
        let (m, graph, _) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let _ = q.offer(Message::new(MessageId(1), n(0), g(0), vec![]));
    }

    #[test]
    #[should_panic(expected = "does not subscribe")]
    fn non_member_rejected() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(0), &m, &graph);
        let msg = seq(&mut state, &graph, 1, 1, 1);
        let _ = q.offer(msg);
    }

    #[test]
    fn stale_duplicate_of_delivered_message_is_ignored() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0);
        assert_eq!(q.offer(m1.clone()).len(), 1);
        // A crash-replay path re-presents the delivered message.
        assert!(q.offer(m1).is_empty(), "duplicate dropped");
        assert_eq!(q.pending(), 0, "duplicate not buffered");
        assert_eq!(q.delivered_count(), 1, "no double delivery");
        // The stream continues undisturbed.
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        assert_eq!(q.offer(m2).len(), 1);
    }

    #[test]
    fn duplicate_of_buffered_message_keeps_first_copy() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0);
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        assert!(q.offer(m2.clone()).is_empty(), "gap: m2 buffers");
        assert!(q.offer(m2).is_empty(), "copy of buffered m2 dropped");
        assert_eq!(q.pending(), 1, "still exactly one buffered copy");
        let out = q.offer(m1);
        assert_eq!(
            out.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![1, 2],
            "each message delivered exactly once"
        );
        assert_eq!(q.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "does not subscribe")]
    fn unknown_group_rejected() {
        let (m, graph, _) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        // A group no one (and no graph path) has ever heard of.
        let mut msg = Message::new(MessageId(9), n(0), g(7), vec![]);
        msg.group_seq = SeqNo::FIRST;
        let _ = q.offer(msg);
    }

    #[test]
    fn gap_fill_cascades_across_groups() {
        let (m, graph, mut state) = two_group_setup();
        // Node 1 subscribes to both groups; the overlap atom binds them.
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0); // g0, stamp 1
        let m2 = seq(&mut state, &graph, 2, 1, 1); // g1, stamp 2
        let m3 = seq(&mut state, &graph, 3, 0, 0); // g0, stamp 3
        assert!(q.offer(m3).is_empty(), "g0 #2 waits for g0 #1");
        assert!(q.offer(m2).is_empty(), "g1 head waits for stamp 1");
        assert_eq!(q.pending(), 2);
        // Filling the gap releases messages from BOTH groups, and m3 only
        // becomes deliverable after m2 consumed stamp 2 — the release loop
        // must iterate to a fixpoint across groups.
        let out = q.offer(m1);
        assert_eq!(
            out.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "cascade releases in stamp order across groups"
        );
        assert_eq!(q.pending(), 0);
        assert_eq!(q.delivered_count(), 3);
    }

    #[test]
    fn counters_work_up_to_the_last_usable_sequence_number() {
        // Single ingress-only group: no overlap stamps to fabricate.
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        let graph = GraphBuilder::new().build(&m);
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        // Fast-forward the expectation to the end of the sequence space
        // (test-only: unit tests may reach into the private counter).
        q.next_group.insert(g(0), SeqNo(u64::MAX - 1));
        let mut msg = Message::new(MessageId(1), n(0), g(0), vec![]);
        msg.group_seq = SeqNo(u64::MAX - 1);
        assert_eq!(q.offer(msg).len(), 1, "penultimate number delivers");
        assert_eq!(
            q.next_group[&g(0)],
            SeqNo(u64::MAX),
            "expectation advanced to the last number"
        );
    }

    #[test]
    #[should_panic(expected = "sequence number space exhausted")]
    fn delivering_the_final_sequence_number_overflows_loudly() {
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        let graph = GraphBuilder::new().build(&m);
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        q.next_group.insert(g(0), SeqNo(u64::MAX));
        let mut msg = Message::new(MessageId(1), n(0), g(0), vec![]);
        msg.group_seq = SeqNo(u64::MAX);
        // Advancing past u64::MAX must panic, not wrap to the ZERO
        // sentinel.
        let _ = q.offer(msg);
    }

    #[test]
    fn resync_keeps_group_progress() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0);
        assert_eq!(q.offer(m1).len(), 1);
        // Rebuild the same graph (quiescent reconfiguration no-op).
        q.resync(&m, &graph);
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        assert_eq!(q.offer(m2).len(), 1, "group counter survived resync");
    }

    #[test]
    #[should_panic(expected = "cannot resync")]
    fn resync_requires_quiescence() {
        let (m, graph, mut state) = two_group_setup();
        let mut q = DeliveryQueue::new(n(1), &m, &graph);
        let _gap = seq(&mut state, &graph, 1, 0, 0);
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        assert!(q.offer(m2).is_empty());
        q.resync(&m, &graph);
    }

    #[test]
    fn receiver_core_emits_deliver_commands_in_release_order() {
        use super::super::{Command, Event, Frame};
        let (m, graph, mut state) = two_group_setup();
        let mut core = ReceiverCore::new(n(1), &m, &graph);
        let m1 = seq(&mut state, &graph, 1, 0, 0);
        let m2 = seq(&mut state, &graph, 2, 0, 0);
        // Out-of-order arrival: m2 buffers, then m1 releases both.
        let held = core.on_event(Event::FrameArrived {
            frame: Frame {
                msg: m2,
                target_atom: None,
            },
        });
        assert!(held.is_empty());
        assert_eq!(core.queue().pending(), 1);
        let released = core.on_event(Event::FrameArrived {
            frame: Frame {
                msg: m1,
                target_atom: None,
            },
        });
        let ids: Vec<u64> = released
            .iter()
            .map(|c| match c {
                Command::Deliver { host, msg } => {
                    assert_eq!(*host, n(1));
                    msg.id.0
                }
                other => panic!("unexpected command {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(core.on_event(Event::Tick).is_empty(), "non-frame events no-op");
    }
}
