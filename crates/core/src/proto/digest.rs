//! State digests for the protocol cores, used by explicit-state model
//! checkers to deduplicate visited states.
//!
//! Every core exposes a `digest_into` method that folds its complete
//! observable state — everything that can influence a future transition —
//! into a [`Digest`]. The digest is a plain FNV-1a accumulator: stable
//! across runs and platforms (no `std::hash` randomization), cheap, and
//! order-sensitive, which is exactly what schedule exploration needs. Two
//! states with equal digests are treated as explored-already by
//! `seqnet-check`; the 64-bit space makes accidental collisions across the
//! bounded state counts involved (≤ millions) vanishingly unlikely, and a
//! collision can only cause *under*-exploration, never a false alarm.

use super::Peer;
use crate::{Message, SeqNo};

/// An order-sensitive, platform-stable 64-bit state accumulator (FNV-1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Folds one 64-bit word into the digest.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a sequence number.
    pub fn write_seq(&mut self, s: SeqNo) {
        self.write_u64(s.0);
    }

    /// Folds a peer identity, discriminant-tagged so `Node(0)` and
    /// `Host(0)` stay distinct.
    pub fn write_peer(&mut self, peer: Peer) {
        match peer {
            Peer::Publisher => self.write_u64(0),
            Peer::Node(i) => {
                self.write_u64(1);
                self.write_u64(i as u64);
            }
            Peer::Host(n) => {
                self.write_u64(2);
                self.write_u64(u64::from(n.0));
            }
        }
    }

    /// Folds a message's ordering-relevant identity: id, sender, group,
    /// group-local number, and every stamp. The payload is deliberately
    /// excluded — it never influences a protocol transition.
    pub fn write_message(&mut self, msg: &Message) {
        self.write_u64(msg.id.0);
        self.write_u64(u64::from(msg.sender.0));
        self.write_u64(u64::from(msg.group.0));
        self.write_seq(msg.group_seq);
        self.write_u64(msg.epoch);
        self.write_u64(msg.stamps.len() as u64);
        for s in &msg.stamps {
            self.write_u64(u64::from(s.atom.0));
            self.write_seq(s.seq);
        }
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageId;
    use seqnet_membership::{GroupId, NodeId};

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish(), "order matters");

        let mut c = Digest::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish(), "same input, same digest");
    }

    #[test]
    fn message_digest_ignores_payload() {
        let mut m1 = Message::new(MessageId(7), NodeId(0), GroupId(1), b"aaa".to_vec());
        let m2 = Message::new(MessageId(7), NodeId(0), GroupId(1), b"zzz".to_vec());
        let mut a = Digest::new();
        a.write_message(&m1);
        let mut b = Digest::new();
        b.write_message(&m2);
        assert_eq!(a.finish(), b.finish(), "payload excluded");

        m1.group_seq = SeqNo(1);
        let mut c = Digest::new();
        c.write_message(&m1);
        assert_ne!(a.finish(), c.finish(), "sequencing state included");
    }
}
