//! The sequencing-node state machine: ingest, stamp, forward, park,
//! replay, and group-commit — sans I/O.

use super::atom::{NextHop, ProtocolState};
use super::batch::CommandBuf;
use super::event::{Command, Event, Frame, Peer};
use super::routing::Routing;
use super::stats::RecoveryStats;
use super::trace::{Actor, EventKind, NullSink, TraceEvent, TraceSink};
use std::collections::BTreeMap;

/// The protocol logic of one sequencing node, as a pure event-in /
/// command-out state machine. Both drivers route every frame through this
/// type: the simulator runs one core per atom (solo routing) and schedules
/// the emitted [`Command::Send`]s under its delay model; the threaded
/// runtime runs one core per co-location class (group-commit mode) and
/// executes the emitted [`Command::Stage`]/[`Command::Flush`]/
/// [`Command::Ack`]s on real reliable links.
///
/// The core owns what is protocol: which atoms run here, consecutive-atom
/// ingestion via [`ProtocolState::process`], fan-out at egress, the
/// park/replay crash discipline, and the snapshot/ack group-commit rule.
/// The driver owns what is transport: clocks, timers, link sequence
/// numbers, retransmission, loss, and delay. The split is exercised by the
/// `sim_runtime_equivalence` differential test, which feeds one workload
/// through both drivers and asserts identical delivery orders.
#[derive(Debug, Clone)]
pub struct NodeCore {
    /// This node's driver-assigned index (= atom index under solo routing).
    node: usize,
    /// When set, forwards are emitted as [`Command::Stage`] instead of
    /// [`Command::Send`]: nothing may reach the wire before a snapshot
    /// records it (the runtime's group-commit rule). The simulator crashes
    /// nodes between whole events, so it runs without staging.
    group_commit: bool,
    /// Test-only sabotage: a group-commit core with this flag set emits
    /// raw [`Command::Send`]s, violating the staged-output discipline.
    /// Exists so the model checker can prove its oracle actually fires.
    skip_staging: bool,
    /// Crashed: frames park instead of processing.
    down: bool,
    /// Frames that arrived while down, in arrival order.
    parked: Vec<Frame>,
    /// Highest cumulative ack sent per upstream peer — the receive prefix
    /// the last snapshot recorded.
    floors: BTreeMap<Peer, u64>,
    stats: RecoveryStats,
}

impl NodeCore {
    /// A fresh core for driver-level node `node`. `group_commit` selects
    /// staged output (see [`NodeCore`] docs).
    pub fn new(node: usize, group_commit: bool) -> Self {
        NodeCore {
            node,
            group_commit,
            skip_staging: false,
            down: false,
            parked: Vec::new(),
            floors: BTreeMap::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Breaks the group-commit discipline on purpose: outputs bypass
    /// staging and hit the wire as plain [`Command::Send`]s even in
    /// group-commit mode. **Test-only** — used by the `seqnet-check`
    /// staged-output oracle to prove it detects the violation it exists
    /// for. Never call this from a driver.
    #[doc(hidden)]
    pub fn sabotage_skip_staging(&mut self) {
        self.skip_staging = true;
    }

    /// Folds this core's complete observable state — liveness, parked
    /// frames in arrival order, and ack floors — into `d`, for model
    /// checkers deduplicating explored states. Recovery counters are
    /// excluded: they are statistics and never influence a transition.
    pub fn digest_into(&self, d: &mut super::Digest) {
        d.write_u64(self.node as u64);
        d.write_u64(u64::from(self.group_commit));
        d.write_u64(u64::from(self.down));
        d.write_u64(self.parked.len() as u64);
        for frame in &self.parked {
            d.write_message(&frame.msg);
            d.write_u64(frame.target_atom.map_or(u64::MAX, |a| u64::from(a.0)));
        }
        d.write_u64(self.floors.len() as u64);
        for (peer, floor) in &self.floors {
            d.write_peer(*peer);
            d.write_u64(*floor);
        }
    }

    /// This core's driver-assigned node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Whether the node processes arrivals (not crashed). While this is
    /// `false`, [`Event::FrameArrived`] parks the frame and returns no
    /// commands.
    pub fn is_accepting(&self) -> bool {
        !self.down
    }

    /// Counters for the crash-recovery path, shared between the
    /// simulator's `FaultStats` and the runtime's `RuntimeStats`.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Adds driver-measured recovery latency (the core has no clock).
    pub fn add_recovery_micros(&mut self, micros: u64) {
        self.stats.recovery_micros += micros;
    }

    /// Seeds the cumulative-ack floor for `peer`, used when the driver
    /// restores a core from a snapshot: the restored core must not re-ack
    /// below what the snapshotted incarnation already advertised.
    pub fn restore_floor(&mut self, peer: Peer, floor: u64) {
        self.floors.insert(peer, floor);
    }

    /// Feeds one event through the state machine; returns the commands the
    /// driver must execute, in order. `routing` is the driver's current
    /// routing view and `protocol` the (possibly shared) counter state —
    /// borrowed per call so the simulator can run every core against one
    /// global [`ProtocolState`] while runtime threads own theirs.
    pub fn on_event(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        event: Event,
    ) -> Vec<Command> {
        self.on_event_traced(routing, protocol, event, &mut NullSink)
    }

    /// [`NodeCore::on_event`] with protocol tracing: stamps, forwards,
    /// crashes, and replays are reported to `sink` as they happen. Thin
    /// wrapper over [`NodeCore::on_event_into`] allocating a fresh buffer
    /// per call; hot loops should batch via [`NodeCore::on_events`]
    /// instead.
    pub fn on_event_traced<S: TraceSink + ?Sized>(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        event: Event,
        sink: &mut S,
    ) -> Vec<Command> {
        let mut out = CommandBuf::new();
        self.on_event_into(routing, protocol, event, sink, &mut out);
        out.into_commands()
    }

    /// Batched fast path: feeds every event through the state machine in
    /// order, appending the emitted commands to the caller-owned `out`.
    /// Semantically identical to calling [`NodeCore::on_event`] per event
    /// and concatenating the results (PROTOCOL.md §12) — but scratch
    /// buffers are reused, so a warm buffer makes the whole batch
    /// allocation-free apart from the frames themselves.
    pub fn on_events(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        events: impl IntoIterator<Item = Event>,
        out: &mut CommandBuf,
    ) {
        self.on_events_traced(routing, protocol, events, &mut NullSink, out);
    }

    /// [`NodeCore::on_events`] with protocol tracing.
    pub fn on_events_traced<S: TraceSink + ?Sized>(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        events: impl IntoIterator<Item = Event>,
        sink: &mut S,
        out: &mut CommandBuf,
    ) {
        for event in events {
            self.on_event_into(routing, protocol, event, sink, out);
        }
    }

    /// The single implementation: feeds one event through the state
    /// machine, appending the emitted commands to `out`. Every other
    /// entry point (`on_event`, `on_event_traced`, `on_events`) funnels
    /// here.
    pub fn on_event_into<S: TraceSink + ?Sized>(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        event: Event,
        sink: &mut S,
        out: &mut CommandBuf,
    ) {
        match event {
            Event::FrameArrived { frame } => self.on_frame(routing, protocol, frame, sink, out),
            Event::NodeCrashed => {
                self.down = true;
                self.stats.crashes += 1;
                if sink.enabled() {
                    sink.record(TraceEvent::new(EventKind::Crash, self.actor()));
                }
            }
            Event::NodeRestarted => {
                self.down = false;
                let parked = std::mem::take(&mut self.parked);
                self.stats.frames_replayed += parked.len() as u64;
                for frame in parked {
                    if sink.enabled() {
                        sink.record(TraceEvent {
                            msg: Some(frame.msg.id.0),
                            group: Some(u64::from(frame.msg.group.0)),
                            ..TraceEvent::new(EventKind::Replay, self.actor())
                        });
                    }
                    out.push(Command::Replay { frame });
                }
            }
            Event::SnapshotTaken { rx_next } => {
                // The snapshot is durable: release staged outputs, then
                // acknowledge exactly the receive prefix it recorded.
                out.push(Command::Flush);
                for (peer, next) in rx_next {
                    let floor = next.saturating_sub(1);
                    let prev = self.floors.get(&peer).copied().unwrap_or(0);
                    if floor > prev {
                        self.floors.insert(peer, floor);
                        out.push(Command::Ack { to: peer, through: floor });
                    }
                }
            }
            Event::Tick => {}
        }
    }

    /// Runs a frame through this node's consecutive atoms, then forwards:
    /// to the next atom's owner if the path leaves this node, or fanned
    /// out to every group member at egress (in membership order).
    fn on_frame<S: TraceSink + ?Sized>(
        &mut self,
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        frame: Frame,
        sink: &mut S,
        out: &mut CommandBuf,
    ) {
        if self.down {
            self.stats.messages_parked += 1;
            self.parked.push(frame);
            return;
        }
        let mut atom = frame
            .target_atom
            .expect("frames addressed to a node carry a target atom");
        debug_assert_eq!(
            routing.owner_of(atom),
            self.node,
            "frame routed to the wrong node"
        );
        let mut msg = frame.msg;
        loop {
            // Snapshot the sequencing state so a stamp assignment by
            // `process` is observable; skipped entirely when untraced.
            let pre = sink.enabled().then(|| (msg.group_seq, msg.stamps.len()));
            let hop = protocol.process(routing.graph(), &mut msg, atom);
            if let Some((seq_before, stamps_before)) = pre {
                // The atom stamped if it appended an overlap stamp or
                // assigned the group-local number; transit atoms did
                // neither and emit nothing.
                let assigned = if msg.stamps.len() > stamps_before {
                    Some(msg.stamps[msg.stamps.len() - 1].seq.0)
                } else if msg.group_seq != seq_before {
                    Some(msg.group_seq.0)
                } else {
                    None
                };
                if let Some(seq) = assigned {
                    sink.record(TraceEvent {
                        msg: Some(msg.id.0),
                        group: Some(u64::from(msg.group.0)),
                        atom: Some(u64::from(atom.0)),
                        seq: Some(seq),
                        ..TraceEvent::new(EventKind::AtomStamp, self.actor())
                    });
                }
            }
            match hop {
                NextHop::Atom(next) => {
                    let owner = routing.owner_of(next);
                    if owner == self.node {
                        atom = next;
                    } else {
                        if sink.enabled() {
                            sink.record(TraceEvent {
                                msg: Some(msg.id.0),
                                group: Some(u64::from(msg.group.0)),
                                atom: Some(u64::from(next.0)),
                                seq: Some(u64::from(self.group_commit && !self.skip_staging)),
                                detail: Some(owner as u64),
                                ..TraceEvent::new(EventKind::FrameForward, self.actor())
                            });
                        }
                        out.push(self.output(
                            Peer::Node(owner),
                            Frame {
                                msg,
                                target_atom: Some(next),
                            },
                        ));
                        break;
                    }
                }
                NextHop::Egress => {
                    // Fan out in membership order through the reused
                    // scratch; the last member takes the message by move,
                    // so an n-way fan-out clones n-1 times, not n.
                    let mut members = std::mem::take(&mut out.members);
                    members.extend(routing.membership().members(msg.group));
                    if let Some((&last, rest)) = members.split_last() {
                        for &member in rest {
                            out.push(self.output(
                                Peer::Host(member),
                                Frame {
                                    msg: msg.clone(),
                                    target_atom: None,
                                },
                            ));
                        }
                        out.push(self.output(
                            Peer::Host(last),
                            Frame {
                                msg,
                                target_atom: None,
                            },
                        ));
                    }
                    members.clear();
                    out.members = members;
                    break;
                }
            }
        }
    }

    fn output(&self, to: Peer, frame: Frame) -> Command {
        if self.group_commit && !self.skip_staging {
            Command::Stage { to, frame }
        } else {
            Command::Send { to, frame }
        }
    }

    fn actor(&self) -> Actor {
        Actor::Node(self.node as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, MessageId};
    use seqnet_membership::{GroupId, Membership, NodeId};
    use seqnet_overlap::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn setup() -> (Membership, seqnet_overlap::SequencingGraph) {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ]);
        let graph = GraphBuilder::new().build(&m);
        (m, graph)
    }

    fn publish(id: u64, sender: NodeId, group: GroupId) -> Frame {
        Frame {
            msg: Message::new(MessageId(id), sender, group, bytes::Bytes::new()),
            target_atom: None,
        }
    }

    /// Drives a message through solo-routed cores until all copies reach
    /// egress; returns the host fan-out frames.
    fn run_through(
        cores: &mut [NodeCore],
        routing: &Routing<'_>,
        protocol: &mut ProtocolState,
        mut frame: Frame,
    ) -> Vec<(Peer, Frame)> {
        let ingress = routing.graph().ingress(frame.msg.group).expect("has path");
        frame.target_atom = Some(ingress);
        let mut queue = vec![frame];
        let mut delivered = Vec::new();
        while let Some(f) = queue.pop() {
            let atom = f.target_atom.expect("node frame");
            let node = routing.owner_of(atom);
            for cmd in cores[node].on_event(routing, protocol, Event::FrameArrived { frame: f }) {
                match cmd {
                    Command::Send {
                        to: Peer::Node(_),
                        frame,
                    } => queue.push(frame),
                    Command::Send { to, frame } => delivered.push((to, frame)),
                    other => panic!("unexpected command {other:?}"),
                }
            }
        }
        delivered
    }

    #[test]
    fn frames_fan_out_to_all_members_in_membership_order() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let mut cores: Vec<NodeCore> =
            (0..graph.num_atoms()).map(|i| NodeCore::new(i, false)).collect();
        let out = run_through(&mut cores, &routing, &mut protocol, publish(0, n(0), g(0)));
        let hosts: Vec<Peer> = out.iter().map(|(to, _)| *to).collect();
        let expected: Vec<Peer> = m.members(g(0)).map(Peer::Host).collect();
        assert_eq!(hosts, expected);
        for (_, f) in &out {
            assert!(f.target_atom.is_none(), "host frames carry no atom");
            assert!(f.msg.is_sequenced(), "ingress stamped the group seq");
        }
    }

    #[test]
    fn group_commit_mode_stages_instead_of_sending() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let ingress = graph.ingress(g(0)).unwrap();
        let node = routing.owner_of(ingress);
        let mut core = NodeCore::new(node, true);
        let mut frame = publish(0, n(0), g(0));
        frame.target_atom = Some(ingress);
        let cmds = core.on_event(&routing, &mut protocol, Event::FrameArrived { frame });
        assert!(!cmds.is_empty());
        assert!(
            cmds.iter().all(|c| matches!(c, Command::Stage { .. })),
            "group-commit cores stage every forward"
        );
    }

    #[test]
    fn crash_parks_and_restart_replays_in_arrival_order() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let ingress = graph.ingress(g(0)).unwrap();
        let node = routing.owner_of(ingress);
        let mut core = NodeCore::new(node, false);

        assert!(core.on_event(&routing, &mut protocol, Event::NodeCrashed).is_empty());
        assert!(!core.is_accepting());
        for id in 0..3u64 {
            let mut frame = publish(id, n(0), g(0));
            frame.target_atom = Some(ingress);
            let cmds = core.on_event(&routing, &mut protocol, Event::FrameArrived { frame });
            assert!(cmds.is_empty(), "down node emits nothing");
        }
        assert_eq!(core.recovery_stats().crashes, 1);
        assert_eq!(core.recovery_stats().messages_parked, 3);

        let replays = core.on_event(&routing, &mut protocol, Event::NodeRestarted);
        assert!(core.is_accepting());
        let ids: Vec<u64> = replays
            .iter()
            .map(|c| match c {
                Command::Replay { frame } => frame.msg.id.0,
                other => panic!("unexpected command {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2], "replay preserves arrival order");
        assert_eq!(core.recovery_stats().frames_replayed, 3);
    }

    #[test]
    fn snapshot_flushes_then_acks_only_advanced_floors() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let mut core = NodeCore::new(0, true);
        core.restore_floor(Peer::Publisher, 4);

        let cmds = core.on_event(
            &routing,
            &mut protocol,
            Event::SnapshotTaken {
                rx_next: vec![(Peer::Publisher, 5), (Peer::Node(1), 3)],
            },
        );
        assert!(matches!(cmds[0], Command::Flush), "flush precedes acks");
        // Publisher floor 4 == next-1, no new ack; node 1 advances to 2.
        assert_eq!(cmds.len(), 2);
        match &cmds[1] {
            Command::Ack { to, through } => {
                assert_eq!(*to, Peer::Node(1));
                assert_eq!(*through, 2);
            }
            other => panic!("unexpected command {other:?}"),
        }

        // Same snapshot again: floors unchanged, only the flush remains.
        let again = core.on_event(
            &routing,
            &mut protocol,
            Event::SnapshotTaken {
                rx_next: vec![(Peer::Publisher, 5), (Peer::Node(1), 3)],
            },
        );
        assert_eq!(again.len(), 1);
        assert!(matches!(again[0], Command::Flush));
    }

    #[test]
    fn tick_is_a_no_op() {
        let (m, graph) = setup();
        let routing = Routing::solo(&m, &graph);
        let mut protocol = ProtocolState::new(&graph);
        let mut core = NodeCore::new(0, false);
        assert!(core.on_event(&routing, &mut protocol, Event::Tick).is_empty());
    }
}
