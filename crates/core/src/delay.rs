//! Delay models: how long messages take between protocol endpoints.

use seqnet_membership::NodeId;
use seqnet_overlap::{AtomId, Colocation, Placement};
use seqnet_sim::SimTime;
use seqnet_topology::{DelayOracle, Graph as TopoGraph, HostId, HostMap, RouterId};
use std::collections::HashMap;

/// A communication endpoint of the ordering layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// An end host (publisher or subscriber).
    Host(NodeId),
    /// A sequencing atom (resolved to its sequencing node's machine).
    Atom(AtomId),
}

/// How message propagation delay is computed between endpoints.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every hop between distinct machines costs the same fixed delay.
    /// Atoms are machines of their own; useful for logical-order tests and
    /// quickstarts that do not care about topology.
    Uniform(SimTime),
    /// Shortest-path propagation delays on a router topology, with hosts
    /// attached via a [`HostMap`] and atoms placed by co-location +
    /// placement.
    Table(DelayTable),
    /// A uniform default with explicit per-channel overrides — used to
    /// engineer adversarial timings (e.g. the slow `Q1 -> Q2` link in the
    /// paper's Figure 2(a) circular-dependency example).
    PerChannel {
        /// Delay between distinct endpoints without an override.
        default: SimTime,
        /// Directed channel overrides.
        overrides: HashMap<(Endpoint, Endpoint), SimTime>,
    },
}

impl DelayModel {
    /// Delay from `from` to `to`.
    pub fn delay(&self, from: Endpoint, to: Endpoint) -> SimTime {
        match self {
            DelayModel::Uniform(d) => {
                if from == to {
                    SimTime::ZERO
                } else {
                    *d
                }
            }
            DelayModel::Table(t) => t.delay(from, to),
            DelayModel::PerChannel { default, overrides } => {
                if let Some(&d) = overrides.get(&(from, to)) {
                    d
                } else if from == to {
                    SimTime::ZERO
                } else {
                    *default
                }
            }
        }
    }
}

/// Precomputed endpoint-to-endpoint propagation delays over a topology.
///
/// Built once per experiment: one Dijkstra per *distinct router* that hosts
/// an endpoint, then O(1) lookups. Co-located atoms resolve to the same
/// router and therefore communicate with zero delay.
#[derive(Debug, Clone)]
pub struct DelayTable {
    /// Router of every host, indexed by node id.
    host_router: Vec<RouterId>,
    /// Router of every atom, indexed by atom id (retired atoms keep the
    /// router of their node at placement time).
    atom_router: Vec<RouterId>,
    /// Delay between involved routers.
    delays: HashMap<(RouterId, RouterId), SimTime>,
}

impl DelayTable {
    /// Builds the table for the given topology, attachment, and placement.
    ///
    /// `num_atoms` is the total atom count of the sequencing graph; atoms
    /// without a sequencing node (retired) are pinned to router 0 — they
    /// are never routed to.
    ///
    /// # Panics
    ///
    /// Panics if any queried router pair is disconnected (generated
    /// topologies are connected).
    pub fn build(
        topo: &TopoGraph,
        hosts: &HostMap,
        coloc: &Colocation,
        placement: &Placement,
        num_atoms: usize,
    ) -> Self {
        let host_router: Vec<RouterId> = (0..hosts.num_hosts())
            .map(|i| hosts.router_of(HostId(i as u32)))
            .collect();
        let atom_router: Vec<RouterId> = (0..num_atoms)
            .map(|i| {
                placement
                    .router_of_atom(coloc, AtomId(i as u32))
                    .unwrap_or(RouterId(0))
            })
            .collect();

        // Distinct routers involved.
        let mut routers: Vec<RouterId> = host_router
            .iter()
            .chain(atom_router.iter())
            .copied()
            .collect();
        routers.sort();
        routers.dedup();

        let mut oracle = DelayOracle::new(topo);
        let mut delays = HashMap::new();
        for &src in &routers {
            let sp = oracle.paths_from(src);
            for &dst in &routers {
                let d = sp
                    .delay_to(dst)
                    .unwrap_or_else(|| panic!("{dst} unreachable from {src}"));
                delays.insert((src, dst), SimTime::from_micros(d.as_micros()));
            }
        }
        DelayTable {
            host_router,
            atom_router,
            delays,
        }
    }

    fn router_of(&self, ep: Endpoint) -> RouterId {
        match ep {
            Endpoint::Host(n) => self.host_router[n.index()],
            Endpoint::Atom(a) => self.atom_router[a.index()],
        }
    }

    /// Propagation delay between two endpoints.
    pub fn delay(&self, from: Endpoint, to: Endpoint) -> SimTime {
        let (a, b) = (self.router_of(from), self.router_of(to));
        self.delays[&(a, b)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use seqnet_membership::{GroupId, Membership};
    use seqnet_overlap::GraphBuilder;
    use seqnet_topology::{ClusteredAttachment, TransitStubParams};

    #[test]
    fn uniform_model_distances() {
        let m = DelayModel::Uniform(SimTime::from_ms(1.0));
        let a = Endpoint::Host(NodeId(0));
        let b = Endpoint::Host(NodeId(1));
        assert_eq!(m.delay(a, a), SimTime::ZERO);
        assert_eq!(m.delay(a, b), SimTime::from_ms(1.0));
        assert_eq!(
            m.delay(Endpoint::Atom(AtomId(0)), Endpoint::Atom(AtomId(1))),
            SimTime::from_ms(1.0)
        );
    }

    #[test]
    fn table_model_symmetric_and_colocated_zero() {
        let mut rng = StdRng::seed_from_u64(8);
        let topo = TransitStubParams::small().generate(&mut rng);
        let hosts = ClusteredAttachment::new(6, 3).attach(&topo, &mut rng);
        let membership = Membership::from_groups([
            (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
            (GroupId(1), vec![NodeId(0), NodeId(1), NodeId(3)]),
            (GroupId(2), vec![NodeId(0), NodeId(1)]),
        ]);
        let graph = GraphBuilder::new().build(&membership);
        let coloc = Colocation::compute(&graph, &mut rng);
        let anchors = seqnet_overlap::place::member_anchors(&membership, |n| hosts.router_of(seqnet_topology::HostId(n.0)));
        let placement = Placement::heuristic(&graph, &coloc, &topo.graph, &anchors, &mut rng);
        let table = DelayTable::build(&topo.graph, &hosts, &coloc, &placement, graph.num_atoms());

        let h0 = Endpoint::Host(NodeId(0));
        let h1 = Endpoint::Host(NodeId(1));
        assert_eq!(table.delay(h0, h1), table.delay(h1, h0), "symmetric");
        assert_eq!(table.delay(h0, h0), SimTime::ZERO);

        // Atoms sharing a sequencing node are zero-delay apart.
        for node in coloc.nodes() {
            for w in node.atoms.windows(2) {
                assert_eq!(
                    table.delay(Endpoint::Atom(w[0]), Endpoint::Atom(w[1])),
                    SimTime::ZERO,
                    "co-located atoms share a machine"
                );
            }
        }
    }
}
