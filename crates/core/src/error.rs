//! Error types of the core protocol.

use seqnet_membership::{GroupId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors returned by the public protocol API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The destination group does not exist (or has no members).
    UnknownGroup(GroupId),
    /// A trigger referenced a node that subscribes to nothing.
    UnknownNode(NodeId),
    /// A causal publish was requested from a node outside the destination
    /// group — the protocol only guarantees causal order "when the sender
    /// is part of the group to which the message is sent" (paper §3.3).
    SenderNotSubscribed {
        /// The publishing node.
        sender: NodeId,
        /// The group it is not a member of.
        group: GroupId,
    },
    /// The supplied sequencing graph fails C1/C2 validation.
    InvalidGraph(String),
    /// A reconfiguration was attempted while messages were still in
    /// flight or buffered; membership changes must be quiescent.
    NotQuiescent {
        /// Simulator events still pending.
        pending_events: usize,
        /// Messages buffered at receivers.
        buffered_messages: usize,
    },
    /// An online reconfiguration (epoch handoff) is already pending;
    /// the next one can begin once the current epoch has drained and
    /// the handoff completed (PROTOCOL.md §14).
    ReconfigPending {
        /// The epoch the pending handoff will activate.
        next_epoch: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::SenderNotSubscribed { sender, group } => {
                write!(f, "causal publish requires {sender} to subscribe to {group}")
            }
            CoreError::InvalidGraph(reason) => write!(f, "invalid sequencing graph: {reason}"),
            CoreError::NotQuiescent {
                pending_events,
                buffered_messages,
            } => write!(
                f,
                "not quiescent: {pending_events} pending events, {buffered_messages} buffered messages"
            ),
            CoreError::ReconfigPending { next_epoch } => write!(
                f,
                "reconfiguration already pending: epoch {next_epoch} has not activated yet"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnknownGroup(GroupId(3)).to_string(),
            "unknown group G3"
        );
        assert_eq!(
            CoreError::SenderNotSubscribed {
                sender: NodeId(1),
                group: GroupId(2)
            }
            .to_string(),
            "causal publish requires N1 to subscribe to G2"
        );
        assert_eq!(
            CoreError::ReconfigPending { next_epoch: 2 }.to_string(),
            "reconfiguration already pending: epoch 2 has not activated yet"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
