//! Traffic drivers: sustained publish schedules for load experiments.
//!
//! The paper's evaluation sends one message per (node, group) pair; these
//! drivers generate *sustained* workloads — periodic or Poisson — so the
//! receiver-side ordering buffers and the sequencing network can be
//! studied under load.

use crate::{CoreError, MessageId, OrderedPubSub};
use rand::Rng;
use seqnet_membership::{GroupId, NodeId};
use seqnet_sim::SimTime;

/// How publish instants are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Fixed spacing: one publish every `period`.
    Periodic {
        /// Interval between consecutive publishes of one publisher.
        period: SimTime,
    },
    /// Poisson process: exponential inter-arrival times with the given
    /// mean (memoryless bursts, the classic open-loop load model).
    Poisson {
        /// Mean interval between consecutive publishes of one publisher.
        mean: SimTime,
    },
}

impl Arrivals {
    fn next_gap<R: Rng>(&self, rng: &mut R) -> SimTime {
        match self {
            Arrivals::Periodic { period } => *period,
            Arrivals::Poisson { mean } => {
                // Inverse-CDF sampling; clamp the uniform away from 0 so
                // ln() stays finite.
                let u: f64 = rng.gen_range(1e-12..1.0);
                let gap = -(u.ln()) * mean.as_micros() as f64;
                SimTime::from_micros(gap.round().max(1.0) as u64)
            }
        }
    }
}

/// One publisher's schedule: who, where, how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublisherSpec {
    /// The publishing node.
    pub node: NodeId,
    /// The destination group.
    pub group: GroupId,
    /// The arrival process.
    pub arrivals: Arrivals,
}

/// Schedules sustained traffic into an [`OrderedPubSub`] until `horizon`.
///
/// Returns the ids of all scheduled messages, in schedule order.
///
/// # Errors
///
/// Returns the first publish error (e.g. an unknown group).
///
/// # Example
///
/// ```
/// use seqnet_core::{traffic, OrderedPubSub};
/// use seqnet_core::traffic::{Arrivals, PublisherSpec};
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_sim::SimTime;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
/// let mut bus = OrderedPubSub::new(&m);
/// let ids = traffic::drive(
///     &mut bus,
///     &[PublisherSpec {
///         node: NodeId(0),
///         group: GroupId(0),
///         arrivals: Arrivals::Periodic { period: SimTime::from_ms(2.0) },
///     }],
///     SimTime::from_ms(10.0),
///     &mut StdRng::seed_from_u64(1),
/// )?;
/// assert_eq!(ids.len(), 4, "publishes at 2, 4, 6, 8 ms");
/// bus.run_to_quiescence();
/// assert_eq!(bus.delivered(NodeId(1)).len(), 4);
/// # Ok::<(), seqnet_core::CoreError>(())
/// ```
pub fn drive<R: Rng>(
    bus: &mut OrderedPubSub,
    publishers: &[PublisherSpec],
    horizon: SimTime,
    rng: &mut R,
) -> Result<Vec<MessageId>, CoreError> {
    let mut ids = Vec::new();
    let start = bus.now();
    for spec in publishers {
        let mut t = start + spec.arrivals.next_gap(rng);
        while t < start + horizon {
            ids.push(bus.publish_at(t, spec.node, spec.group, vec![])?);
            t += spec.arrivals.next_gap(rng);
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqnet_membership::Membership;

    fn setup() -> (Membership, OrderedPubSub) {
        let m = Membership::from_groups([
            (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
            (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        ]);
        let bus = OrderedPubSub::new(&m);
        (m, bus)
    }

    #[test]
    fn periodic_schedule_counts() {
        let (_, mut bus) = setup();
        let ids = drive(
            &mut bus,
            &[PublisherSpec {
                node: NodeId(0),
                group: GroupId(0),
                arrivals: Arrivals::Periodic {
                    period: SimTime::from_ms(1.0),
                },
            }],
            SimTime::from_ms(10.0),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        assert_eq!(ids.len(), 9, "publishes at 1..=9 ms");
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        assert_eq!(bus.delivered(NodeId(1)).len(), 9);
    }

    #[test]
    fn poisson_mean_rate_is_plausible() {
        let (_, mut bus) = setup();
        let ids = drive(
            &mut bus,
            &[PublisherSpec {
                node: NodeId(0),
                group: GroupId(0),
                arrivals: Arrivals::Poisson {
                    mean: SimTime::from_ms(1.0),
                },
            }],
            SimTime::from_ms(1000.0),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        // Expect ~1000 messages; Poisson std is ~sqrt(1000) ≈ 32.
        assert!(
            (850..1150).contains(&ids.len()),
            "unexpected Poisson count {}",
            ids.len()
        );
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
    }

    #[test]
    fn competing_publishers_stay_ordered() {
        let (m, mut bus) = setup();
        drive(
            &mut bus,
            &[
                PublisherSpec {
                    node: NodeId(1),
                    group: GroupId(0),
                    arrivals: Arrivals::Poisson {
                        mean: SimTime::from_ms(2.0),
                    },
                },
                PublisherSpec {
                    node: NodeId(2),
                    group: GroupId(1),
                    arrivals: Arrivals::Poisson {
                        mean: SimTime::from_ms(2.0),
                    },
                },
            ],
            SimTime::from_ms(100.0),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        let o1: Vec<_> = bus.delivered(NodeId(1)).iter().map(|d| d.id).collect();
        let o2: Vec<_> = bus.delivered(NodeId(2)).iter().map(|d| d.id).collect();
        let c1: Vec<_> = o1.iter().filter(|x| o2.contains(x)).collect();
        let c2: Vec<_> = o2.iter().filter(|x| o1.contains(x)).collect();
        assert_eq!(c1, c2, "overlap members agree under sustained load");
        let _ = m;
    }

    #[test]
    fn unknown_group_propagates() {
        let (_, mut bus) = setup();
        let err = drive(
            &mut bus,
            &[PublisherSpec {
                node: NodeId(0),
                group: GroupId(9),
                arrivals: Arrivals::Periodic {
                    period: SimTime::from_ms(1.0),
                },
            }],
            SimTime::from_ms(5.0),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap_err();
        assert_eq!(err, CoreError::UnknownGroup(GroupId(9)));
    }
}
