//! Dynamic membership on top of the simulated service — the paper's §5
//! "dynamic behavior" future work, implemented with quiescent
//! reconfiguration.

use crate::{CoreError, DeliveryRecord, MessageId, OrderedPubSub};
use bytes::Bytes;
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{DynamicGraph, GraphBuilder};
use seqnet_sim::SimTime;

/// An ordered pub/sub service whose membership can change between bursts
/// of traffic.
///
/// Joins and leaves update the sequencing graph *incrementally*
/// ([`DynamicGraph`]): new overlaps get fresh atoms next to their partner
/// groups, vanished overlaps retire lazily and keep forwarding as transit
/// hops until [`DynamicOrderedPubSub::compact`]. Each change drains
/// in-flight traffic first (membership changes are quiescent; the paper
/// leaves concurrent reconfiguration open).
///
/// A subscriber joining mid-stream starts receiving from the join onward;
/// sequence counters of surviving groups continue seamlessly.
///
/// # Example
///
/// ```
/// use seqnet_membership::{NodeId, GroupId};
/// use seqnet_core::DynamicOrderedPubSub;
///
/// let mut bus = DynamicOrderedPubSub::new();
/// bus.join(NodeId(0), GroupId(0))?;
/// bus.join(NodeId(1), GroupId(0))?;
/// bus.publish(NodeId(0), GroupId(0), b"pre".to_vec())?;
/// bus.run_to_quiescence();
///
/// // Node 2 joins later: it sees only messages published after its join.
/// bus.join(NodeId(2), GroupId(0))?;
/// bus.publish(NodeId(0), GroupId(0), b"post".to_vec())?;
/// bus.run_to_quiescence();
/// assert_eq!(bus.delivered(NodeId(1)).len(), 2);
/// assert_eq!(bus.delivered(NodeId(2)).len(), 1);
/// # Ok::<(), seqnet_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct DynamicOrderedPubSub {
    graph: DynamicGraph,
    bus: OrderedPubSub,
    hop: SimTime,
}

impl Default for DynamicOrderedPubSub {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicOrderedPubSub {
    /// Creates an empty service with a uniform 1 ms hop delay.
    pub fn new() -> Self {
        Self::with_uniform_delay(SimTime::from_ms(1.0))
    }

    /// Creates an empty service with an explicit uniform hop delay.
    pub fn with_uniform_delay(hop: SimTime) -> Self {
        let graph = GraphBuilder::new().dynamic();
        let bus = OrderedPubSub::with_uniform_delay(&Membership::new(), hop);
        DynamicOrderedPubSub { graph, bus, hop }
    }

    /// Subscribes `node` to `group`, creating the group if needed. The
    /// change is quiescent: the sequencing graph is updated incrementally
    /// (the paper models a membership change as removing the old group and
    /// adding the new one, §3.2) and counters of surviving groups carry
    /// over.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotQuiescent`] if messages are still in
    /// flight — run [`DynamicOrderedPubSub::run_to_quiescence`] first, or
    /// use [`DynamicOrderedPubSub::join_live`] to reconfigure under live
    /// traffic. Returns [`CoreError::ReconfigPending`] while an online
    /// handoff is pending.
    pub fn join(&mut self, node: NodeId, group: GroupId) -> Result<(), CoreError> {
        self.change(group, |members| {
            members.push(node);
        })
    }

    /// Unsubscribes `node` from `group`; deletes the group when the last
    /// member leaves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group does not exist or
    /// the node is not a member; otherwise the same errors as
    /// [`DynamicOrderedPubSub::join`].
    pub fn leave(&mut self, node: NodeId, group: GroupId) -> Result<(), CoreError> {
        if !self.graph.membership().is_member(node, group) {
            return Err(CoreError::UnknownGroup(group));
        }
        self.change(group, |members| {
            members.retain(|&m| m != node);
        })
    }

    /// Subscribes `node` to `group` *without* draining first: the change
    /// is registered as a pending epoch handoff
    /// ([`OrderedPubSub::begin_reconfigure`]) that completes inside the
    /// next [`DynamicOrderedPubSub::run_to_quiescence`]. Returns the
    /// epoch the new configuration will activate as.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ReconfigPending`] if a handoff is already
    /// pending (one configuration change at a time).
    pub fn join_live(&mut self, node: NodeId, group: GroupId) -> Result<u64, CoreError> {
        self.change_live(group, |members| {
            members.push(node);
        })
    }

    /// Unsubscribes `node` from `group` without draining first; the
    /// epoch-handoff counterpart of [`DynamicOrderedPubSub::leave`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group does not exist or
    /// the node is not a member, [`CoreError::ReconfigPending`] if a
    /// handoff is already pending.
    pub fn leave_live(&mut self, node: NodeId, group: GroupId) -> Result<u64, CoreError> {
        if !self.graph.membership().is_member(node, group) {
            return Err(CoreError::UnknownGroup(group));
        }
        self.change_live(group, |members| {
            members.retain(|&m| m != node);
        })
    }

    /// Returns [`CoreError::NotQuiescent`] if the underlying engine has
    /// events in flight or messages buffered, [`CoreError::ReconfigPending`]
    /// if an epoch handoff is pending.
    fn ensure_quiescent(&self) -> Result<(), CoreError> {
        if self.bus.reconfig_pending() {
            return Err(CoreError::ReconfigPending {
                next_epoch: self.bus.epoch() + 1,
            });
        }
        let pending = self.bus.events_pending();
        let buffered = self.bus.stuck_messages();
        if pending > 0 || buffered > 0 {
            return Err(CoreError::NotQuiescent {
                pending_events: pending,
                buffered_messages: buffered,
            });
        }
        Ok(())
    }

    fn update_graph(&mut self, group: GroupId, update: impl FnOnce(&mut Vec<NodeId>)) {
        let mut members: Vec<NodeId> = self.graph.membership().members(group).collect();
        let existed = !members.is_empty();
        update(&mut members);
        if existed {
            self.graph.remove_group(group);
        }
        if !members.is_empty() {
            self.graph.add_group(group, members);
        }
    }

    fn change(
        &mut self,
        group: GroupId,
        update: impl FnOnce(&mut Vec<NodeId>),
    ) -> Result<(), CoreError> {
        // Checked before the graph mutates, so a rejected change leaves
        // the membership untouched.
        self.ensure_quiescent()?;
        self.update_graph(group, update);
        self.bus
            .reconfigure(self.graph.membership(), self.graph.graph())
    }

    fn change_live(
        &mut self,
        group: GroupId,
        update: impl FnOnce(&mut Vec<NodeId>),
    ) -> Result<u64, CoreError> {
        if self.bus.reconfig_pending() {
            return Err(CoreError::ReconfigPending {
                next_epoch: self.bus.epoch() + 1,
            });
        }
        self.update_graph(group, update);
        self.bus
            .begin_reconfigure(self.graph.membership(), self.graph.graph())
    }

    /// Compacts the sequencing graph: drops lazily retired atoms and
    /// rebuilds the chains (quiescent).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotQuiescent`] if messages are still in
    /// flight, [`CoreError::ReconfigPending`] while a handoff is pending.
    pub fn compact(&mut self) -> Result<(), CoreError> {
        self.ensure_quiescent()?;
        self.graph.compact();
        // Compaction renumbers atoms, so no counter can carry over: the
        // engine restarts fresh. Delivery history is discarded — callers
        // that need it keep their own copies.
        self.bus = OrderedPubSub::with_graph_unchecked(
            self.graph.membership(),
            self.graph.graph(),
            crate::DelayModel::Uniform(self.hop),
        )?;
        Ok(())
    }

    /// Publishes at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] for unknown groups.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Result<MessageId, CoreError> {
        self.bus.publish(sender, group, payload)
    }

    /// Runs until idle; returns the number of events executed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.bus.run_to_quiescence()
    }

    /// Deliveries at `node` so far (cleared by [`DynamicOrderedPubSub::compact`]).
    pub fn delivered(&self, node: NodeId) -> &[DeliveryRecord] {
        self.bus.delivered(node)
    }

    /// The current membership.
    pub fn membership(&self) -> &Membership {
        self.graph.membership()
    }

    /// Messages buffered at receivers (0 after quiescence on valid graphs).
    pub fn stuck_messages(&self) -> usize {
        self.bus.stuck_messages()
    }

    /// Retired atoms still forwarding as transit hops.
    pub fn retired_atoms(&self) -> usize {
        self.graph.num_retired()
    }

    /// The configuration epoch currently sequencing messages.
    pub fn epoch(&self) -> u64 {
        self.bus.epoch()
    }

    /// `true` while a live change has begun but its epoch handoff has
    /// not completed yet.
    pub fn reconfig_pending(&self) -> bool {
        self.bus.reconfig_pending()
    }

    /// Access to the underlying engine (metrics, graph).
    pub fn engine(&self) -> &OrderedPubSub {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn join_publish_leave_lifecycle() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.join(n(1), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![1]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.delivered(n(0)).len(), 1);
        assert_eq!(bus.delivered(n(1)).len(), 1);

        bus.leave(n(1), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![2]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.delivered(n(0)).len(), 2);
        assert_eq!(bus.delivered(n(1)).len(), 1, "left before the second message");
        assert_eq!(bus.stuck_messages(), 0);
    }

    #[test]
    fn late_joiner_starts_from_now() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.join(n(1), g(0)).unwrap();
        for i in 0..3u8 {
            bus.publish(n(0), g(0), vec![i]).unwrap();
        }
        bus.run_to_quiescence();

        bus.join(n(2), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![9]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.delivered(n(1)).len(), 4);
        assert_eq!(bus.delivered(n(2)).len(), 1, "history is not replayed");
        assert_eq!(bus.stuck_messages(), 0);
    }

    #[test]
    fn overlap_created_dynamically_orders_messages() {
        let mut bus = DynamicOrderedPubSub::new();
        // Build two groups that become double-overlapped only after joins.
        for node in [0, 1] {
            bus.join(n(node), g(0)).unwrap();
        }
        for node in [2, 3] {
            bus.join(n(node), g(1)).unwrap();
        }
        assert_eq!(bus.engine().graph().num_overlap_atoms(), 0);
        // Nodes 0 and 1 also join g1: overlap {0,1} appears.
        bus.join(n(0), g(1)).unwrap();
        bus.join(n(1), g(1)).unwrap();
        assert_eq!(bus.engine().graph().num_overlap_atoms(), 1);

        for i in 0..6u8 {
            let grp = if i % 2 == 0 { g(0) } else { g(1) };
            let sender = if i % 2 == 0 { n(0) } else { n(2) };
            bus.publish(sender, grp, vec![i]).unwrap();
        }
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        let o0: Vec<_> = bus.delivered(n(0)).iter().map(|d| d.id).collect();
        let o1: Vec<_> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        assert_eq!(o0, o1, "dynamic overlap members agree");
        assert_eq!(o0.len(), 6);
    }

    #[test]
    fn group_counters_survive_membership_changes() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.join(n(1), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![1]).unwrap();
        bus.run_to_quiescence();
        // Change membership (n2 joins): group counter must continue, or
        // n0/n1 would wait for a phantom restart at 1.
        bus.join(n(2), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![2]).unwrap();
        bus.publish(n(1), g(0), vec![3]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        assert_eq!(bus.delivered(n(0)).len(), 3);
        assert_eq!(bus.delivered(n(2)).len(), 2);
    }

    #[test]
    fn leave_nonmember_is_an_error() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        assert!(bus.leave(n(1), g(0)).is_err());
        assert!(bus.leave(n(0), g(9)).is_err());
    }

    #[test]
    fn last_leave_deletes_group() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.leave(n(0), g(0)).unwrap();
        assert!(bus.membership().is_empty());
        assert!(bus.publish(n(0), g(0), vec![]).is_err());
    }

    #[test]
    fn quiescent_change_with_traffic_in_flight_is_a_structured_error() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.join(n(1), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![1]).unwrap();

        // The publish has not drained: the quiescent paths must refuse
        // loudly instead of silently draining and rebuilding.
        match bus.join(n(2), g(0)) {
            Err(CoreError::NotQuiescent { pending_events, .. }) => {
                assert!(pending_events > 0, "the in-flight publish is reported")
            }
            other => panic!("expected NotQuiescent, got {other:?}"),
        }
        assert!(matches!(
            bus.leave(n(1), g(0)),
            Err(CoreError::NotQuiescent { .. })
        ));
        assert!(matches!(
            bus.compact(),
            Err(CoreError::NotQuiescent { .. })
        ));
        // The rejected change left the membership untouched.
        assert!(!bus.membership().is_member(n(2), g(0)));
        assert_eq!(bus.membership().group_size(g(0)), 2);

        bus.run_to_quiescence();
        bus.join(n(2), g(0)).unwrap();
        bus.publish(n(0), g(0), vec![2]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.delivered(n(2)).len(), 1);
        assert_eq!(bus.stuck_messages(), 0);
    }

    #[test]
    fn live_join_parks_traffic_and_advances_the_epoch() {
        let mut bus = DynamicOrderedPubSub::new();
        bus.join(n(0), g(0)).unwrap();
        bus.join(n(1), g(0)).unwrap();
        assert_eq!(bus.epoch(), 2, "each quiescent change advanced an epoch");

        bus.publish(n(0), g(0), vec![1]).unwrap();
        // Live join while the publish is in flight: accepted immediately.
        assert_eq!(bus.join_live(n(2), g(0)), Ok(3));
        assert!(bus.reconfig_pending());
        // A second change while the handoff is pending is refused.
        assert!(matches!(
            bus.join_live(n(3), g(0)),
            Err(CoreError::ReconfigPending { next_epoch: 3 })
        ));
        assert!(matches!(
            bus.join(n(3), g(0)),
            Err(CoreError::ReconfigPending { next_epoch: 3 })
        ));

        // Publishes during the handoff park and sequence in the new epoch.
        bus.publish(n(1), g(0), vec![2]).unwrap();
        bus.run_to_quiescence();
        assert!(!bus.reconfig_pending());
        assert_eq!(bus.epoch(), 3);
        assert_eq!(bus.stuck_messages(), 0);
        let epochs: Vec<u64> = bus.delivered(n(0)).iter().map(|d| d.epoch).collect();
        assert_eq!(epochs, vec![2, 3], "in-flight kept its epoch, parked got the new one");
        assert_eq!(bus.delivered(n(2)).len(), 1, "the joiner sees only new-epoch traffic");
    }

    #[test]
    fn live_leave_retires_atoms_lazily() {
        let mut bus = DynamicOrderedPubSub::new();
        for node in [0, 1] {
            bus.join(n(node), g(0)).unwrap();
            bus.join(n(node), g(1)).unwrap();
        }
        for node in [2, 3] {
            bus.join(n(node), g(1)).unwrap();
        }
        bus.publish(n(0), g(1), vec![1]).unwrap();
        let epoch = bus.epoch();
        assert_eq!(bus.leave_live(n(0), g(1)), Ok(epoch + 1));
        assert!(matches!(
            bus.leave_live(n(9), g(1)),
            Err(CoreError::UnknownGroup(_))
        ));
        bus.publish(n(1), g(1), vec![2]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        assert_eq!(bus.delivered(n(0)).iter().filter(|d| d.group == g(1)).count(), 1);
        assert_eq!(bus.delivered(n(2)).len(), 2, "staying member sees both messages");
        bus.compact().unwrap();
        bus.publish(n(1), g(1), vec![3]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
    }

    #[test]
    fn churn_then_compact_sheds_retired_atoms() {
        let mut bus = DynamicOrderedPubSub::new();
        for round in 0..4u32 {
            for node in 0..4u32 {
                bus.join(n(node), g(round)).unwrap();
            }
        }
        for round in 0..3u32 {
            for node in 0..4u32 {
                bus.leave(n(node), g(round)).unwrap();
            }
        }
        assert!(bus.retired_atoms() > 0, "lazy retirement accumulates");
        bus.compact().unwrap();
        assert_eq!(bus.retired_atoms(), 0);
        // Traffic still flows after compaction.
        bus.publish(n(0), g(3), vec![]).unwrap();
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0);
        assert_eq!(bus.delivered(n(0)).len(), 1);
    }
}
