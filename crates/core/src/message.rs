//! Messages and the sequence numbers they collect.

use bytes::Bytes;
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::AtomId;
use std::fmt;

/// Globally unique message identifier, assigned at publish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A sequence number assigned by a sequencing atom or group ingress.
///
/// Numbers start at 1; [`SeqNo::ZERO`] means "not yet assigned".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The unassigned sentinel.
    pub const ZERO: SeqNo = SeqNo(0);
    /// The first number a counter hands out.
    pub const FIRST: SeqNo = SeqNo(1);

    /// The following sequence number.
    ///
    /// # Panics
    ///
    /// Panics when the 64-bit sequence space is exhausted (the current
    /// number is `u64::MAX`) — in both debug and release profiles, because
    /// silently wrapping to the [`SeqNo::ZERO`] sentinel would corrupt
    /// every receiver expectation. The last usable sequence number is
    /// therefore `u64::MAX - 1`.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(
            self.0
                .checked_add(1)
                .expect("sequence number space exhausted"),
        )
    }

    /// `true` once a number has been assigned.
    #[inline]
    pub fn is_assigned(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One sequence number collected from one sequencing atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stamp {
    /// The atom that assigned the number.
    pub atom: AtomId,
    /// The assigned number (consecutive per atom, across both of the
    /// atom's groups).
    pub seq: SeqNo,
}

/// Inline capacity of a [`StampVec`]: stamps per message stay heap-free
/// up to this count. Four covers every topology the test suite and the
/// paper's evaluation build (stamp count = double overlaps on the path,
/// bounded by the group count in the worst case, §2); deeper paths spill
/// to the heap transparently.
pub const STAMP_INLINE: usize = 4;

/// A small-vector of [`Stamp`]s: the first [`STAMP_INLINE`] live inline
/// in the message itself, so stamping, cloning, and wire decode of
/// typical messages never touch the allocator (the PR 10 allocation
/// diet). Spills to a heap `Vec` beyond that, preserving `Vec` semantics.
///
/// Dereferences to `[Stamp]`, so all slice reads (`iter`, `len`,
/// indexing) work unchanged.
#[derive(Clone)]
pub struct StampVec {
    len: u32,
    inline: [Stamp; STAMP_INLINE],
    spill: Vec<Stamp>,
}

const STAMP_ZERO: Stamp = Stamp {
    atom: AtomId(0),
    seq: SeqNo::ZERO,
};

impl StampVec {
    /// An empty stamp vector (no allocation).
    #[inline]
    pub const fn new() -> Self {
        StampVec {
            len: 0,
            inline: [STAMP_ZERO; STAMP_INLINE],
            spill: Vec::new(),
        }
    }

    /// Appends a stamp; allocation-free while at most [`STAMP_INLINE`]
    /// stamps are held.
    #[inline]
    pub fn push(&mut self, stamp: Stamp) {
        let n = self.len as usize;
        if n < STAMP_INLINE {
            self.inline[n] = stamp;
        } else {
            if n == STAMP_INLINE {
                self.spill.reserve(STAMP_INLINE * 2);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(stamp);
        }
        self.len += 1;
    }

    /// Drops every stamp (keeps any spill capacity for reuse).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The stamps as a slice, in path order.
    #[inline]
    pub fn as_slice(&self) -> &[Stamp] {
        let n = self.len as usize;
        if n <= STAMP_INLINE {
            &self.inline[..n]
        } else {
            &self.spill
        }
    }
}

impl Default for StampVec {
    fn default() -> Self {
        StampVec::new()
    }
}

impl std::ops::Deref for StampVec {
    type Target = [Stamp];
    #[inline]
    fn deref(&self) -> &[Stamp] {
        self.as_slice()
    }
}

impl PartialEq for StampVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for StampVec {}

impl std::hash::Hash for StampVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for StampVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<Stamp>> for StampVec {
    fn from(v: Vec<Stamp>) -> Self {
        let mut out = StampVec::new();
        if v.len() > STAMP_INLINE {
            out.len = v.len() as u32;
            out.spill = v;
        } else {
            for s in v {
                out.push(s);
            }
        }
        out
    }
}

impl FromIterator<Stamp> for StampVec {
    fn from_iter<I: IntoIterator<Item = Stamp>>(iter: I) -> Self {
        let mut out = StampVec::new();
        for s in iter {
            out.push(s);
        }
        out
    }
}

impl<'a> IntoIterator for &'a StampVec {
    type Item = &'a Stamp;
    type IntoIter = std::slice::Iter<'a, Stamp>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A published message traversing (or having traversed) the sequencing
/// network.
///
/// The ordering overhead is `group_seq` plus one [`Stamp`] per double
/// overlap of the destination group — independent of group size and, in
/// the worst case, proportional to the number of groups (paper §2), unlike
/// vector timestamps which grow with the number of nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique id.
    pub id: MessageId,
    /// The publishing node.
    pub sender: NodeId,
    /// The destination group.
    pub group: GroupId,
    /// Application payload.
    pub payload: Bytes,
    /// Group-local sequence number, assigned by the group's ingress atom.
    pub group_seq: SeqNo,
    /// Overlap sequence numbers in path order (inline up to
    /// [`STAMP_INLINE`]; heap only on deeper paths).
    pub stamps: StampVec,
    /// Configuration epoch the message was sequenced under, stamped by
    /// the group's ingress atom together with `group_seq`. Epoch 0 is the
    /// initial configuration; every completed online reconfiguration
    /// (PROTOCOL.md §14) increments it. Zero until sequenced.
    pub epoch: u64,
}

impl Message {
    /// Creates an unsequenced message (no numbers assigned yet).
    pub fn new(
        id: MessageId,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<Bytes>,
    ) -> Self {
        Message {
            id,
            sender,
            group,
            payload: payload.into(),
            group_seq: SeqNo::ZERO,
            stamps: StampVec::new(),
            epoch: 0,
        }
    }

    /// The stamp assigned by `atom`, if the message passed it as a stamper.
    pub fn stamp_of(&self, atom: AtomId) -> Option<SeqNo> {
        self.stamps
            .iter()
            .find(|s| s.atom == atom)
            .map(|s| s.seq)
    }

    /// `true` once the ingress assigned the group-local number.
    pub fn is_sequenced(&self) -> bool {
        self.group_seq.is_assigned()
    }

    /// Size in bytes of the ordering metadata this message carries (the
    /// quantity compared against vector-timestamp overhead in §4.4):
    /// 8 bytes of group-local number plus 12 per stamp (atom id + number).
    pub fn ordering_overhead_bytes(&self) -> usize {
        8 + self.stamps.len() * 12
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} from {} to {} (G{}, {} stamps)",
            self.id,
            self.sender,
            self.group,
            self.group_seq.0,
            self.stamps.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_progression() {
        assert!(!SeqNo::ZERO.is_assigned());
        assert!(SeqNo::FIRST.is_assigned());
        assert_eq!(SeqNo::ZERO.next(), SeqNo::FIRST);
        assert_eq!(SeqNo(7).next(), SeqNo(8));
        assert_eq!(SeqNo(u64::MAX - 1).next(), SeqNo(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "sequence number space exhausted")]
    fn seqno_overflow_panics_rather_than_wrapping() {
        let _ = SeqNo(u64::MAX).next();
    }

    #[test]
    fn new_message_is_unsequenced() {
        let m = Message::new(MessageId(1), NodeId(0), GroupId(0), b"hi".to_vec());
        assert!(!m.is_sequenced());
        assert!(m.stamps.is_empty());
        assert_eq!(m.payload.as_ref(), b"hi");
    }

    #[test]
    fn stamp_lookup() {
        let mut m = Message::new(MessageId(1), NodeId(0), GroupId(0), Bytes::new());
        m.stamps.push(Stamp {
            atom: AtomId(3),
            seq: SeqNo(9),
        });
        assert_eq!(m.stamp_of(AtomId(3)), Some(SeqNo(9)));
        assert_eq!(m.stamp_of(AtomId(4)), None);
    }

    #[test]
    fn overhead_grows_with_stamps() {
        let mut m = Message::new(MessageId(1), NodeId(0), GroupId(0), Bytes::new());
        assert_eq!(m.ordering_overhead_bytes(), 8);
        m.stamps.push(Stamp {
            atom: AtomId(0),
            seq: SeqNo(1),
        });
        assert_eq!(m.ordering_overhead_bytes(), 20);
    }

    #[test]
    fn stampvec_spills_past_inline_capacity() {
        let mut v = StampVec::new();
        for i in 0..(STAMP_INLINE as u64 + 3) {
            v.push(Stamp {
                atom: AtomId(u32::try_from(i).unwrap()),
                seq: SeqNo(i + 1),
            });
            assert_eq!(v.len(), i as usize + 1);
            assert_eq!(v[i as usize].seq, SeqNo(i + 1));
        }
        // Order preserved across the inline→heap spill.
        for (i, s) in v.iter().enumerate() {
            assert_eq!(s.atom, AtomId(u32::try_from(i).unwrap()));
        }
        let round: StampVec = v.iter().copied().collect();
        assert_eq!(round, v);
        let via_vec: StampVec = v.to_vec().into();
        assert_eq!(via_vec, v);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn display_formats() {
        let m = Message::new(MessageId(4), NodeId(2), GroupId(1), Bytes::new());
        assert_eq!(m.to_string(), "m4 from N2 to G1 (G0, 0 stamps)");
    }
}
