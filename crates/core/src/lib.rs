//! The decentralized message-ordering protocol for publish/subscribe
//! systems (Lumezanu, Spring, Bhattacharjee — Middleware 2006).
//!
//! Messages addressed to a group traverse that group's *sequencing path* —
//! a chain of sequencing atoms (see [`seqnet_overlap`]) — collecting:
//!
//! * a **group-local sequence number** from the group's ingress atom, and
//! * one **overlap sequence number** from every atom instantiated for a
//!   double overlap involving the group.
//!
//! Receivers deliver messages using only these numbers
//! ([`DeliveryQueue`]): a message is deliverable exactly when its
//! group-local number and all *relevant* overlap numbers are the next
//! expected ones, which makes the deliver-or-buffer decision immediate and
//! deterministic (paper §3.1/§3.3) and yields the same delivery order at
//! every member of a group (Theorem 1). When publishers subscribe to the
//! groups they publish to, the order is causal.
//!
//! The crate offers two ways to run the protocol:
//!
//! * [`OrderedPubSub`] — a deterministic discrete-event simulation of the
//!   full system (ingress → sequencing → distribution), either with uniform
//!   logical delays or on a generated router topology
//!   ([`OrderedPubSub::with_network`]); this is the paper's evaluation
//!   vehicle.
//! * The sans-I/O protocol core ([`proto`]) — pure event-in/command-out
//!   state machines ([`proto::NodeCore`], [`proto::ReceiverCore`], built on
//!   [`ProtocolState`] and [`DeliveryQueue`]) that both the simulator above
//!   and `seqnet-runtime`'s real FIFO channels drive, so one implementation
//!   of the ordering logic serves every deployment.
//!
//! # Quickstart
//!
//! ```
//! use seqnet_membership::{Membership, NodeId, GroupId};
//! use seqnet_core::OrderedPubSub;
//!
//! let m = Membership::from_groups([
//!     (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
//!     (GroupId(1), vec![NodeId(1), NodeId(2)]),
//! ]);
//! let mut bus = OrderedPubSub::new(&m);
//! bus.publish(NodeId(0), GroupId(0), b"to g0".to_vec())?;
//! bus.publish(NodeId(1), GroupId(1), b"to g1".to_vec())?;
//! bus.run_to_quiescence();
//! // Nodes 1 and 2 subscribe to both groups: they deliver both messages in
//! // the same order.
//! let order1: Vec<_> = bus.delivered(NodeId(1)).iter().map(|d| d.id).collect();
//! let order2: Vec<_> = bus.delivered(NodeId(2)).iter().map(|d| d.id).collect();
//! assert_eq!(order1, order2);
//! # Ok::<(), seqnet_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod dynamic;
mod engine;
mod error;
mod message;
pub mod metrics;
pub mod proto;
pub mod traffic;

pub use delay::{DelayModel, DelayTable, Endpoint};
pub use dynamic::DynamicOrderedPubSub;
pub use engine::{DeliveryRecord, FaultStats, NetworkConfig, NetworkSetup, OrderedPubSub};
pub use error::CoreError;
pub use message::{Message, MessageId, SeqNo, Stamp, StampVec, STAMP_INLINE};
pub use proto::{DeliveryQueue, NextHop, ProtocolState};
