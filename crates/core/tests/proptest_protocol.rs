//! Property-based tests of the protocol state machines in isolation.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seqnet_core::{DeliveryQueue, Message, MessageId, ProtocolState, SeqNo};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::GraphBuilder;

fn membership_strategy() -> impl Strategy<Value = Membership> {
    (3usize..=10, 1usize..=5).prop_flat_map(|(nodes, groups)| {
        vec(vec(0u32..nodes as u32, 2..=6), groups).prop_map(move |gm| {
            let mut m = Membership::new();
            for (gi, members) in gm.iter().enumerate() {
                for &n in members {
                    m.subscribe(NodeId(n), GroupId(gi as u32));
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequencing invariants: group-local numbers are consecutive per
    /// group; each atom's numbers are consecutive across its two groups;
    /// a message collects exactly its group's stampers.
    #[test]
    fn sequencing_invariants(
        m in membership_strategy(),
        sends in vec((0usize..32, 0usize..32), 1..60),
    ) {
        let graph = GraphBuilder::new().build(&m);
        let mut state = ProtocolState::new(&graph);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();

        let mut per_group_last: std::collections::BTreeMap<GroupId, u64> = Default::default();
        let mut per_atom_last: std::collections::BTreeMap<_, u64> = Default::default();
        for (i, (s, g)) in sends.iter().enumerate() {
            let group = groups[g % groups.len()];
            let sender = nodes[s % nodes.len()];
            let mut msg = Message::new(MessageId(i as u64), sender, group, vec![]);
            state.sequence_fully(&graph, &mut msg);

            let expected_group = per_group_last.entry(group).or_insert(0);
            *expected_group += 1;
            prop_assert_eq!(msg.group_seq, SeqNo(*expected_group));

            let stampers = graph.stampers(group);
            prop_assert_eq!(msg.stamps.len(), stampers.len());
            for stamp in &msg.stamps {
                prop_assert!(stampers.contains(&stamp.atom));
                let last = per_atom_last.entry(stamp.atom).or_insert(0);
                *last += 1;
                prop_assert_eq!(stamp.seq, SeqNo(*last), "atom numbers must be consecutive");
            }
        }
    }

    /// Delivery safety for a single receiver under arbitrary arrival
    /// permutations: no duplicates, per-group FIFO by group-local number,
    /// and relevant-atom numbers nondecreasing in delivery order.
    #[test]
    fn delivery_safety_under_permutation(
        m in membership_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = GraphBuilder::new().build(&m);
        let mut state = ProtocolState::new(&graph);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();

        let mut msgs = Vec::new();
        for i in 0..24u64 {
            let group = groups[(i as usize) % groups.len()];
            let sender = nodes[(i as usize) % nodes.len()];
            let mut msg = Message::new(MessageId(i), sender, group, vec![]);
            state.sequence_fully(&graph, &mut msg);
            msgs.push(msg);
        }

        let receiver = nodes
            .iter()
            .copied()
            .max_by_key(|n| m.groups_of(*n).count())
            .expect("nodes exist");
        let mut mine: Vec<Message> = msgs
            .into_iter()
            .filter(|msg| m.is_member(receiver, msg.group))
            .collect();
        let relevant: std::collections::BTreeSet<_> =
            graph.relevant_atoms(receiver).into_iter().collect();

        mine.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut q = DeliveryQueue::new(receiver, &m, &graph);
        let mut delivered = Vec::new();
        for msg in mine.clone() {
            delivered.extend(q.offer(msg));
        }
        prop_assert_eq!(delivered.len(), mine.len(), "liveness: everything delivered");
        prop_assert_eq!(q.pending(), 0);

        // No duplicates.
        let mut ids: Vec<MessageId> = delivered.iter().map(|d| d.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), delivered.len());

        // Per-group FIFO and relevant-atom monotonicity.
        let mut last_group: std::collections::BTreeMap<GroupId, SeqNo> = Default::default();
        let mut last_atom: std::collections::BTreeMap<_, SeqNo> = Default::default();
        for d in &delivered {
            if let Some(&prev) = last_group.get(&d.group) {
                prop_assert!(d.group_seq > prev, "group order violated");
            }
            last_group.insert(d.group, d.group_seq);
            for s in &d.stamps {
                if relevant.contains(&s.atom) {
                    if let Some(&prev) = last_atom.get(&s.atom) {
                        prop_assert!(s.seq > prev, "relevant atom order violated");
                    }
                    last_atom.insert(s.atom, s.seq);
                }
            }
        }
    }

    /// Protocol adoption across a no-op reconfiguration preserves all
    /// counters.
    #[test]
    fn adopt_preserves_counters(m in membership_strategy()) {
        let graph = GraphBuilder::new().build(&m);
        let mut state = ProtocolState::new(&graph);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();
        for i in 0..10u64 {
            let mut msg = Message::new(
                MessageId(i),
                nodes[i as usize % nodes.len()],
                groups[i as usize % groups.len()],
                vec![],
            );
            state.sequence_fully(&graph, &mut msg);
        }
        let before: Vec<SeqNo> = groups.iter().map(|&g| state.group_counter(g)).collect();
        state.adopt(&graph);
        let after: Vec<SeqNo> = groups.iter().map(|&g| state.group_counter(g)).collect();
        prop_assert_eq!(before, after);
    }
}
