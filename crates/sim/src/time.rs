//! Virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in integer microseconds.
///
/// `SimTime` doubles as a duration: `t + d` advances a time by a span and
/// `t2 - t1` measures one. Using integers keeps event ordering exact.
///
/// # Example
///
/// ```
/// use seqnet_sim::SimTime;
/// let t = SimTime::ZERO + SimTime::from_ms(1.5);
/// assert_eq!(t.as_micros(), 1_500);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from (possibly fractional) milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "time must be finite and non-negative: {ms}"
        );
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// The time in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (subtracting a later time from an earlier one).
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(2.5).as_micros(), 2_500);
        assert_eq!(SimTime::from_micros(1_000).as_ms(), 1.0);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(3);
        assert_eq!(a + b, SimTime::from_micros(13));
        assert_eq!(a - b, SimTime::from_micros(7));
        assert!(b < a);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn sum_works() {
        let t: SimTime = (1..=3).map(SimTime::from_micros).sum();
        assert_eq!(t, SimTime::from_micros(6));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(0.25).to_string(), "0.250ms");
    }
}
