//! FIFO channel arrival-time stamping.

use crate::SimTime;
use std::collections::HashMap;
use std::hash::Hash;

/// Computes arrival times that preserve per-channel FIFO order.
///
/// The protocol assumes "a FIFO channel between any two sequencers" (paper
/// §3.1). With constant per-link delay FIFO order is automatic, but when a
/// channel's delay varies (e.g. modeling jitter or retransmission), a later
/// send could arrive earlier. `FifoStamper` clamps each arrival to be no
/// earlier than the previous arrival on the same channel; the simulator's
/// schedule-order tie-break then preserves send order for equal times.
///
/// The channel key `K` is chosen by the caller — typically a
/// `(source, destination)` pair.
///
/// # Example
///
/// ```
/// use seqnet_sim::{FifoStamper, SimTime};
/// let mut fifo = FifoStamper::new();
/// let ch = ("a", "b");
/// let t1 = fifo.arrival(ch, SimTime::from_micros(0), SimTime::from_micros(100));
/// // Second message sent later but with a much smaller delay still arrives
/// // no earlier than the first.
/// let t2 = fifo.arrival(ch, SimTime::from_micros(10), SimTime::from_micros(5));
/// assert_eq!(t1, SimTime::from_micros(100));
/// assert_eq!(t2, SimTime::from_micros(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoStamper<K: Eq + Hash> {
    last_arrival: HashMap<K, SimTime>,
}

impl<K: Eq + Hash> FifoStamper<K> {
    /// Creates a stamper with no channel history.
    pub fn new() -> Self {
        FifoStamper {
            last_arrival: HashMap::new(),
        }
    }

    /// Returns the arrival time for a message sent at `now` over a channel
    /// with propagation delay `delay`, clamped to preserve FIFO order, and
    /// records it as the channel's latest arrival.
    pub fn arrival(&mut self, channel: K, now: SimTime, delay: SimTime) -> SimTime {
        let natural = now + delay;
        let entry = self.last_arrival.entry(channel).or_insert(SimTime::ZERO);
        let arrival = natural.max(*entry);
        *entry = arrival;
        arrival
    }

    /// Forgets all history (e.g. between independent experiment runs).
    pub fn clear(&mut self) {
        self.last_arrival.clear();
    }

    /// Number of channels with recorded history.
    pub fn channels(&self) -> usize {
        self.last_arrival.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_under_jitter() {
        let mut f = FifoStamper::new();
        let a1 = f.arrival(0u8, SimTime::from_micros(0), SimTime::from_micros(50));
        let a2 = f.arrival(0u8, SimTime::from_micros(1), SimTime::from_micros(10));
        let a3 = f.arrival(0u8, SimTime::from_micros(2), SimTime::from_micros(200));
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a2, a1, "clamped to previous arrival");
        assert_eq!(a3, SimTime::from_micros(202), "unclamped when naturally later");
    }

    #[test]
    fn channels_are_independent() {
        let mut f = FifoStamper::new();
        let slow = f.arrival("s", SimTime::ZERO, SimTime::from_micros(100));
        let fast = f.arrival("f", SimTime::ZERO, SimTime::from_micros(1));
        assert!(fast < slow, "different channels do not constrain each other");
        assert_eq!(f.channels(), 2);
    }

    #[test]
    fn clear_resets_history() {
        let mut f = FifoStamper::new();
        let _ = f.arrival(0u8, SimTime::ZERO, SimTime::from_micros(100));
        f.clear();
        let a = f.arrival(0u8, SimTime::ZERO, SimTime::from_micros(1));
        assert_eq!(a, SimTime::from_micros(1));
    }
}
