//! Replayable schedule traces.
//!
//! A [`ScheduleTrace`] is the portable description of one explored
//! schedule: the seed that parameterized the run plus the ordered list of
//! scheduling decisions taken (each an index into the deterministic,
//! sorted enabled-transition list at that step). `seqnet-check` emits one
//! for every counterexample it finds; anything that can rebuild the same
//! initial state — the checker itself, a CI job re-running an uploaded
//! artifact, or a developer at a shell — re-executes the identical run
//! from it, because every consumer enumerates transitions in the same
//! deterministic order.
//!
//! The rendered form is a single line, `seed=<n> decisions=[a,b,c]`, so
//! traces survive copy-paste through logs, CI artifacts, and commit
//! messages without escaping concerns.

use std::fmt;
use std::str::FromStr;

/// One replayable schedule: a seed plus the decision indices taken.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleTrace {
    /// The seed that parameterized the run (scenario randomization and/or
    /// the random-walk generator). Zero for purely exhaustive runs.
    pub seed: u64,
    /// Indices into the sorted enabled-transition list, one per step.
    pub decisions: Vec<u32>,
}

impl ScheduleTrace {
    /// A trace with no decisions yet.
    pub fn new(seed: u64) -> Self {
        ScheduleTrace {
            seed,
            decisions: Vec::new(),
        }
    }

    /// Number of scheduling decisions recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The canonical single-line rendering, `seed=<n> decisions=[a,b,c]`.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses the canonical rendering produced by [`ScheduleTrace::render`].
    /// Returns `None` on any deviation from that format.
    pub fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

impl fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} decisions=[", self.seed)?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Error parsing a [`ScheduleTrace`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseTraceError;

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected `seed=<n> decisions=[a,b,c]`")
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for ScheduleTrace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let rest = s.strip_prefix("seed=").ok_or(ParseTraceError)?;
        let (seed_str, rest) = rest.split_once(' ').ok_or(ParseTraceError)?;
        let seed = seed_str.parse::<u64>().map_err(|_| ParseTraceError)?;
        let list = rest
            .strip_prefix("decisions=[")
            .and_then(|r| r.strip_suffix(']'))
            .ok_or(ParseTraceError)?;
        let mut decisions = Vec::new();
        if !list.is_empty() {
            for part in list.split(',') {
                decisions.push(part.trim().parse::<u32>().map_err(|_| ParseTraceError)?);
            }
        }
        Ok(ScheduleTrace { seed, decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let t = ScheduleTrace {
            seed: 42,
            decisions: vec![0, 3, 1, 7],
        };
        assert_eq!(t.render(), "seed=42 decisions=[0,3,1,7]");
        assert_eq!(ScheduleTrace::parse(&t.render()), Some(t));
    }

    #[test]
    fn empty_decisions_round_trip() {
        let t = ScheduleTrace::new(7);
        assert!(t.is_empty());
        assert_eq!(t.render(), "seed=7 decisions=[]");
        assert_eq!(ScheduleTrace::parse(&t.render()), Some(t));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "seed=x decisions=[]",
            "seed=1",
            "seed=1 decisions=[1,]",
            "seed=1 decisions=1,2",
            "decisions=[1] seed=1",
        ] {
            assert_eq!(ScheduleTrace::parse(bad), None, "accepted {bad:?}");
        }
        // Whitespace inside the list is tolerated (hand-edited traces).
        assert_eq!(
            ScheduleTrace::parse("seed=1 decisions=[1, 2]"),
            Some(ScheduleTrace {
                seed: 1,
                decisions: vec![1, 2]
            })
        );
    }
}
