//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] describes *when* and *where* the environment misbehaves:
//! sequencing-node crash–restart windows, link partitions between pairs of
//! nodes, and burst-loss windows that stretch every transmission. The plan
//! is pure data plus pure queries — executing it is the consumer's job:
//!
//! * the discrete-event engine (`seqnet-core`) turns plan windows into
//!   simulator events, so faulty runs stay byte-for-byte reproducible;
//! * the threaded runtime (`seqnet-runtime`) replays the same plan against
//!   real threads, killing and restarting sequencing-node threads on the
//!   plan's schedule (partitions and loss windows are simulator-only — the
//!   runtime injects loss probabilistically instead).
//!
//! Node indices are plan-local: consumers map them onto whatever entity
//! they crash (sequencing atoms in the simulator, sequencing-node threads
//! in the runtime). Indices outside the consumer's range are ignored.
//!
//! # Example
//!
//! ```
//! use seqnet_sim::{FaultPlan, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .crash(0, SimTime::from_ms(5.0), SimTime::from_ms(20.0))
//!     .partition(1, 2, SimTime::from_ms(10.0), SimTime::from_ms(15.0));
//! assert!(plan.is_down(0, SimTime::from_ms(7.0)));
//! assert!(!plan.is_down(0, SimTime::from_ms(20.0)), "up again at the boundary");
//! assert!(plan.is_cut(2, 1, SimTime::from_ms(12.0)), "partitions are symmetric");
//! ```

use crate::SimTime;

/// One crash–restart window: the node is dead in `[down_at, up_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The (consumer-mapped) node that crashes.
    pub node: usize,
    /// When the node dies.
    pub down_at: SimTime,
    /// When the node restarts (exclusive end of the outage).
    pub up_at: SimTime,
}

/// One link partition: traffic between `a` and `b` (either direction) is
/// cut in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Start of the cut.
    pub from: SimTime,
    /// End of the cut (exclusive).
    pub until: SimTime,
}

/// One burst-loss window: every transmission started in `[from, until)`
/// loses up to `max_retries` copies, each costing one `retransmit_interval`
/// of extra delay before the copy that survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossWindow {
    /// Start of the burst.
    pub from: SimTime,
    /// End of the burst (exclusive).
    pub until: SimTime,
    /// Upper bound on lost copies per transmission.
    pub max_retries: u32,
    /// Delay added per lost copy (the model's retransmission timeout).
    pub retransmit_interval: SimTime,
}

/// A deterministic schedule of crashes, partitions, and loss bursts.
///
/// Construction is by builder calls ([`FaultPlan::crash`],
/// [`FaultPlan::partition`], [`FaultPlan::loss_burst`]) or the seeded
/// generator [`FaultPlan::randomized`]. All queries are pure functions of
/// the plan and the query time, so two runs driven by the same plan make
/// identical fault decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    crashes: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
    loss: Vec<LossWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash–restart window for `node`.
    ///
    /// Every crash has a restart: permanent failures would make liveness
    /// unsatisfiable, and the protocol's recovery story is
    /// snapshot-plus-replay, not reconfiguration around a dead node.
    ///
    /// # Panics
    ///
    /// Panics unless `down_at < up_at`.
    pub fn crash(mut self, node: usize, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "crash window must have positive length");
        self.crashes.push(CrashWindow { node, down_at, up_at });
        self
    }

    /// Adds a symmetric link partition between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn partition(mut self, a: usize, b: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "partition window must have positive length");
        self.partitions.push(PartitionWindow { a, b, from, until });
        self
    }

    /// Adds a burst-loss window stretching every transmission started
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn loss_burst(
        mut self,
        from: SimTime,
        until: SimTime,
        retransmit_interval: SimTime,
        max_retries: u32,
    ) -> Self {
        assert!(from < until, "loss window must have positive length");
        self.loss.push(LossWindow {
            from,
            until,
            max_retries,
            retransmit_interval,
        });
        self
    }

    /// Generates a plan with a few crashes, partitions, and a loss burst,
    /// all drawn deterministically from `seed` over `[0, horizon)` against
    /// `nodes` fault targets. The same `(seed, nodes, horizon)` always
    /// yields the same plan.
    ///
    /// Returns an empty plan when `nodes == 0` or the horizon is too short
    /// to fit a window.
    pub fn randomized(seed: u64, nodes: usize, horizon: SimTime) -> Self {
        let mut plan = FaultPlan::new();
        let span = horizon.as_micros();
        if nodes == 0 || span < 16 {
            return plan;
        }
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut next = move || splitmix64(&mut state);

        // 1–3 crash windows, each at most a quarter of the horizon.
        let n_crashes = 1 + (next() % 3) as usize;
        for _ in 0..n_crashes {
            let node = (next() % nodes as u64) as usize;
            let down = next() % (span * 3 / 4);
            let len = 1 + next() % (span / 4).max(1);
            plan = plan.crash(
                node,
                SimTime::from_micros(down),
                SimTime::from_micros(down + len),
            );
        }

        // 0–2 partitions between distinct nodes (needs at least two).
        if nodes >= 2 {
            let n_parts = (next() % 3) as usize;
            for _ in 0..n_parts {
                let a = (next() % nodes as u64) as usize;
                let mut b = (next() % nodes as u64) as usize;
                if b == a {
                    b = (b + 1) % nodes;
                }
                let from = next() % (span * 3 / 4);
                let len = 1 + next() % (span / 4).max(1);
                plan = plan.partition(
                    a,
                    b,
                    SimTime::from_micros(from),
                    SimTime::from_micros(from + len),
                );
            }
        }

        // 0–1 loss bursts.
        if next() % 2 == 0 {
            let from = next() % (span * 3 / 4);
            let len = 1 + next() % (span / 8).max(1);
            plan = plan.loss_burst(
                SimTime::from_micros(from),
                SimTime::from_micros(from + len),
                SimTime::from_micros((span / 64).max(1)),
                3,
            );
        }
        plan
    }

    /// `true` if `node` is crashed at time `t`.
    pub fn is_down(&self, node: usize, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && w.down_at <= t && t < w.up_at)
    }

    /// The restart time of the outage covering `t`, if `node` is down then.
    pub fn next_up(&self, node: usize, t: SimTime) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|w| w.node == node && w.down_at <= t && t < w.up_at)
            .map(|w| w.up_at)
            .max()
    }

    /// `true` if the (symmetric) link between `a` and `b` is partitioned
    /// at time `t`.
    pub fn is_cut(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.cut_until(a, b, t).is_some()
    }

    /// The healing time of the partition covering `t` on the `a`–`b` link,
    /// if one is active.
    pub fn cut_until(&self, a: usize, b: usize, t: SimTime) -> Option<SimTime> {
        self.partitions
            .iter()
            .filter(|w| {
                ((w.a == a && w.b == b) || (w.a == b && w.b == a))
                    && w.from <= t
                    && t < w.until
            })
            .map(|w| w.until)
            .max()
    }

    /// Extra delay a transmission started at `t` suffers from burst loss.
    /// `tag` disambiguates transmissions (e.g. a message id) so different
    /// messages lose a different — but deterministic — number of copies.
    pub fn loss_penalty(&self, tag: u64, t: SimTime) -> SimTime {
        let mut penalty = SimTime::ZERO;
        for (i, w) in self.loss.iter().enumerate() {
            if w.from <= t && t < w.until && w.max_retries > 0 {
                let mut state = tag
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                let copies = splitmix64(&mut state) % (u64::from(w.max_retries) + 1);
                for _ in 0..copies {
                    penalty = penalty + w.retransmit_interval;
                }
            }
        }
        penalty
    }

    /// The scheduled crash windows.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The scheduled partitions.
    pub fn partition_windows(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// The scheduled loss bursts.
    pub fn loss_windows(&self) -> &[LossWindow] {
        &self.loss
    }

    /// `true` if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.partitions.is_empty() && self.loss.is_empty()
    }

    /// The latest instant at which any scheduled fault is still active.
    pub fn horizon(&self) -> SimTime {
        let crash = self.crashes.iter().map(|w| w.up_at).max();
        let part = self.partitions.iter().map(|w| w.until).max();
        let loss = self.loss.iter().map(|w| w.until).max();
        [crash, part, loss]
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// The splitmix64 step — a tiny, high-quality deterministic generator so
/// plan randomization needs no external RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(t: u64) -> SimTime {
        SimTime::from_micros(t)
    }

    #[test]
    fn crash_windows_are_half_open() {
        let plan = FaultPlan::new().crash(3, us(10), us(20));
        assert!(!plan.is_down(3, us(9)));
        assert!(plan.is_down(3, us(10)));
        assert!(plan.is_down(3, us(19)));
        assert!(!plan.is_down(3, us(20)));
        assert!(!plan.is_down(4, us(15)), "other nodes unaffected");
        assert_eq!(plan.next_up(3, us(15)), Some(us(20)));
        assert_eq!(plan.next_up(3, us(25)), None);
    }

    #[test]
    fn partitions_are_symmetric() {
        let plan = FaultPlan::new().partition(1, 2, us(5), us(9));
        assert!(plan.is_cut(1, 2, us(5)));
        assert!(plan.is_cut(2, 1, us(8)));
        assert!(!plan.is_cut(1, 2, us(9)));
        assert!(!plan.is_cut(1, 3, us(6)));
        assert_eq!(plan.cut_until(2, 1, us(5)), Some(us(9)));
    }

    #[test]
    fn overlapping_outages_report_latest_restart() {
        let plan = FaultPlan::new()
            .crash(0, us(10), us(20))
            .crash(0, us(15), us(30));
        assert_eq!(plan.next_up(0, us(16)), Some(us(30)));
    }

    #[test]
    fn loss_penalty_is_deterministic_and_bounded() {
        let plan = FaultPlan::new().loss_burst(us(0), us(100), us(7), 3);
        for tag in 0..50u64 {
            let p1 = plan.loss_penalty(tag, us(50));
            let p2 = plan.loss_penalty(tag, us(50));
            assert_eq!(p1, p2, "same tag, same penalty");
            assert!(p1.as_micros() <= 21, "at most max_retries * interval");
            assert_eq!(p1.as_micros() % 7, 0, "whole retransmission intervals");
        }
        assert_eq!(
            plan.loss_penalty(1, us(100)),
            SimTime::ZERO,
            "outside the window"
        );
        let tags_with_loss = (0..50u64)
            .filter(|&t| plan.loss_penalty(t, us(50)) > SimTime::ZERO)
            .count();
        assert!(tags_with_loss > 0, "some transmissions actually lose copies");
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let a = FaultPlan::randomized(42, 5, SimTime::from_ms(100.0));
        let b = FaultPlan::randomized(42, 5, SimTime::from_ms(100.0));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "the generator always schedules a crash");
        assert!(!a.crash_windows().is_empty());
        let c = FaultPlan::randomized(43, 5, SimTime::from_ms(100.0));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn randomized_plan_windows_fit_the_horizon() {
        for seed in 0..20u64 {
            let horizon = SimTime::from_ms(50.0);
            let plan = FaultPlan::randomized(seed, 4, horizon);
            for w in plan.crash_windows() {
                assert!(w.node < 4);
                assert!(w.down_at < w.up_at);
                assert!(w.up_at <= horizon, "restart inside the horizon");
            }
            assert!(plan.horizon() <= horizon);
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(FaultPlan::randomized(1, 0, SimTime::from_ms(10.0)).is_empty());
        assert!(FaultPlan::randomized(1, 4, SimTime::from_micros(2)).is_empty());
        assert_eq!(FaultPlan::new().horizon(), SimTime::ZERO);
    }
}
