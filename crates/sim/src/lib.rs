//! A deterministic packet-level discrete-event simulator.
//!
//! The paper evaluates its protocol with a "packet-level discrete event
//! simulator" that "models the propagation delay between routers, but not
//! packet losses or queuing delays" (§4.1). This crate is that vehicle:
//!
//! * [`SimTime`] — virtual time in integer microseconds (exact, totally
//!   ordered, platform-independent).
//! * [`Simulator`] — an event heap plus a user-supplied *world* state.
//!   Events are closures over the world; simultaneous events fire in
//!   schedule order, so runs are bit-for-bit reproducible.
//! * [`FifoStamper`] — computes arrival times that preserve FIFO order per
//!   channel, implementing the paper's "FIFO channel between any two
//!   sequencers" assumption even when per-message delays vary.
//! * [`FaultPlan`] — a deterministic, seedable schedule of sequencing-node
//!   crashes, link partitions, and burst-loss windows, executed as
//!   simulator events by `seqnet-core` and replayed against real threads
//!   by `seqnet-runtime`.
//! * [`ScheduleTrace`] — a replayable schedule (seed + decision list), the
//!   interchange format between the `seqnet-check` model checker and
//!   anything that re-executes one of its counterexamples.
//!
//! # Example
//!
//! ```
//! use seqnet_sim::{Simulator, SimTime};
//!
//! let mut sim = Simulator::new(Vec::<&str>::new());
//! sim.schedule_in(SimTime::from_micros(200), |sim| sim.world_mut().push("late"));
//! sim.schedule_in(SimTime::from_micros(100), |sim| {
//!     sim.world_mut().push("early");
//!     // Events may schedule more events.
//!     sim.schedule_in(SimTime::from_micros(50), |sim| sim.world_mut().push("mid"));
//! });
//! sim.run_to_quiescence();
//! assert_eq!(*sim.world(), vec!["early", "mid", "late"]);
//! assert_eq!(sim.now(), SimTime::from_micros(200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fault;
mod fifo;
mod time;
mod trace;

pub use engine::Simulator;
pub use fault::{CrashWindow, FaultPlan, LossWindow, PartitionWindow};
pub use fifo::FifoStamper;
pub use time::SimTime;
pub use trace::{ParseTraceError, ScheduleTrace};
