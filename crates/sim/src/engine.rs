//! The discrete-event engine.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

type Action<W> = Box<dyn FnOnce(&mut Simulator<W>) + Send>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    /// Max-heap ordering inverted so the heap pops the *earliest* event;
    /// ties broken by schedule order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulator owning a user-defined world state `W`.
///
/// Events are `FnOnce(&mut Simulator<W>)` closures; they may mutate the
/// world and schedule further events. Two events scheduled for the same
/// instant fire in the order they were scheduled, making runs fully
/// deterministic.
///
/// # Example
///
/// ```
/// use seqnet_sim::{Simulator, SimTime};
/// let mut sim = Simulator::new(0u32);
/// sim.schedule_at(SimTime::from_micros(5), |sim| *sim.world_mut() += 1);
/// assert_eq!(sim.run_to_quiescence(), 1);
/// assert_eq!(*sim.world(), 1);
/// ```
pub struct Simulator<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    world: W,
    processed: u64,
}

impl<W: fmt::Debug> fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("world", &self.world)
            .finish()
    }
}

impl<W> Simulator<W> {
    /// Creates a simulator at time zero with the given world.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            world,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Simulator::now`]).
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Simulator<W>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, action: F)
    where
        F: FnOnce(&mut Simulator<W>) + Send + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Executes the next pending event, advancing the clock to it.
    ///
    /// Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event heap yielded a past event");
        self.now = ev.at;
        self.processed += 1;
        (ev.action)(self);
        true
    }

    /// Runs until no events remain. Returns the number of events executed
    /// by this call.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Runs events with `at <= deadline`, then advances the clock to
    /// `deadline` (even if idle). Returns the number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.processed;
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Vec::new());
        sim.schedule_at(SimTime::from_micros(30), |s| s.world_mut().push(3));
        sim.schedule_at(SimTime::from_micros(10), |s| s.world_mut().push(1));
        sim.schedule_at(SimTime::from_micros(20), |s| s.world_mut().push(2));
        sim.run_to_quiescence();
        assert_eq!(*sim.world(), vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut sim = Simulator::new(Vec::new());
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            sim.schedule_at(t, move |s| s.world_mut().push(i));
        }
        sim.run_to_quiescence();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_cascade() {
        let mut sim = Simulator::new(0u64);
        fn tick(sim: &mut Simulator<u64>) {
            *sim.world_mut() += 1;
            if *sim.world() < 10 {
                sim.schedule_in(SimTime::from_micros(1), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        let n = sim.run_to_quiescence();
        assert_eq!(n, 10);
        assert_eq!(sim.now(), SimTime::from_micros(9));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(Vec::new());
        sim.schedule_at(SimTime::from_micros(10), |s| s.world_mut().push(1));
        sim.schedule_at(SimTime::from_micros(30), |s| s.world_mut().push(2));
        let n = sim.run_until(SimTime::from_micros(20));
        assert_eq!(n, 1);
        assert_eq!(*sim.world(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_micros(20), "clock advances to deadline");
        assert_eq!(sim.events_pending(), 1);
        sim.run_to_quiescence();
        assert_eq!(*sim.world(), vec![1, 2]);
    }

    #[test]
    fn run_until_includes_deadline_events() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_at(SimTime::from_micros(10), |s| *s.world_mut() += 1);
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(());
        sim.schedule_at(SimTime::from_micros(10), |s| {
            s.schedule_at(SimTime::from_micros(5), |_| {});
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn counters_track_progress() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimTime::from_micros(1), |_| {});
        sim.schedule_in(SimTime::from_micros(2), |_| {});
        assert_eq!(sim.events_pending(), 2);
        assert_eq!(sim.events_processed(), 0);
        sim.run_to_quiescence();
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut sim = Simulator::new(String::new());
        sim.schedule_at(SimTime::ZERO, |s| s.world_mut().push_str("done"));
        sim.run_to_quiescence();
        assert_eq!(sim.into_world(), "done");
    }
}
