//! Property-based tests of the discrete-event engine: total order of
//! execution, determinism, and FIFO stamping.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_sim::{FifoStamper, SimTime, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always execute in nondecreasing time order, with ties broken
    /// by schedule order.
    #[test]
    fn execution_order_is_total(times in vec(0u64..1_000, 1..100)) {
        let mut sim = Simulator::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), move |s| {
                let now = s.now().as_micros();
                s.world_mut().push((now, i));
            });
        }
        sim.run_to_quiescence();
        let log = sim.world();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie not broken by schedule order");
            }
        }
        // Each event fired at its scheduled time.
        for &(t, i) in log {
            prop_assert_eq!(t, times[i]);
        }
    }

    /// Two identical schedules produce identical execution logs.
    #[test]
    fn runs_are_deterministic(times in vec(0u64..500, 1..60)) {
        let run = || {
            let mut sim = Simulator::new(Vec::<usize>::new());
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_micros(t), move |s| s.world_mut().push(i));
            }
            sim.run_to_quiescence();
            sim.into_world()
        };
        prop_assert_eq!(run(), run());
    }

    /// run_until splits a run without changing the overall execution.
    #[test]
    fn run_until_composes(times in vec(0u64..1_000, 1..60), cut in 0u64..1_000) {
        let full = {
            let mut sim = Simulator::new(Vec::<usize>::new());
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_micros(t), move |s| s.world_mut().push(i));
            }
            sim.run_to_quiescence();
            sim.into_world()
        };
        let split = {
            let mut sim = Simulator::new(Vec::<usize>::new());
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_micros(t), move |s| s.world_mut().push(i));
            }
            sim.run_until(SimTime::from_micros(cut));
            sim.run_to_quiescence();
            sim.into_world()
        };
        prop_assert_eq!(full, split);
    }

    /// FIFO stamping: per channel, arrivals are nondecreasing regardless
    /// of per-message delays, and never earlier than the natural arrival.
    #[test]
    fn fifo_stamper_monotone(
        sends in vec((0u8..4, 0u64..100, 1u64..500), 1..80),
    ) {
        let mut fifo = FifoStamper::new();
        let mut last: std::collections::HashMap<u8, SimTime> = Default::default();
        let mut clock = 0u64;
        for (channel, gap, delay) in sends {
            clock += gap;
            let now = SimTime::from_micros(clock);
            let arrival = fifo.arrival(channel, now, SimTime::from_micros(delay));
            prop_assert!(arrival >= now + SimTime::from_micros(delay) || arrival >= now);
            prop_assert!(arrival >= now, "arrival before send");
            if let Some(&prev) = last.get(&channel) {
                prop_assert!(arrival >= prev, "FIFO violated on channel {}", channel);
            }
            last.insert(channel, arrival);
        }
    }
}
