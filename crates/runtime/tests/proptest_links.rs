//! Property-based tests of the reliable-link layer: arbitrary loss,
//! duplication, and reordering of frames must yield exactly-once FIFO
//! release.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_runtime::{LinkReceiver, LinkSender};
use std::time::Duration;

/// What the adversary does to each transmission attempt.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    prop_oneof![
        3 => Just(Fate::Deliver),
        1 => Just(Fate::Drop),
        1 => Just(Fate::Duplicate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the adversary does, retransmission until acknowledgment
    /// releases every payload exactly once, in send order.
    #[test]
    fn exactly_once_fifo_release(
        n_messages in 1usize..40,
        fates in vec(fate_strategy(), 0..400),
        reorder_window in 1usize..8,
    ) {
        let mut tx = LinkSender::new(Duration::ZERO); // everything always "due"
        let mut rx = LinkReceiver::new();

        // Wire: frames in flight, delivered through a bounded-reorder
        // channel (the adversary picks any frame within the window).
        let mut in_flight: Vec<(u64, usize)> = Vec::new();
        let mut released: Vec<usize> = Vec::new();
        let mut fate_iter = fates.into_iter();

        for payload in 0..n_messages {
            let (seq, p) = tx.send(payload);
            in_flight.push((seq, p));
        }

        // Drive until the sender has nothing unacknowledged. Bounded by a
        // generous round cap so a bug cannot hang the test.
        let mut rounds = 0usize;
        while tx.unacked() > 0 {
            rounds += 1;
            prop_assert!(rounds < 10_000, "link failed to converge");
            // Adversary acts on the head of the (windowed) flight queue.
            if in_flight.is_empty() {
                for (seq, p) in tx.due_for_retransmit() {
                    in_flight.push((seq, p));
                }
                continue;
            }
            let pick = (rounds * 7) % reorder_window.min(in_flight.len());
            let (seq, payload) = in_flight.remove(pick);
            match fate_iter.next().unwrap_or(Fate::Deliver) {
                Fate::Drop => {}
                Fate::Duplicate => {
                    released.extend(rx.receive(seq, payload));
                    tx.acknowledge(seq);
                    released.extend(rx.receive(seq, payload));
                }
                Fate::Deliver => {
                    released.extend(rx.receive(seq, payload));
                    tx.acknowledge(seq);
                }
            }
        }

        prop_assert_eq!(released.len(), n_messages, "exactly once");
        prop_assert_eq!(released, (0..n_messages).collect::<Vec<_>>(), "FIFO order");
        prop_assert_eq!(rx.pending(), 0);
    }

    /// The receiver never releases a payload out of order, no matter how
    /// frames arrive (including sequences it has never seen acked).
    #[test]
    fn release_order_is_always_prefix_ordered(
        arrivals in vec((1u64..30, 0usize..30), 0..120),
    ) {
        let mut rx = LinkReceiver::new();
        let mut released: Vec<u64> = Vec::new();
        for (seq, payload) in arrivals {
            let _ = payload;
            released.extend(rx.receive(seq, seq));
        }
        // Releases are exactly 1, 2, 3, ... up to however far the stream
        // got — a contiguous prefix in order.
        let expect: Vec<u64> = (1..=released.len() as u64).collect();
        prop_assert_eq!(released, expect);
    }
}
