//! Shared proptest strategies for the byte-oriented frame codec
//! (`seqnet_runtime::codec`). Both codec consumers test against this one
//! module — the runtime's frame-level property tests include it directly,
//! and `crates/deploy/tests/wire_codec.rs` pulls it in via `#[path]` so
//! the socket envelope layer fuzzes the exact same frame population.
//!
//! (The file lives under `tests/` and is therefore also compiled as an
//! empty standalone test target; that is harmless and keeps it on the
//! same dependency footing as its includers.)

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_core::proto::{Frame, Peer};
use seqnet_core::{Message, MessageId, SeqNo, Stamp};
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::AtomId;

/// Arbitrary wire peers: publisher, sequencing node, or subscriber host.
pub fn peer_strategy() -> impl Strategy<Value = Peer> {
    prop_oneof![
        1 => Just(Peer::Publisher),
        2 => (0u32..100_000).prop_map(|i| Peer::Node(i as usize)),
        2 => (0u32..100_000).prop_map(|n| Peer::Host(NodeId(n))),
    ]
}

/// Arbitrary protocol frames: stamp counts straddle the `StampVec` inline
/// capacity (so both inline and spilled storage hit the wire), payloads
/// include empty, and `target_atom` covers both tags.
pub fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        (any::<u64>(), 0u32..1_000, 0u32..1_000, any::<u64>(), 0u64..8),
        (
            vec((0u32..256, any::<u64>()), 0..8),
            vec(any::<u8>(), 0..48),
            prop_oneof![
                1 => Just(None),
                2 => (0u32..256).prop_map(Some),
            ],
        ),
    )
        .prop_map(
            |((id, sender, group, group_seq, epoch), (stamps, payload, target))| {
                let mut msg = Message::new(MessageId(id), NodeId(sender), GroupId(group), payload);
                msg.group_seq = SeqNo(group_seq);
                msg.epoch = epoch;
                msg.stamps = stamps
                    .into_iter()
                    .map(|(atom, seq)| Stamp {
                        atom: AtomId(atom),
                        seq: SeqNo(seq),
                    })
                    .collect();
                Frame {
                    msg,
                    target_atom: target.map(AtomId),
                }
            },
        )
}

/// Arbitrary read-chunk sizes for incremental-decode tests (short reads,
/// dribble transports). Consumers cycle through these, clamping to the
/// bytes remaining.
pub fn chunk_strategy() -> impl Strategy<Value = Vec<usize>> {
    vec(1usize..17, 0..64)
}
