//! Property tests of the frame-level byte codec (`seqnet_runtime::codec`)
//! against the strategy module shared with the socket deployment's wire
//! tests: round-trips over arbitrary frame populations, strict-prefix
//! rejection, trailing-byte detection, and garble hardening — the codec
//! must error, never panic, on any input.

mod codec_strategies;

use codec_strategies::{frame_strategy, peer_strategy};
use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_runtime::codec::{put_frame, put_peer, take_frame, CodecError, Reader};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any frame sequence round-trips: `put_frame` then repeated
    /// `take_frame` recovers every frame and consumes every byte.
    #[test]
    fn frames_roundtrip(frames in vec(frame_strategy(), 1..6)) {
        let mut buf = Vec::new();
        for f in &frames {
            put_frame(&mut buf, f);
        }
        let mut rest = buf.as_slice();
        for f in &frames {
            let got = take_frame(&mut rest).map_err(|e| e.to_string())?;
            prop_assert_eq!(&got, f);
        }
        prop_assert!(rest.is_empty());
    }

    /// Every strict prefix of an encoded frame is rejected: the decoder
    /// consumes fields in order and a cut always lands mid-frame.
    #[test]
    fn strict_prefixes_are_rejected(frame in frame_strategy(), cut in 0usize..4_096) {
        let mut buf = Vec::new();
        put_frame(&mut buf, &frame);
        let cut = cut % buf.len();
        let mut rest = &buf[..cut];
        prop_assert!(take_frame(&mut rest).is_err());
    }

    /// The frame layout is prefix-delimited: trailing bytes are left in
    /// the slice for the caller, and `Reader::done` flags them for
    /// envelope layers that require exact consumption.
    #[test]
    fn trailing_bytes_are_left_and_flagged(
        frame in frame_strategy(),
        junk in vec(any::<u8>(), 1..16),
    ) {
        let mut buf = Vec::new();
        put_frame(&mut buf, &frame);
        buf.extend_from_slice(&junk);
        let mut rest = buf.as_slice();
        let got = take_frame(&mut rest).map_err(|e| e.to_string())?;
        prop_assert_eq!(got, frame);
        prop_assert_eq!(rest, junk.as_slice());

        let mut r = Reader::new(&buf);
        r.frame().map_err(|e| e.to_string())?;
        prop_assert_eq!(r.done(), Err(CodecError::Garbled("trailing bytes")));
    }

    /// Arbitrary garbage never panics the frame decoder — it either
    /// parses (and leaves a suffix) or errors.
    #[test]
    fn garbled_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let mut rest = bytes.as_slice();
        for _ in 0..64 {
            if take_frame(&mut rest).is_err() || rest.is_empty() {
                break;
            }
        }
    }

    /// Peers round-trip through their tagged encoding.
    #[test]
    fn peers_roundtrip(peer in peer_strategy()) {
        let mut buf = Vec::new();
        put_peer(&mut buf, peer);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.peer().map_err(|e| e.to_string())?, peer);
        prop_assert_eq!(r.done(), Ok(()));
    }
}
