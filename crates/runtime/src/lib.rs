//! Threaded deployment of the sequencing protocol over FIFO channels.
//!
//! The simulator (`seqnet-core`) assumes the paper's reliable FIFO
//! channels. This crate deploys the same protocol state machines across
//! real threads to demonstrate the full §3.1 design:
//!
//! * every *sequencing node* (a co-location cluster of atoms) runs on its
//!   own thread, processing its atoms' share of the sequencing work;
//! * every subscriber host runs a thread with a
//!   [`seqnet_core::DeliveryQueue`];
//! * inter-thread links implement the paper's **output retransmission
//!   buffers**: frames carry link-level sequence numbers, receivers
//!   acknowledge and reorder, senders retransmit unacknowledged frames —
//!   so the protocol's FIFO-channel assumption holds even over lossy
//!   links ([`ClusterConfig::drop_probability`] injects loss);
//! * sequencing nodes **crash and recover**: [`Cluster::crash_node`] kills
//!   a node thread (volatile state lost), [`Cluster::restart_node`] brings
//!   it back from its latest periodic snapshot plus replay out of upstream
//!   retransmission buffers, and [`Cluster::run_fault_plan`] replays a
//!   deterministic [`FaultPlan`]'s crash windows on the wall clock. Nodes
//!   heartbeat each other for failure detection, and publishes are retried
//!   with capped exponential backoff until durably sequenced.
//!
//! # Example
//!
//! ```
//! use seqnet_membership::{Membership, NodeId, GroupId};
//! use seqnet_runtime::{Cluster, ClusterConfig};
//! use std::time::Duration;
//!
//! let m = Membership::from_groups([
//!     (GroupId(0), vec![NodeId(0), NodeId(1)]),
//!     (GroupId(1), vec![NodeId(0), NodeId(1)]),
//! ]);
//! let mut cluster = Cluster::start(&m, ClusterConfig::default());
//! cluster.publish(NodeId(0), GroupId(0), b"hello".to_vec())?;
//! cluster.publish(NodeId(1), GroupId(1), b"world".to_vec())?;
//! let deliveries = cluster.wait_for_deliveries(4, Duration::from_secs(5))?;
//! assert_eq!(deliveries[&NodeId(0)].len(), 2);
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod codec;
mod link;

pub use cluster::{Cluster, ClusterConfig, RuntimeError, RuntimeStats};
pub use codec::CodecError;
pub use link::{LinkReceiver, LinkSender};
pub use seqnet_sim::FaultPlan;
