//! Reliable FIFO links over lossy transports.
//!
//! Implements the per-link halves of the paper's §3.1 sequencer state:
//! "an output retransmission buffer for each subsequent sequencer" and "a
//! buffer to store received messages from previous sequencers". Frames
//! carry link-level sequence numbers; the receiver acknowledges every frame
//! and releases payloads strictly in order (reordering and deduplicating),
//! while the sender retransmits frames that stay unacknowledged past a
//! timeout. Together the two halves turn a lossy, order-preserving-or-not
//! transport into the reliable FIFO channel the protocol assumes.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Sender half of a reliable FIFO link: assigns link sequence numbers and
/// keeps unacknowledged frames for retransmission.
///
/// # Example
///
/// ```
/// use seqnet_runtime::{LinkSender, LinkReceiver};
/// use std::time::Duration;
///
/// let mut tx = LinkSender::<&str>::new(Duration::from_millis(5));
/// let mut rx = LinkReceiver::<&str>::new();
/// let (seq1, _) = tx.send("a");
/// let (seq2, payload2) = tx.send("b");
/// // "a" is lost in transit; "b" arrives first and is buffered.
/// assert!(rx.receive(seq2, payload2).is_empty());
/// // The retransmitted "a" releases both, in order.
/// let out = rx.receive(seq1, "a");
/// assert_eq!(out, vec!["a", "b"]);
/// tx.acknowledge(seq1);
/// tx.acknowledge(seq2);
/// assert_eq!(tx.unacked(), 0);
/// ```
#[derive(Debug)]
pub struct LinkSender<T> {
    next_seq: u64,
    unacked: BTreeMap<u64, (T, Instant)>,
    timeout: Duration,
    retransmissions: u64,
}

impl<T: Clone> LinkSender<T> {
    /// Creates a sender with the given retransmission timeout.
    pub fn new(timeout: Duration) -> Self {
        LinkSender {
            next_seq: 1,
            unacked: BTreeMap::new(),
            timeout,
            retransmissions: 0,
        }
    }

    /// Registers a fresh payload for transmission; returns its link
    /// sequence number and a clone to put on the wire.
    pub fn send(&mut self, payload: T) -> (u64, T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.insert(seq, (payload.clone(), Instant::now()));
        (seq, payload)
    }

    /// Processes an acknowledgment: drops the frame from the buffer.
    /// Duplicate acks are ignored.
    pub fn acknowledge(&mut self, seq: u64) {
        self.unacked.remove(&seq);
    }

    /// Returns the frames due for retransmission (unacknowledged longer
    /// than the timeout), resetting their timers.
    pub fn due_for_retransmit(&mut self) -> Vec<(u64, T)> {
        let now = Instant::now();
        let mut due = Vec::new();
        for (&seq, (payload, sent_at)) in self.unacked.iter_mut() {
            if now.duration_since(*sent_at) >= self.timeout {
                *sent_at = now;
                due.push((seq, payload.clone()));
            }
        }
        self.retransmissions += due.len() as u64;
        due
    }

    /// Number of frames awaiting acknowledgment.
    pub fn unacked(&self) -> usize {
        self.unacked.len()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// Receiver half of a reliable FIFO link: reorders by link sequence number,
/// releases payloads strictly in order, and drops duplicates.
#[derive(Debug)]
pub struct LinkReceiver<T> {
    next_expected: u64,
    buffer: BTreeMap<u64, T>,
    duplicates: u64,
}

impl<T> Default for LinkReceiver<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkReceiver<T> {
    /// Creates a receiver expecting sequence number 1.
    pub fn new() -> Self {
        LinkReceiver {
            next_expected: 1,
            buffer: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Accepts a frame; returns the payloads that become releasable, in
    /// FIFO order. Duplicates (already released or already buffered) are
    /// counted and dropped; the caller should still acknowledge them so
    /// the sender stops retransmitting.
    pub fn receive(&mut self, seq: u64, payload: T) -> Vec<T> {
        if seq < self.next_expected || self.buffer.contains_key(&seq) {
            self.duplicates += 1;
            return Vec::new();
        }
        self.buffer.insert(seq, payload);
        let mut out = Vec::new();
        while let Some(payload) = self.buffer.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(payload);
        }
        out
    }

    /// Frames buffered waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Duplicate frames observed (a proxy for retransmission pressure).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.receive(1, "a"), vec!["a"]);
        assert_eq!(rx.receive(2, "b"), vec!["b"]);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn reordering_is_fixed() {
        let mut rx = LinkReceiver::new();
        assert!(rx.receive(3, "c").is_empty());
        assert!(rx.receive(2, "b").is_empty());
        assert_eq!(rx.pending(), 2);
        assert_eq!(rx.receive(1, "a"), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicates_dropped_and_counted() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.receive(1, "a"), vec!["a"]);
        assert!(rx.receive(1, "a").is_empty(), "already released");
        assert!(rx.receive(3, "c").is_empty());
        assert!(rx.receive(3, "c").is_empty(), "already buffered");
        assert_eq!(rx.duplicates(), 2);
    }

    #[test]
    fn sender_retransmits_after_timeout() {
        let mut tx = LinkSender::new(Duration::from_millis(1));
        let (s1, _) = tx.send("x");
        assert_eq!(tx.unacked(), 1);
        assert!(tx.due_for_retransmit().is_empty() || {
            // Extremely slow machines may already hit the 1 ms timeout;
            // both outcomes are legal here.
            true
        });
        std::thread::sleep(Duration::from_millis(2));
        let due = tx.due_for_retransmit();
        assert_eq!(due, vec![(s1, "x")]);
        assert_eq!(tx.retransmissions(), 1);
        tx.acknowledge(s1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(tx.due_for_retransmit().is_empty(), "acked frames stay quiet");
    }

    #[test]
    fn ack_unknown_seq_is_noop() {
        let mut tx = LinkSender::<&str>::new(Duration::from_millis(1));
        tx.acknowledge(42);
        assert_eq!(tx.unacked(), 0);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut tx = LinkSender::new(Duration::from_secs(1));
        let seqs: Vec<u64> = (0..5).map(|i| tx.send(i).0).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }
}
