//! Reliable FIFO links over lossy transports.
//!
//! Implements the per-link halves of the paper's §3.1 sequencer state:
//! "an output retransmission buffer for each subsequent sequencer" and "a
//! buffer to store received messages from previous sequencers". Frames
//! carry link-level sequence numbers; the receiver acknowledges every frame
//! and releases payloads strictly in order (reordering and deduplicating),
//! while the sender retransmits frames that stay unacknowledged past a
//! timeout, doubling the per-frame retry interval up to a cap so long
//! outages do not turn into retransmit storms. Together the two halves turn
//! a lossy, order-preserving-or-not transport into the reliable FIFO
//! channel the protocol assumes.
//!
//! The sender's retransmission buffer doubles as the recovery log for a
//! crashed peer: [`LinkSender::snapshot`] / [`LinkSender::resume`] and
//! [`LinkReceiver::resume`] let a node checkpoint both halves of every
//! link and rebuild them after a restart, while
//! [`LinkSender::acknowledge_through`] lets the recovering side confirm a
//! whole prefix with a single cumulative ack.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-frame retransmission state: the payload plus its backoff schedule.
#[derive(Debug, Clone)]
struct Pending<T> {
    payload: T,
    /// Earliest instant at which the frame may be retransmitted.
    next_due: Instant,
    /// Current backoff interval; doubles on every retransmission up to
    /// the sender's cap.
    interval: Duration,
    /// Held frames are registered (they own a sequence number and appear
    /// in snapshots) but are exempt from retransmission until released.
    held: bool,
}

/// Sender half of a reliable FIFO link: assigns link sequence numbers and
/// keeps unacknowledged frames for retransmission with capped exponential
/// backoff.
///
/// # Example
///
/// ```
/// use seqnet_runtime::{LinkSender, LinkReceiver};
/// use std::time::Duration;
///
/// let mut tx = LinkSender::<&str>::new(Duration::from_millis(5));
/// let mut rx = LinkReceiver::<&str>::new();
/// let (seq1, _) = tx.send("a");
/// let (seq2, payload2) = tx.send("b");
/// // "a" is lost in transit; "b" arrives first and is buffered.
/// assert!(rx.receive(seq2, payload2).is_empty());
/// // The retransmitted "a" releases both, in order.
/// let out = rx.receive(seq1, "a");
/// assert_eq!(out, vec!["a", "b"]);
/// // One cumulative ack clears the whole prefix.
/// tx.acknowledge_through(seq2);
/// assert_eq!(tx.unacked(), 0);
/// ```
#[derive(Debug)]
pub struct LinkSender<T> {
    next_seq: u64,
    unacked: BTreeMap<u64, Pending<T>>,
    /// Initial retransmission timeout (backoff starting interval).
    timeout: Duration,
    /// Upper bound on the per-frame backoff interval.
    cap: Duration,
    retransmissions: u64,
    /// Highest connection epoch for which a reconnect replay burst has
    /// been issued (0 = never). Guards against duplicate bursts when a
    /// transport flaps faster than acks come back.
    last_replay_epoch: u64,
}

impl<T: Clone> LinkSender<T> {
    /// Creates a sender with a fixed retransmission interval (the backoff
    /// cap equals the timeout, so the interval never grows).
    pub fn new(timeout: Duration) -> Self {
        Self::with_backoff(timeout, timeout)
    }

    /// Creates a sender whose per-frame retransmission interval starts at
    /// `timeout` and doubles after every retransmission, capped at `cap`.
    /// A `cap` below `timeout` is clamped up to `timeout`.
    pub fn with_backoff(timeout: Duration, cap: Duration) -> Self {
        LinkSender {
            next_seq: 1,
            unacked: BTreeMap::new(),
            timeout,
            cap: cap.max(timeout),
            retransmissions: 0,
            last_replay_epoch: 0,
        }
    }

    /// Rebuilds a sender from snapshot state: the next fresh sequence
    /// number and the frames that were unacknowledged at snapshot time.
    /// Restored frames are immediately due for retransmission, since the
    /// peer may never have received them.
    pub fn resume(timeout: Duration, cap: Duration, next_seq: u64, frames: Vec<(u64, T)>) -> Self {
        let now = Instant::now();
        let mut sender = Self::with_backoff(timeout, cap);
        sender.next_seq = next_seq.max(1);
        for (seq, payload) in frames {
            sender.unacked.insert(
                seq,
                Pending {
                    payload,
                    next_due: now,
                    interval: sender.timeout,
                    held: false,
                },
            );
        }
        sender
    }

    /// Registers a fresh payload for transmission; returns its link
    /// sequence number and a clone to put on the wire.
    pub fn send(&mut self, payload: T) -> (u64, T) {
        self.send_inner(payload, Instant::now(), false)
    }

    /// Registers a payload but *holds* it: the frame owns a sequence
    /// number and appears in [`snapshot`](Self::snapshot), yet is exempt
    /// from retransmission until [`release_held`](Self::release_held).
    /// Used to keep output frames from escaping a node before the
    /// snapshot that contains them is taken.
    pub fn send_held(&mut self, payload: T) -> (u64, T) {
        self.send_inner(payload, Instant::now(), true)
    }

    fn send_inner(&mut self, payload: T, now: Instant, held: bool) -> (u64, T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.insert(
            seq,
            Pending {
                payload: payload.clone(),
                next_due: now + self.timeout,
                interval: self.timeout,
                held,
            },
        );
        (seq, payload)
    }

    /// Releases all held frames into the normal retransmission schedule,
    /// restarting their timers from now.
    pub fn release_held(&mut self) {
        let now = Instant::now();
        for pending in self.unacked.values_mut() {
            if pending.held {
                pending.held = false;
                pending.interval = self.timeout;
                pending.next_due = now + self.timeout;
            }
        }
    }

    /// [`release_held`](Self::release_held) with frame coalescing: the
    /// released frames come back grouped into maximal runs of consecutive
    /// sequence numbers, each run `(first_seq, payloads)` meant to go on
    /// the wire as **one** write instead of one per frame. Under the
    /// group-commit discipline every data frame between two flushes is
    /// held, so in practice a flush yields a single run per link.
    ///
    /// Coalescing changes transport framing only: each frame keeps its
    /// own sequence number, retransmission entry, and backoff schedule
    /// (retransmissions go out individually), and cumulative
    /// [`acknowledge_through`](Self::acknowledge_through) covers a run
    /// exactly as it covers singles.
    pub fn release_held_coalesced(&mut self) -> Vec<(u64, Vec<T>)> {
        let mut runs = Vec::new();
        self.release_held_coalesced_into(&mut runs);
        runs
    }

    /// [`release_held_coalesced`](Self::release_held_coalesced) against a
    /// caller-owned buffer (the PR 5 `CommandBuf` discipline extended to
    /// the link layer): appends the runs to `runs`, reusing its capacity
    /// across flushes. Only the per-run payload vectors — which leave by
    /// value as wire writes — are freshly allocated.
    pub fn release_held_coalesced_into(&mut self, runs: &mut Vec<(u64, Vec<T>)>) {
        let now = Instant::now();
        let mut prev_seq: Option<u64> = None;
        for (&seq, pending) in self.unacked.iter_mut() {
            if !pending.held {
                continue;
            }
            pending.held = false;
            pending.interval = self.timeout;
            pending.next_due = now + self.timeout;
            match (prev_seq, runs.last_mut()) {
                (Some(prev), Some((_, run))) if seq == prev + 1 => {
                    run.push(pending.payload.clone());
                }
                _ => runs.push((seq, vec![pending.payload.clone()])),
            }
            prev_seq = Some(seq);
        }
    }

    /// [`release_held_coalesced`](Self::release_held_coalesced) split by
    /// wire shape: runs of length one are appended to `singles` as bare
    /// `(seq, payload)` pairs, longer runs to `runs`. Both buffers are
    /// caller-owned and emitted in sequence order within themselves.
    ///
    /// This is the transmit-side fast path. At low offered load nearly
    /// every flush releases exactly one frame per link, and boxing that
    /// frame in a one-element vector would make the allocator part of
    /// the per-message steady state; multi-frame runs pay one vector
    /// each, amortized across their frames.
    pub fn release_held_wire(
        &mut self,
        singles: &mut Vec<(u64, T)>,
        runs: &mut Vec<(u64, Vec<T>)>,
    ) {
        let now = Instant::now();
        let mut pending_single: Option<(u64, T)> = None;
        let mut cur_run: Option<(u64, Vec<T>)> = None;
        let mut prev_seq: Option<u64> = None;
        for (&seq, pending) in self.unacked.iter_mut() {
            if !pending.held {
                continue;
            }
            pending.held = false;
            pending.interval = self.timeout;
            pending.next_due = now + self.timeout;
            let payload = pending.payload.clone();
            if prev_seq == Some(seq.wrapping_sub(1)) {
                // Continues the current run: a buffered single upgrades
                // to a materialized run, an existing run extends.
                if let Some((first, single)) = pending_single.take() {
                    let mut v = Vec::with_capacity(4);
                    v.push(single);
                    v.push(payload);
                    cur_run = Some((first, v));
                } else if let Some((_, run)) = cur_run.as_mut() {
                    run.push(payload);
                }
            } else {
                if let Some(s) = pending_single.take() {
                    singles.push(s);
                }
                if let Some(r) = cur_run.take() {
                    runs.push(r);
                }
                pending_single = Some((seq, payload));
            }
            prev_seq = Some(seq);
        }
        if let Some(s) = pending_single.take() {
            singles.push(s);
        }
        if let Some(r) = cur_run.take() {
            runs.push(r);
        }
    }

    /// Processes an acknowledgment: drops the frame from the buffer.
    /// Duplicate acks are ignored.
    pub fn acknowledge(&mut self, seq: u64) {
        self.unacked.remove(&seq);
    }

    /// Cumulative acknowledgment: drops every frame with sequence number
    /// `<= seq` in O(log n), so a recovering receiver can confirm a whole
    /// prefix without one ack per frame.
    pub fn acknowledge_through(&mut self, seq: u64) {
        match seq.checked_add(1) {
            Some(bound) => {
                self.unacked = self.unacked.split_off(&bound);
            }
            None => self.unacked.clear(),
        }
    }

    /// Returns the frames due for retransmission (unacknowledged past
    /// their per-frame backoff deadline), doubling each one's interval up
    /// to the cap and rescheduling it.
    pub fn due_for_retransmit(&mut self) -> Vec<(u64, T)> {
        self.due_at(Instant::now())
    }

    /// [`due_for_retransmit`](Self::due_for_retransmit) against a
    /// caller-owned buffer: appends the due frames to `due`. The common
    /// case — a healthy link with nothing due — touches the allocator not
    /// at all, which matters because every node polls every sender each
    /// tick.
    pub fn due_for_retransmit_into(&mut self, due: &mut Vec<(u64, T)>) {
        self.due_at_into(Instant::now(), due);
    }

    fn due_at(&mut self, now: Instant) -> Vec<(u64, T)> {
        let mut due = Vec::new();
        self.due_at_into(now, &mut due);
        due
    }

    fn due_at_into(&mut self, now: Instant, due: &mut Vec<(u64, T)>) {
        let before = due.len();
        for (&seq, pending) in self.unacked.iter_mut() {
            if !pending.held && now >= pending.next_due {
                pending.interval = pending
                    .interval
                    .checked_mul(2)
                    .unwrap_or(self.cap)
                    .min(self.cap);
                pending.next_due = now + pending.interval;
                due.push((seq, pending.payload.clone()));
            }
        }
        self.retransmissions += (due.len() - before) as u64;
    }

    /// Replays the retransmission buffer after a transport reconnect:
    /// returns every unacknowledged, unheld frame — i.e. everything past
    /// the last acknowledged frame — **exactly once per connection
    /// epoch**, restarting each frame's backoff at the base timeout.
    ///
    /// The caller assigns a strictly increasing `epoch` to every newly
    /// established connection. A transport that flaps rapidly (connect,
    /// drop, reconnect before any ack returns) presents a *new* epoch each
    /// time but the buffer contents barely change; the epoch guard ensures
    /// a repeated call for an already-replayed epoch contributes nothing,
    /// and per-frame backoff (not the reconnect path) covers frames lost
    /// between two replays. Without the guard every reconnect event —
    /// including spurious duplicate notifications for the same socket —
    /// would re-burst the full buffer onto a link that is already
    /// retransmitting it.
    pub fn reconnect_replay(&mut self, epoch: u64) -> Vec<(u64, T)> {
        if epoch <= self.last_replay_epoch {
            return Vec::new();
        }
        self.last_replay_epoch = epoch;
        let now = Instant::now();
        let mut burst = Vec::new();
        for (&seq, pending) in self.unacked.iter_mut() {
            if pending.held {
                continue;
            }
            pending.interval = self.timeout;
            pending.next_due = now + self.timeout;
            burst.push((seq, pending.payload.clone()));
        }
        self.retransmissions += burst.len() as u64;
        burst
    }

    /// Number of frames awaiting acknowledgment.
    pub fn unacked(&self) -> usize {
        self.unacked.len()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Exports the durable sender state for a checkpoint: the next fresh
    /// sequence number plus every unacknowledged frame (held frames
    /// included — that is the point), in sequence order.
    pub fn snapshot(&self) -> (u64, Vec<(u64, T)>) {
        let mut frames = Vec::new();
        let next = self.snapshot_into(&mut frames);
        (next, frames)
    }

    /// [`snapshot`](Self::snapshot) against a caller-owned buffer:
    /// appends the unacknowledged frames to `frames` and returns the next
    /// fresh sequence number. Lets a periodic checkpointer reuse one
    /// buffer per link instead of allocating a vector every interval.
    pub fn snapshot_into(&self, frames: &mut Vec<(u64, T)>) -> u64 {
        frames.extend(
            self.unacked
                .iter()
                .map(|(&seq, pending)| (seq, pending.payload.clone())),
        );
        self.next_seq
    }
}

/// Receiver half of a reliable FIFO link: reorders by link sequence number,
/// releases payloads strictly in order, and drops duplicates.
#[derive(Debug)]
pub struct LinkReceiver<T> {
    next_expected: u64,
    buffer: BTreeMap<u64, T>,
    duplicates: u64,
}

impl<T> Default for LinkReceiver<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkReceiver<T> {
    /// Creates a receiver expecting sequence number 1.
    pub fn new() -> Self {
        Self::resume(1)
    }

    /// Rebuilds a receiver from snapshot state: frames below
    /// `next_expected` were already released before the checkpoint and
    /// will be treated as duplicates if they arrive again.
    pub fn resume(next_expected: u64) -> Self {
        LinkReceiver {
            next_expected: next_expected.max(1),
            buffer: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Accepts a frame; returns the payloads that become releasable, in
    /// FIFO order. Duplicates (already released or already buffered) are
    /// counted and dropped; the caller should still acknowledge them so
    /// the sender stops retransmitting.
    pub fn receive(&mut self, seq: u64, payload: T) -> Vec<T> {
        let mut out = Vec::new();
        self.receive_into(seq, payload, &mut out);
        out
    }

    /// [`receive`](Self::receive) against a caller-owned buffer: appends
    /// releasable payloads to `out` and returns how many were appended.
    /// In-order arrivals — the steady state of a healthy link — bypass
    /// the reorder buffer entirely, so the hot path performs no
    /// allocation and no `BTreeMap` traffic.
    pub fn receive_into(&mut self, seq: u64, payload: T, out: &mut Vec<T>) -> usize {
        if seq < self.next_expected || self.buffer.contains_key(&seq) {
            self.duplicates += 1;
            return 0;
        }
        let mut released = 0;
        if seq == self.next_expected {
            self.next_expected += 1;
            out.push(payload);
            released += 1;
        } else {
            self.buffer.insert(seq, payload);
        }
        while let Some(payload) = self.buffer.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(payload);
            released += 1;
        }
        released
    }

    /// Accepts a coalesced run of frames carrying consecutive sequence
    /// numbers starting at `first_seq` (the unit
    /// [`LinkSender::release_held_coalesced`] puts on the wire) and
    /// returns the payloads that become releasable, in FIFO order.
    /// Exactly equivalent to calling [`receive`](Self::receive) once per
    /// frame; per-frame duplicate detection still applies, so a partially
    /// retransmitted run is deduplicated frame by frame.
    pub fn receive_batch(
        &mut self,
        first_seq: u64,
        payloads: impl IntoIterator<Item = T>,
    ) -> Vec<T> {
        let mut out = Vec::new();
        self.receive_batch_into(first_seq, payloads, &mut out);
        out
    }

    /// [`receive_batch`](Self::receive_batch) against a caller-owned
    /// buffer: appends releasable payloads to `out` and returns how many
    /// were appended.
    pub fn receive_batch_into(
        &mut self,
        first_seq: u64,
        payloads: impl IntoIterator<Item = T>,
        out: &mut Vec<T>,
    ) -> usize {
        let mut released = 0;
        for (offset, payload) in payloads.into_iter().enumerate() {
            released += self.receive_into(first_seq + offset as u64, payload, out);
        }
        released
    }

    /// The next in-order sequence number this receiver will release.
    /// Everything strictly below it has been handed to the application,
    /// so `next_expected() - 1` is the cumulative-ack floor a checkpoint
    /// should record.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Frames buffered waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Duplicate frames observed (a proxy for retransmission pressure).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.receive(1, "a"), vec!["a"]);
        assert_eq!(rx.receive(2, "b"), vec!["b"]);
        assert_eq!(rx.pending(), 0);
        assert_eq!(rx.next_expected(), 3);
    }

    #[test]
    fn reordering_is_fixed() {
        let mut rx = LinkReceiver::new();
        assert!(rx.receive(3, "c").is_empty());
        assert!(rx.receive(2, "b").is_empty());
        assert_eq!(rx.pending(), 2);
        assert_eq!(rx.receive(1, "a"), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicates_dropped_and_counted() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.receive(1, "a"), vec!["a"]);
        assert!(rx.receive(1, "a").is_empty(), "already released");
        assert!(rx.receive(3, "c").is_empty());
        assert!(rx.receive(3, "c").is_empty(), "already buffered");
        assert_eq!(rx.duplicates(), 2);
    }

    #[test]
    fn sender_retransmits_after_timeout() {
        let mut tx = LinkSender::new(Duration::from_millis(1));
        let (s1, _) = tx.send("x");
        assert_eq!(tx.unacked(), 1);
        std::thread::sleep(Duration::from_millis(2));
        let due = tx.due_for_retransmit();
        assert_eq!(due, vec![(s1, "x")]);
        assert_eq!(tx.retransmissions(), 1);
        tx.acknowledge(s1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(tx.due_for_retransmit().is_empty(), "acked frames stay quiet");
    }

    #[test]
    fn backoff_doubles_up_to_cap() {
        // Drive a synthetic clock so the schedule is deterministic.
        let base = Instant::now();
        let ms = Duration::from_millis;
        let mut tx = LinkSender::with_backoff(ms(10), ms(40));
        let (s1, _) = tx.send_inner("x", base, false);

        // Not due before the initial timeout elapses.
        assert!(tx.due_at(base + ms(9)).is_empty());
        // First retransmit at +10ms; interval doubles to 20ms.
        assert_eq!(tx.due_at(base + ms(10)), vec![(s1, "x")]);
        assert!(tx.due_at(base + ms(29)).is_empty());
        // Second at +30ms; interval doubles to 40ms (the cap).
        assert_eq!(tx.due_at(base + ms(30)), vec![(s1, "x")]);
        assert!(tx.due_at(base + ms(69)).is_empty());
        // Third at +70ms; interval stays pinned at the 40ms cap.
        assert_eq!(tx.due_at(base + ms(70)), vec![(s1, "x")]);
        assert!(tx.due_at(base + ms(109)).is_empty());
        assert_eq!(tx.due_at(base + ms(110)), vec![(s1, "x")]);
        assert_eq!(tx.retransmissions(), 4);
    }

    #[test]
    fn fixed_interval_when_cap_equals_timeout() {
        let base = Instant::now();
        let ms = Duration::from_millis;
        let mut tx = LinkSender::new(ms(10));
        let (s1, _) = tx.send_inner("x", base, false);
        assert_eq!(tx.due_at(base + ms(10)), vec![(s1, "x")]);
        assert_eq!(tx.due_at(base + ms(20)), vec![(s1, "x")]);
        assert_eq!(tx.due_at(base + ms(30)), vec![(s1, "x")]);
        assert_eq!(tx.retransmissions(), 3);
    }

    #[test]
    fn zero_timeout_is_always_due() {
        let mut tx = LinkSender::new(Duration::ZERO);
        let (s1, _) = tx.send("x");
        assert_eq!(tx.due_for_retransmit(), vec![(s1, "x")]);
        assert_eq!(tx.due_for_retransmit(), vec![(s1, "x")]);
    }

    #[test]
    fn acknowledge_through_clears_prefix() {
        let mut tx = LinkSender::new(Duration::from_secs(1));
        for i in 0..6 {
            tx.send(i);
        }
        tx.acknowledge_through(4);
        assert_eq!(tx.unacked(), 2);
        let (_, frames) = tx.snapshot();
        let seqs: Vec<u64> = frames.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![5, 6]);
        tx.acknowledge_through(u64::MAX);
        assert_eq!(tx.unacked(), 0);
    }

    #[test]
    fn held_frames_skip_retransmission_until_released() {
        let mut tx = LinkSender::new(Duration::ZERO);
        let (s1, _) = tx.send_held("staged");
        assert!(
            tx.due_for_retransmit().is_empty(),
            "held frames must not escape"
        );
        // Held frames still appear in snapshots.
        let (next_seq, frames) = tx.snapshot();
        assert_eq!(next_seq, 2);
        assert_eq!(frames, vec![(s1, "staged")]);
        tx.release_held();
        assert_eq!(tx.due_for_retransmit(), vec![(s1, "staged")]);
    }

    #[test]
    fn snapshot_resume_roundtrip() {
        let ms = Duration::from_millis;
        let mut tx = LinkSender::new(ms(5));
        tx.send("a");
        tx.send("b");
        tx.send("c");
        tx.acknowledge(1);
        let (next_seq, frames) = tx.snapshot();
        assert_eq!(next_seq, 4);

        let mut revived = LinkSender::resume(Duration::ZERO, Duration::ZERO, next_seq, frames);
        assert_eq!(revived.unacked(), 2);
        // Restored frames are immediately due.
        assert_eq!(revived.due_for_retransmit(), vec![(2, "b"), (3, "c")]);
        // Fresh sends continue the sequence space.
        assert_eq!(revived.send("d").0, 4);
    }

    #[test]
    fn receiver_resume_treats_prefix_as_released() {
        let mut rx = LinkReceiver::resume(3);
        assert!(rx.receive(1, "a").is_empty());
        assert!(rx.receive(2, "b").is_empty());
        assert_eq!(rx.duplicates(), 2);
        assert_eq!(rx.receive(3, "c"), vec!["c"]);
        assert_eq!(rx.next_expected(), 4);
    }

    #[test]
    fn ack_unknown_seq_is_noop() {
        let mut tx = LinkSender::<&str>::new(Duration::from_millis(1));
        tx.acknowledge(42);
        assert_eq!(tx.unacked(), 0);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut tx = LinkSender::new(Duration::from_secs(1));
        let seqs: Vec<u64> = (0..5).map(|i| tx.send(i).0).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn coalesced_release_yields_one_run_of_held_frames() {
        let mut tx = LinkSender::new(Duration::from_secs(1));
        for payload in ["a", "b", "c"] {
            tx.send_held(payload);
        }
        let runs = tx.release_held_coalesced();
        assert_eq!(runs, vec![(1, vec!["a", "b", "c"])]);
        assert_eq!(tx.unacked(), 3, "frames stay individually tracked");

        let mut rx = LinkReceiver::new();
        let (first, payloads) = runs.into_iter().next().unwrap();
        assert_eq!(rx.receive_batch(first, payloads), vec!["a", "b", "c"]);
        assert_eq!(rx.next_expected(), 4);
    }

    #[test]
    fn coalesced_run_acks_through_on_run_boundary() {
        // Flush-on-ack-boundary: one cumulative ack for the run clears
        // exactly the run, leaving later frames untouched.
        let mut tx = LinkSender::new(Duration::from_secs(1));
        for payload in ["a", "b", "c"] {
            tx.send_held(payload);
        }
        let runs = tx.release_held_coalesced();
        let (first, payloads) = runs.into_iter().next().unwrap();
        let last = first + payloads.len() as u64 - 1;
        tx.send("d"); // next flush window, not covered by the run's ack

        let mut rx = LinkReceiver::new();
        rx.receive_batch(first, payloads);
        // The receiver's cumulative floor lands exactly on the run
        // boundary, and acking through it clears the run and nothing else.
        assert_eq!(rx.next_expected() - 1, last);
        tx.acknowledge_through(rx.next_expected() - 1);
        assert_eq!(tx.unacked(), 1);
        let (_, frames) = tx.snapshot();
        assert_eq!(frames, vec![(4, "d")]);
    }

    #[test]
    fn interleaved_singles_split_coalesced_runs() {
        // A non-held send between two held groups breaks seq adjacency,
        // so the release yields two runs rather than one bogus span.
        let mut tx = LinkSender::new(Duration::from_secs(1));
        tx.send_held("a");
        tx.send_held("b");
        let (s3, _) = tx.send("solo");
        tx.acknowledge(s3);
        tx.send_held("c");
        let runs = tx.release_held_coalesced();
        assert_eq!(runs, vec![(1, vec!["a", "b"]), (4, vec!["c"])]);
    }

    #[test]
    fn coalesced_run_survives_snapshot_resume_cycle() {
        // A coalesced frame spanning a snapshot/resume cycle: the run is
        // flushed, the wire write is lost, and the sender crashes. The
        // resumed sender still carries every frame of the run individually
        // and retransmits them; the receiver reassembles the stream.
        let mut tx = LinkSender::new(Duration::from_millis(5));
        for payload in ["a", "b", "c"] {
            tx.send_held(payload);
        }
        let runs = tx.release_held_coalesced();
        assert_eq!(runs.len(), 1, "one wire write");
        // ...which the network drops. Snapshot after the flush.
        let (next_seq, frames) = tx.snapshot();
        assert_eq!(frames.len(), 3, "whole run in the snapshot");
        drop(tx);

        let mut revived = LinkSender::resume(Duration::ZERO, Duration::ZERO, next_seq, frames);
        let mut rx = LinkReceiver::new();
        let mut released = Vec::new();
        for (seq, payload) in revived.due_for_retransmit() {
            released.extend(rx.receive(seq, payload));
        }
        assert_eq!(released, vec!["a", "b", "c"]);
        assert_eq!(revived.send("d").0, 4, "sequence space continues");
    }

    #[test]
    fn coalesced_release_restarts_backoff_like_release_held() {
        // Backoff interaction: releasing via the coalescing path arms the
        // same per-frame schedule as release_held — first retry after the
        // base timeout, then doubling per frame up to the cap.
        let base = Instant::now();
        let ms = Duration::from_millis;
        let mut tx = LinkSender::with_backoff(ms(10), ms(40));
        tx.send_inner("a", base, true);
        tx.send_inner("b", base, true);
        let runs = tx.release_held_coalesced();
        assert_eq!(runs, vec![(1, vec!["a", "b"])]);
        // Frames retransmit individually, on their own schedule. (The
        // release stamps next_due from the real clock, so poll with slack.)
        assert!(tx.due_at(base + ms(9)).is_empty());
        let due: Vec<u64> = tx
            .due_at(base + ms(19))
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(due, vec![1, 2]);
        // Interval doubled to 20ms after the first retransmission, and
        // from here the schedule is fully synthetic: next_due is 20ms
        // after the poll that retransmitted.
        assert!(tx.due_at(base + ms(38)).is_empty());
        assert_eq!(tx.due_at(base + ms(39)).len(), 2);
    }

    #[test]
    fn receive_batch_deduplicates_partially_retransmitted_runs() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.receive_batch(1, ["a", "b"]), vec!["a", "b"]);
        // The same run arrives again (the batch write raced the ack) plus
        // one fresh frame: only the fresh frame is released.
        assert_eq!(rx.receive_batch(1, ["a", "b", "c"]), vec!["c"]);
        assert_eq!(rx.duplicates(), 2);
    }

    #[test]
    fn reconnect_replay_resends_from_last_ack_exactly_once_per_epoch() {
        let mut tx = LinkSender::new(Duration::from_secs(1));
        for payload in ["a", "b", "c", "d"] {
            tx.send(payload);
        }
        tx.acknowledge_through(2);

        // First reconnect: everything past the last acknowledged frame.
        assert_eq!(tx.reconnect_replay(1), vec![(3, "c"), (4, "d")]);
        // Regression: a duplicate notification for the same epoch (rapid
        // flap, double-reported reconnect) must not re-burst the buffer.
        assert!(tx.reconnect_replay(1).is_empty());
        assert!(tx.reconnect_replay(0).is_empty(), "stale epoch ignored");
        assert_eq!(tx.retransmissions(), 2, "one burst, not three");

        // A genuinely new connection epoch replays what is still unacked.
        tx.acknowledge(3);
        assert_eq!(tx.reconnect_replay(2), vec![(4, "d")]);
    }

    #[test]
    fn reconnect_replay_skips_held_frames_and_restarts_backoff() {
        let ms = Duration::from_millis;
        let mut tx = LinkSender::with_backoff(ms(10), ms(80));
        tx.send("wire");
        tx.send_held("staged");

        // Held frames must not escape via the reconnect path: nothing may
        // leave a node before the snapshot that contains it.
        assert_eq!(tx.reconnect_replay(1), vec![(1, "wire")]);

        // The replay restarted frame 1's backoff at the base timeout, so
        // it is not due again immediately after the burst.
        assert!(tx.due_for_retransmit().is_empty());
    }

    #[test]
    fn scratch_variants_match_the_allocating_apis() {
        // The `_into` family must be observationally identical to the
        // allocating originals — same releases, same duplicate counting,
        // same run shapes — while only ever appending to its buffer.
        let mut rx = LinkReceiver::new();
        let mut out = vec!["sentinel"];
        assert_eq!(rx.receive_into(2, "b", &mut out), 0);
        assert_eq!(rx.receive_into(1, "a", &mut out), 2);
        assert_eq!(out, vec!["sentinel", "a", "b"]);
        assert_eq!(rx.receive_into(1, "a", &mut out), 0, "duplicate dropped");
        assert_eq!(rx.duplicates(), 1);
        out.clear();
        assert_eq!(rx.receive_batch_into(3, ["c", "d"], &mut out), 2);
        assert_eq!(out, vec!["c", "d"]);
        assert_eq!(rx.next_expected(), 5);

        let mut tx = LinkSender::new(Duration::from_secs(1));
        tx.send_held("a");
        tx.send_held("b");
        let mut runs = Vec::new();
        tx.release_held_coalesced_into(&mut runs);
        assert_eq!(runs, vec![(1, vec!["a", "b"])]);
        runs.clear();
        tx.release_held_coalesced_into(&mut runs);
        assert!(runs.is_empty(), "second release finds nothing held");

        let mut tx = LinkSender::new(Duration::ZERO);
        let (s1, _) = tx.send("x");
        let mut due = Vec::new();
        tx.due_for_retransmit_into(&mut due);
        assert_eq!(due, vec![(s1, "x")]);
        assert_eq!(tx.retransmissions(), 1);
    }

    #[test]
    fn release_held_coalesced_with_nothing_held_is_empty() {
        let mut tx = LinkSender::<&str>::new(Duration::from_secs(1));
        tx.send("solo");
        assert!(tx.release_held_coalesced().is_empty());
    }
}
