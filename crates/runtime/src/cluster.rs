//! Orchestration: sequencing-node and host threads wired by reliable links.
//!
//! Beyond the fault-free pipeline, this module implements sequencer
//! crash–recovery. Every sequencing node periodically checkpoints its
//! durable state (protocol counters plus both halves of every link) into a
//! shared snapshot store, and the runtime enforces a group-commit rule:
//! *nothing escapes a node before a snapshot containing it*. Output frames
//! are staged in the link senders' retransmission buffers but withheld from
//! the wire until the next snapshot; acknowledgments to upstream peers are
//! deferred and sent as a single cumulative ack covering exactly the
//! snapshotted receive prefix. A restarted node therefore resumes from its
//! last snapshot, and everything it processed after that snapshot is
//! replayed to it from upstream retransmission buffers — the paper's §3.1
//! output buffers double as the recovery log. Publishers reach ingress
//! nodes over the same reliable links (capped-exponential-backoff retry),
//! and nodes exchange heartbeats so that peer failures are detected, not
//! just tolerated.

use crate::link::{LinkReceiver, LinkSender};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet_core::proto::trace::{Actor, EventKind, TraceEvent, TraceSink};
use seqnet_core::proto::{
    Command, CommandBuf, Event, Frame, NodeCore, Peer, ProtocolState, ReceiverCore, RecoveryStats,
    Routing,
};
use seqnet_core::{Message, MessageId};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_obs::{prom, Recorder, Registry};
use seqnet_overlap::{AtomId, Colocation, GraphBuilder, SequencingGraph};
use seqnet_sim::{FaultPlan, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A party in the deployment — the protocol core's [`Peer`] type names
/// sequencing-node threads, host threads, and the publisher front-end
/// living inside [`Cluster`] alike.
type Party = Peer;

/// Identifies a directed reliable link between two parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LinkId(u32);

#[derive(Debug, Clone)]
enum Body {
    Data(Frame),
    /// A coalesced run of data frames carrying consecutive link sequence
    /// numbers starting at the `ThreadMsg::Frame` sequence number: many
    /// small frames, one wire write. Produced by [`LinkEngine::flush_staged`]
    /// when [`ClusterConfig::coalesce`] is set; each frame stays
    /// individually tracked in the sender's retransmission buffer, so
    /// retransmissions and snapshots are unaffected by the framing.
    DataBatch(Vec<Frame>),
    /// Acknowledges exactly the frame sequence number it carries.
    Ack,
    /// Cumulative acknowledgment: every frame up to and including the
    /// carried sequence number is confirmed. Sent by sequencing nodes at
    /// snapshot time, so an ack never outruns the durable state that
    /// records its frames.
    AckThrough,
    /// Liveness beacon between sequencing nodes; carries no payload and
    /// bypasses the reliable-delivery machinery.
    Heartbeat,
}

#[derive(Debug)]
enum ThreadMsg {
    Frame { link: LinkId, seq: u64, body: Body },
    Shutdown,
}

#[derive(Debug, Clone)]
struct DeliveryNote {
    host: NodeId,
    msg: Message,
}

/// A frame held by the delayer thread until its release time.
#[derive(Debug)]
struct DelayedFrame {
    release_at: Instant,
    to: Party,
    link: LinkId,
    seq: u64,
    body: Body,
}

/// Counters aggregated across all threads at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Data frames put on the wire (including retransmissions).
    pub frames_sent: u64,
    /// Frames dropped by the loss injector.
    pub frames_dropped: u64,
    /// Retransmissions performed by link senders.
    pub retransmissions: u64,
    /// Duplicate frames discarded by link receivers.
    pub duplicates: u64,
    /// Peer-failure detections: transitions of a monitored peer from
    /// healthy to suspected after three missed heartbeat intervals.
    pub heartbeat_misses: u64,
    /// Crash-recovery counters, with definitions shared (via the protocol
    /// core's [`RecoveryStats`]) with the simulator's `FaultStats`:
    /// `crashes` counts sequencing-node threads killed via
    /// [`Cluster::crash_node`]; `frames_replayed` counts data frames
    /// replayed to restarted nodes from upstream retransmission buffers
    /// before their recovery completed; `recovery_micros` sums recovery
    /// latency over restarts (thread start to the first snapshot that
    /// re-durably-records replayed input). `messages_parked` stays zero
    /// here: a crashed thread's arrivals queue in its inbox (transport
    /// buffering), they are never parked by a live core.
    pub recovery: RecoveryStats,
}

/// Deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Probability that any frame (data or ack) is lost in transit.
    pub drop_probability: f64,
    /// How long a frame may stay unacknowledged before its first
    /// retransmission; the per-frame interval then doubles up to
    /// [`backoff_cap`](Self::backoff_cap).
    pub retransmit_timeout: Duration,
    /// Upper bound on the per-frame retransmission interval. Long
    /// outages (a crashed peer) back off to this cap instead of
    /// producing a retransmit storm at the fixed timeout.
    pub backoff_cap: Duration,
    /// Maximum simulated propagation delay per frame: each transmission
    /// is held for a uniform random duration in `[0, link_delay]` by a
    /// delayer thread, so frames on *different* links genuinely race and
    /// reorder (per-link FIFO is restored by the link layer). Zero sends
    /// directly.
    pub link_delay: Duration,
    /// How often sequencing nodes checkpoint their durable state. Staged
    /// output frames and cumulative acks leave the node only at snapshot
    /// time, so this bounds both the recovery rollback window and the
    /// added per-hop latency.
    pub snapshot_interval: Duration,
    /// How often sequencing nodes emit heartbeats on node-to-node links.
    /// A peer silent for [`heartbeat_miss_threshold`](Self::heartbeat_miss_threshold)
    /// intervals is suspected (counted in [`RuntimeStats::heartbeat_misses`]).
    pub heartbeat_interval: Duration,
    /// How many consecutive silent heartbeat intervals mark a peer as
    /// suspected. Shared by the threaded and socket drivers; the socket
    /// driver additionally tears the connection down and starts
    /// reconnecting once a peer is suspected.
    pub heartbeat_miss_threshold: u32,
    /// Coalesce staged output frames at flush time: each snapshot flush
    /// puts one [`Body::DataBatch`] per link on the wire instead of one
    /// message per frame. Framing only — every frame keeps its own link
    /// sequence number, retransmission entry, and snapshot slot, and the
    /// receiving side acknowledges a batch with a single cumulative ack.
    /// Off by default.
    pub coalesce: bool,
    /// Seed for co-location and loss injection.
    pub seed: u64,
    /// Record a structured protocol trace: every thread reports its
    /// publish/stamp/forward/arrive/buffer/deliver events into a shared
    /// [`Recorder`], stamped with wall microseconds since cluster start.
    /// Read it back with [`Cluster::trace_events`]. Off by default — the
    /// untraced paths compile down to the uninstrumented code.
    pub trace: bool,
}

impl ClusterConfig {
    /// Checks the configuration for values that would wedge or livelock a
    /// cluster, returning a descriptive error for the first problem found.
    /// [`Cluster::start`] (and the socket driver's cluster launcher) call
    /// this and refuse to run on `Err`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.drop_probability) {
            return Err(format!(
                "drop_probability must be in [0, 1), got {}: a cluster that \
                 drops every frame cannot make progress",
                self.drop_probability
            ));
        }
        if self.retransmit_timeout.is_zero() {
            return Err(
                "retransmit_timeout must be positive: a zero timeout turns every \
                 transmission into an immediate retransmit storm"
                    .into(),
            );
        }
        if self.backoff_cap < self.retransmit_timeout {
            return Err(format!(
                "backoff_cap ({:?}) must be >= retransmit_timeout ({:?}): the cap \
                 bounds the exponential backoff that starts at the timeout",
                self.backoff_cap, self.retransmit_timeout
            ));
        }
        if self.snapshot_interval.is_zero() {
            return Err(
                "snapshot_interval must be positive: staged frames and acks only \
                 leave a node at snapshot time"
                    .into(),
            );
        }
        if self.heartbeat_interval.is_zero() {
            return Err(
                "heartbeat_interval must be positive: zero-interval heartbeats \
                 saturate every link"
                    .into(),
            );
        }
        if self.heartbeat_miss_threshold == 0 {
            return Err(
                "heartbeat_miss_threshold must be at least 1: a threshold of zero \
                 suspects every peer instantly, even a healthy one"
                    .into(),
            );
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            link_delay: Duration::ZERO,
            snapshot_interval: Duration::from_millis(3),
            heartbeat_interval: Duration::from_millis(15),
            heartbeat_miss_threshold: 3,
            coalesce: false,
            seed: 0,
            trace: false,
        }
    }
}

/// Errors surfaced by the threaded deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Publish addressed a group with no members.
    UnknownGroup(GroupId),
    /// Fewer deliveries than expected arrived within the timeout.
    Timeout {
        /// How many deliveries were expected.
        expected: usize,
        /// How many actually arrived.
        received: usize,
    },
    /// A reconfiguration is already staged but has not activated yet.
    ReconfigPending {
        /// The epoch that will activate when the staged change completes.
        next_epoch: u64,
    },
    /// [`Cluster::complete_reconfigure`] was called with nothing staged.
    NoPendingReconfig,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            RuntimeError::Timeout { expected, received } => {
                write!(f, "timed out with {received}/{expected} deliveries")
            }
            RuntimeError::ReconfigPending { next_epoch } => write!(
                f,
                "reconfiguration already pending: epoch {next_epoch} has not activated yet"
            ),
            RuntimeError::NoPendingReconfig => write!(f, "no reconfiguration pending"),
        }
    }
}

impl Error for RuntimeError {}

/// Durable state a sequencing node checkpoints: its protocol counters plus
/// both halves of every link it terminates. The snapshot store stands in
/// for stable storage; frames transmitted before the crash are exactly the
/// frames some snapshot records, so restoring the latest snapshot plus
/// replay from upstream output buffers reconstructs a consistent node.
#[derive(Debug, Clone)]
struct NodeSnapshot {
    protocol: ProtocolState,
    /// Per incoming link: the next in-order sequence number expected at
    /// snapshot time (everything below it was processed and is covered by
    /// `protocol`).
    rx_next: HashMap<LinkId, u64>,
    /// Per outgoing link: the next fresh sequence number and the frames
    /// still unacknowledged at snapshot time.
    tx_state: HashMap<LinkId, (u64, Vec<(u64, Frame)>)>,
}

/// Immutable wiring shared by all threads.
#[derive(Debug)]
struct Wiring {
    graph: SequencingGraph,
    membership: Membership,
    /// Sequencing node hosting each live atom.
    atom_node: HashMap<AtomId, usize>,
    links: Vec<(Party, Party)>,
    link_index: HashMap<(Party, Party), LinkId>,
    outboxes: BTreeMap<Party, Sender<ThreadMsg>>,
    config: ClusterConfig,
    stats: Mutex<RuntimeStats>,
    /// Wire-write size histogram: how many data transmissions carried
    /// each frame count (1 for `Body::Data`, the run length for
    /// `Body::DataBatch`). Merged from per-thread tallies at thread exit,
    /// so it is complete after [`Cluster::shutdown`]. Mirrors the
    /// simulator's `batch_size_counts`.
    batch_sizes: Mutex<BTreeMap<usize, u64>>,
    /// Latest checkpoint per sequencing node; the stand-in for each
    /// node's stable storage.
    snapshots: Mutex<HashMap<usize, NodeSnapshot>>,
    /// Frames routed through the delayer thread when `link_delay > 0`.
    delayer: Option<Sender<DelayedFrame>>,
    /// Shared structured-trace recorder when `config.trace` is set; every
    /// thread appends under the mutex, stamped relative to `epoch`.
    trace: Option<Arc<StdMutex<Recorder>>>,
    /// Cluster start instant — the zero point of trace timestamps.
    epoch: Instant,
    /// The configuration epoch this wiring implements. Epoch 0 is the
    /// initial configuration; each completed online reconfiguration
    /// rebuilds the wiring with the next epoch, and node threads seed
    /// their protocol state from it so every message is stamped with the
    /// epoch it was sequenced under.
    config_epoch: u64,
}

impl Wiring {
    fn link_between(&self, from: Party, to: Party) -> LinkId {
        self.link_index[&(from, to)]
    }
}

/// A running threaded deployment of the ordering protocol.
///
/// See the [crate docs](crate) for an example. Sequencing-node threads can
/// be killed and restarted mid-run with [`Cluster::crash_node`] and
/// [`Cluster::restart_node`]; delivery of every published message, in
/// consistent order, survives such faults.
#[derive(Debug)]
pub struct Cluster {
    wiring: Arc<Wiring>,
    node_handles: HashMap<usize, JoinHandle<()>>,
    host_handles: Vec<JoinHandle<()>>,
    /// Retained clones of node inbox receivers so a restarted thread can
    /// take over the same channel (frames queued while the node was down
    /// are waiting for it).
    node_inboxes: HashMap<usize, Receiver<ThreadMsg>>,
    kill_flags: HashMap<usize, Arc<AtomicBool>>,
    /// Publisher-side link machinery: publishes travel over reliable
    /// links to ingress nodes and are retried with capped exponential
    /// backoff until a node snapshot acknowledges them.
    pub_engine: LinkEngine,
    pub_inbox: Receiver<ThreadMsg>,
    /// Reused release buffer for [`Cluster::pump_publisher`]; the
    /// publisher only ever receives acks, so it stays empty.
    pub_frames: Vec<Frame>,
    notes: Receiver<DeliveryNote>,
    next_id: u64,
    shut_down: bool,
    /// A staged online reconfiguration (see [`Cluster::begin_reconfigure`]):
    /// publishes accepted while it is pending park here and are injected
    /// into the next epoch's wiring once the current epoch drains.
    pending: Option<PendingReconfig>,
    /// Total deliveries owed by everything published so far (group size at
    /// publish time); the handoff drains until `deliveries_seen` catches up.
    expected_deliveries: usize,
    /// Deliveries popped off the note channel so far, across epochs.
    deliveries_seen: usize,
    /// Deliveries drained during a handoff, replayed to callers of
    /// [`Cluster::wait_for_deliveries`] / [`Cluster::next_delivery`] first.
    carried: VecDeque<DeliveryNote>,
    /// Stats, wire-size tallies, and trace events accumulated by earlier
    /// epochs' wirings, merged into the public accessors.
    prior_stats: RuntimeStats,
    prior_batches: BTreeMap<usize, u64>,
    prior_trace: Vec<TraceEvent>,
    /// Publishes accepted while no reconfiguration was staged.
    publishes_steady: u64,
    /// Publishes parked behind a staged handoff (the churn path).
    publishes_parked: u64,
}

/// A reconfiguration staged by [`Cluster::begin_reconfigure`] while the
/// current epoch keeps sequencing: the next membership plus every publish
/// parked behind the handoff.
#[derive(Debug)]
struct PendingReconfig {
    membership: Membership,
    parked: Vec<(MessageId, NodeId, GroupId, bytes::Bytes)>,
}

impl Cluster {
    /// Builds the sequencing graph for `membership`, co-locates atoms into
    /// sequencing nodes, spawns one thread per node and per subscriber
    /// host, and wires them with reliable FIFO links.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph fails validation (a bug, not an
    /// input error), or if `config` fails [`ClusterConfig::validate`].
    pub fn start(membership: &Membership, config: ClusterConfig) -> Self {
        Self::start_inner(membership, config, 0)
    }

    /// [`Cluster::start`] with an explicit configuration epoch — epoch 0
    /// for a fresh deployment, N+1 when [`Cluster::complete_reconfigure`]
    /// rebuilds the wiring for the next configuration.
    fn start_inner(membership: &Membership, config: ClusterConfig, config_epoch: u64) -> Self {
        config.validate().expect("invalid ClusterConfig");
        let graph = GraphBuilder::new().build(membership);
        graph
            .validate_against(membership)
            .expect("constructed graph is valid");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let coloc = Colocation::compute(&graph, &mut rng);

        let mut atom_node: HashMap<AtomId, usize> = HashMap::new();
        for atom in graph.atoms() {
            if let Some(nidx) = coloc.node_of(atom.id) {
                atom_node.insert(atom.id, nidx);
            }
        }

        // Enumerate links: publisher→ingress node, node→node along paths,
        // egress node→member hosts.
        let mut links: Vec<(Party, Party)> = Vec::new();
        let mut link_index: HashMap<(Party, Party), LinkId> = HashMap::new();
        let add_link = |from: Party, to: Party,
                            links: &mut Vec<(Party, Party)>,
                            index: &mut HashMap<(Party, Party), LinkId>| {
            index.entry((from, to)).or_insert_with(|| {
                let id = LinkId(links.len() as u32);
                links.push((from, to));
                id
            });
        };
        for (group, path) in graph.paths() {
            let ingress = atom_node[path.first().expect("paths are non-empty")];
            add_link(
                Party::Publisher,
                Party::Node(ingress),
                &mut links,
                &mut link_index,
            );
            for w in path.windows(2) {
                let (a, b) = (atom_node[&w[0]], atom_node[&w[1]]);
                if a != b {
                    add_link(Party::Node(a), Party::Node(b), &mut links, &mut link_index);
                }
            }
            let egress = atom_node[path.last().expect("paths are non-empty")];
            for member in membership.members(group) {
                add_link(
                    Party::Node(egress),
                    Party::Host(member),
                    &mut links,
                    &mut link_index,
                );
            }
        }

        // Channels: one inbox per party, including the publisher.
        let mut outboxes: BTreeMap<Party, Sender<ThreadMsg>> = BTreeMap::new();
        let mut inboxes: BTreeMap<Party, Receiver<ThreadMsg>> = BTreeMap::new();
        let parties: Vec<Party> = (0..coloc.num_nodes())
            .map(Party::Node)
            .chain(membership.nodes().map(Party::Host))
            .chain(std::iter::once(Party::Publisher))
            .collect();
        for &p in &parties {
            let (tx, rx) = unbounded();
            outboxes.insert(p, tx);
            inboxes.insert(p, rx);
        }

        let (note_tx, note_rx) = unbounded();

        // Delayer thread: holds frames for their simulated propagation
        // delay, releasing in time order. Crossing frames on different
        // links genuinely reorder.
        let delayer = if config.link_delay > Duration::ZERO {
            let (tx, rx) = unbounded::<DelayedFrame>();
            let boxes = outboxes.clone();
            std::thread::spawn(move || {
                let mut holding: Vec<DelayedFrame> = Vec::new();
                loop {
                    let timeout = holding
                        .iter()
                        .map(|f| f.release_at.saturating_duration_since(Instant::now()))
                        .min()
                        .unwrap_or(Duration::from_millis(50));
                    match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
                        Ok(frame) => holding.push(frame),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    let now = Instant::now();
                    let mut i = 0;
                    while i < holding.len() {
                        if holding[i].release_at <= now {
                            let f = holding.swap_remove(i);
                            let _ = boxes[&f.to].send(ThreadMsg::Frame {
                                link: f.link,
                                seq: f.seq,
                                body: f.body,
                            });
                        } else {
                            i += 1;
                        }
                    }
                }
                // Flush whatever remains on shutdown.
                for f in holding {
                    let _ = boxes[&f.to].send(ThreadMsg::Frame {
                        link: f.link,
                        seq: f.seq,
                        body: f.body,
                    });
                }
            });
            Some(tx)
        } else {
            None
        };

        let wiring = Arc::new(Wiring {
            graph,
            membership: membership.clone(),
            atom_node,
            links,
            link_index,
            outboxes,
            config: config.clone(),
            stats: Mutex::new(RuntimeStats::default()),
            batch_sizes: Mutex::new(BTreeMap::new()),
            snapshots: Mutex::new(HashMap::new()),
            delayer,
            trace: config
                .trace
                .then(|| Arc::new(StdMutex::new(Recorder::new()))),
            epoch: Instant::now(),
            config_epoch,
        });

        let mut node_handles = HashMap::new();
        let mut host_handles = Vec::new();
        let mut node_inboxes = HashMap::new();
        let mut kill_flags = HashMap::new();
        let mut pub_inbox = None;
        for &p in &parties {
            let inbox = inboxes.remove(&p).expect("inbox exists");
            let seed = config.seed ^ hash_party(p);
            match p {
                Party::Node(idx) => {
                    let flag = Arc::new(AtomicBool::new(false));
                    kill_flags.insert(idx, flag.clone());
                    node_inboxes.insert(idx, inbox.clone());
                    let wiring = Arc::clone(&wiring);
                    node_handles.insert(
                        idx,
                        std::thread::spawn(move || {
                            node_thread(idx, inbox, wiring, seed, flag, false)
                        }),
                    );
                }
                Party::Host(host) => {
                    let wiring = Arc::clone(&wiring);
                    let note_tx = note_tx.clone();
                    host_handles.push(std::thread::spawn(move || {
                        host_thread(host, inbox, wiring, note_tx, seed)
                    }));
                }
                Party::Publisher => pub_inbox = Some(inbox),
            }
        }

        let pub_seed = config.seed ^ hash_party(Party::Publisher);
        Cluster {
            wiring,
            node_handles,
            host_handles,
            node_inboxes,
            kill_flags,
            pub_engine: LinkEngine::new(Party::Publisher, pub_seed, false),
            pub_inbox: pub_inbox.expect("publisher inbox exists"),
            pub_frames: Vec::new(),
            notes: note_rx,
            next_id: 0,
            shut_down: false,
            pending: None,
            expected_deliveries: 0,
            deliveries_seen: 0,
            carried: VecDeque::new(),
            prior_stats: RuntimeStats::default(),
            prior_batches: BTreeMap::new(),
            prior_trace: Vec::new(),
            publishes_steady: 0,
            publishes_parked: 0,
        }
    }

    /// Publishes a message: sends it over the reliable link to the
    /// destination group's ingress sequencing node, where it is retried
    /// with capped exponential backoff until a node snapshot covers it —
    /// so publishes survive an ingress-node crash.
    ///
    /// While a reconfiguration is staged (between
    /// [`Cluster::begin_reconfigure`] and
    /// [`Cluster::complete_reconfigure`]) the publish is validated against
    /// the *next* membership and parked: it belongs to the next epoch and
    /// is injected once the current epoch's graph drains. The returned id
    /// is assigned immediately either way.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownGroup`] for groups with no members
    /// (in the pending membership, if a reconfiguration is staged).
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<bytes::Bytes>,
    ) -> Result<MessageId, RuntimeError> {
        let payload = payload.into();
        if let Some(pending) = &mut self.pending {
            if pending.membership.group_size(group) == 0 {
                return Err(RuntimeError::UnknownGroup(group));
            }
            let id = MessageId(self.next_id);
            self.next_id += 1;
            self.publishes_parked += 1;
            pending.parked.push((id, sender, group, payload));
            return Ok(id);
        }
        let id = MessageId(self.next_id);
        self.next_id += 1;
        self.publishes_steady += 1;
        self.publish_now(id, sender, group, payload)?;
        Ok(id)
    }

    /// Injects an already-identified message into the running wiring: the
    /// body of [`Cluster::publish`], also used to replay parked publishes
    /// into the next epoch after a handoff.
    fn publish_now(
        &mut self,
        id: MessageId,
        sender: NodeId,
        group: GroupId,
        payload: bytes::Bytes,
    ) -> Result<(), RuntimeError> {
        let Some(ingress) = self.wiring.graph.ingress(group) else {
            return Err(RuntimeError::UnknownGroup(group));
        };
        self.expected_deliveries += self.wiring.membership.group_size(group);
        let msg = Message::new(id, sender, group, payload);
        let node = self.wiring.atom_node[&ingress];
        if let Some(rec) = &self.wiring.trace {
            let mut sink = rec.lock().expect("trace sink poisoned");
            sink.now(self.wiring.epoch.elapsed().as_micros() as u64);
            sink.record(TraceEvent {
                msg: Some(id.0),
                group: Some(u64::from(group.0)),
                detail: Some(u64::from(sender.0)),
                ..TraceEvent::new(EventKind::Publish, Actor::Publisher)
            });
        }
        self.pub_engine.send_data(
            &self.wiring,
            Party::Node(node),
            Frame {
                msg,
                target_atom: Some(ingress),
            },
        );
        self.pump_publisher();
        Ok(())
    }

    /// Drains acknowledgments addressed to the publisher and retransmits
    /// overdue publishes. Called from every front-end entry point; the
    /// publisher has no thread of its own.
    fn pump_publisher(&mut self) {
        while let Ok(msg) = self.pub_inbox.try_recv() {
            if let ThreadMsg::Frame { link, seq, body } = msg {
                self.pub_frames.clear();
                let _ =
                    self.pub_engine
                        .on_frame_into(&self.wiring, link, seq, body, &mut self.pub_frames);
            }
        }
        self.pub_engine.retransmit_due(&self.wiring);
    }

    /// Collects exactly `expected` deliveries (across all hosts), grouped
    /// by host in delivery order.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if they do not all arrive in time.
    pub fn wait_for_deliveries(
        &mut self,
        expected: usize,
        timeout: Duration,
    ) -> Result<BTreeMap<NodeId, Vec<Message>>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut out: BTreeMap<NodeId, Vec<Message>> = BTreeMap::new();
        let mut received = 0usize;
        while received < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RuntimeError::Timeout { expected, received });
            }
            match self.pop_note(remaining) {
                Some(note) => {
                    out.entry(note.host).or_default().push(note.msg);
                    received += 1;
                }
                None => return Err(RuntimeError::Timeout { expected, received }),
            }
        }
        Ok(out)
    }

    /// Receives the next delivery note: handoff-carried notes first, then
    /// the live channel (pumping the publisher while waiting).
    fn pop_note(&mut self, timeout: Duration) -> Option<DeliveryNote> {
        if let Some(note) = self.carried.pop_front() {
            return Some(note);
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_publisher();
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self
                .notes
                .recv_timeout(remaining.min(Duration::from_millis(2)))
            {
                Ok(note) => {
                    self.deliveries_seen += 1;
                    return Some(note);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Kills the sequencing-node thread `node` as a simulated crash: its
    /// volatile state (link buffers, unsnapshotted protocol progress,
    /// staged outputs) is lost; only the shared snapshot store survives.
    /// Frames sent to the node while it is down queue in its inbox.
    /// Returns `true` if a running node was killed, `false` if it was
    /// already down.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid sequencing-node index.
    pub fn crash_node(&mut self, node: usize) -> bool {
        assert!(
            self.node_inboxes.contains_key(&node),
            "no sequencing node {node}"
        );
        let Some(handle) = self.node_handles.remove(&node) else {
            return false;
        };
        self.kill_flags[&node].store(true, Ordering::Relaxed);
        let _ = handle.join();
        self.wiring.stats.lock().recovery.crashes += 1;
        // The core never sees a crash event here (the crash *is* the
        // thread dying), so the driver reports it.
        if let Some(rec) = &self.wiring.trace {
            let mut sink = rec.lock().expect("trace sink poisoned");
            sink.now(self.wiring.epoch.elapsed().as_micros() as u64);
            sink.record(TraceEvent::new(EventKind::Crash, Actor::Node(node as u64)));
        }
        true
    }

    /// Restarts a crashed sequencing node: a fresh thread takes over the
    /// node's inbox, restores the latest snapshot (if any), and rebuilds
    /// unsnapshotted progress from replayed upstream retransmissions.
    /// Returns `true` if a restart happened, `false` if the node was
    /// already running.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid sequencing-node index.
    pub fn restart_node(&mut self, node: usize) -> bool {
        assert!(
            self.node_inboxes.contains_key(&node),
            "no sequencing node {node}"
        );
        if self.node_handles.contains_key(&node) {
            return false;
        }
        let flag = Arc::new(AtomicBool::new(false));
        self.kill_flags.insert(node, Arc::clone(&flag));
        let inbox = self.node_inboxes[&node].clone();
        let wiring = Arc::clone(&self.wiring);
        let seed = self.wiring.config.seed ^ hash_party(Party::Node(node));
        self.node_handles.insert(
            node,
            std::thread::spawn(move || node_thread(node, inbox, wiring, seed, flag, true)),
        );
        true
    }

    /// Replays the crash windows of a deterministic [`FaultPlan`] against
    /// the running cluster, mapping simulated microseconds 1:1 onto the
    /// wall clock: each window kills its node at `down_at` and restarts
    /// it at `up_at`. Windows naming nodes this deployment does not have
    /// are skipped, as are partition and loss windows (those are
    /// simulator-side faults; use `drop_probability` for runtime loss).
    /// Publisher retransmissions keep flowing while this call sleeps
    /// between events.
    pub fn run_fault_plan(&mut self, plan: &FaultPlan) {
        let n = self.node_inboxes.len();
        // (time, node, is_down): sorting puts an `up` before a `down` at
        // the same instant, and the is_down guard below keeps adjacent
        // windows on one node from bouncing it.
        let mut events: Vec<(u64, usize, bool)> = Vec::new();
        for w in plan.crash_windows() {
            if w.node < n {
                events.push((w.down_at.as_micros(), w.node, true));
                events.push((w.up_at.as_micros(), w.node, false));
            }
        }
        events.sort_unstable();
        let t0 = Instant::now();
        for (t, node, down) in events {
            let target = t0 + Duration::from_micros(t);
            loop {
                self.pump_publisher();
                let now = Instant::now();
                if now >= target {
                    break;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(1)));
            }
            if down {
                self.crash_node(node);
            } else if !plan.is_down(node, SimTime::from_micros(t)) {
                self.restart_node(node);
            }
        }
    }

    /// The sequencing graph the deployment runs.
    pub fn graph(&self) -> &SequencingGraph {
        &self.wiring.graph
    }

    /// Number of sequencing-node threads.
    pub fn num_sequencing_nodes(&self) -> usize {
        self.node_inboxes.len()
    }

    /// The configuration epoch this deployment is currently running.
    pub fn epoch(&self) -> u64 {
        self.wiring.config_epoch
    }

    /// Whether a reconfiguration is staged but has not activated yet.
    pub fn reconfig_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Publishes parked behind the staged reconfiguration (zero when none
    /// is pending).
    pub fn parked_publishes(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.parked.len())
    }

    /// Stages an online reconfiguration to `membership` without stopping
    /// traffic: the current epoch's graph keeps sequencing everything
    /// already accepted, publishes arriving from now on park behind the
    /// handoff (validated against the *next* membership), and
    /// [`Cluster::complete_reconfigure`] performs the actual swap once the
    /// old epoch drains. Returns the epoch that will activate.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ReconfigPending`] if a staged
    /// reconfiguration is already waiting to activate.
    pub fn begin_reconfigure(&mut self, membership: &Membership) -> Result<u64, RuntimeError> {
        if self.pending.is_some() {
            return Err(RuntimeError::ReconfigPending {
                next_epoch: self.wiring.config_epoch + 1,
            });
        }
        self.pending = Some(PendingReconfig {
            membership: membership.clone(),
            parked: Vec::new(),
        });
        Ok(self.wiring.config_epoch + 1)
    }

    /// Completes a staged reconfiguration: waits for every delivery the
    /// current epoch still owes (the handoff drain rule — epoch N is fully
    /// delivered before epoch N+1 sequences anything, so Theorem 1 cannot
    /// be violated across the boundary), tears the old wiring down,
    /// rebuilds threads and links for the next membership at epoch N+1,
    /// and injects the parked publishes in their accepted order. Deliveries
    /// drained while waiting are not lost: they replay through
    /// [`Cluster::wait_for_deliveries`] / [`Cluster::next_delivery`] first.
    /// Stats, wire-size tallies, and trace events accumulate across the
    /// swap. Returns the epoch that just activated.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoPendingReconfig`] if nothing is staged,
    /// or [`RuntimeError::Timeout`] if the old epoch fails to drain in
    /// time — the reconfiguration stays pending so the caller can restart
    /// a crashed node and retry.
    pub fn complete_reconfigure(&mut self, timeout: Duration) -> Result<u64, RuntimeError> {
        if self.pending.is_none() {
            return Err(RuntimeError::NoPendingReconfig);
        }
        let deadline = Instant::now() + timeout;
        while self.deliveries_seen < self.expected_deliveries {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RuntimeError::Timeout {
                    expected: self.expected_deliveries,
                    received: self.deliveries_seen,
                });
            }
            self.pump_publisher();
            match self
                .notes
                .recv_timeout(remaining.min(Duration::from_millis(2)))
            {
                Ok(note) => {
                    self.deliveries_seen += 1;
                    self.carried.push_back(note);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let pending = self.pending.take().expect("pending reconfiguration checked");
        let config = self.wiring.config.clone();
        let next_epoch = self.wiring.config_epoch + 1;
        let prior_trace = self.trace_events();
        self.shutdown();

        let mut next = Cluster::start_inner(&pending.membership, config, next_epoch);
        next.next_id = self.next_id;
        next.expected_deliveries = self.expected_deliveries;
        next.deliveries_seen = self.deliveries_seen;
        next.carried = std::mem::take(&mut self.carried);
        next.prior_stats = merge_stats(self.prior_stats, *self.wiring.stats.lock());
        next.prior_batches = std::mem::take(&mut self.prior_batches);
        for (&size, &count) in self.wiring.batch_sizes.lock().iter() {
            *next.prior_batches.entry(size).or_insert(0) += count;
        }
        next.prior_trace = prior_trace;
        next.publishes_steady = self.publishes_steady;
        next.publishes_parked = self.publishes_parked;
        if let Some(rec) = &next.wiring.trace {
            let mut sink = rec.lock().expect("trace sink poisoned");
            sink.now(next.wiring.epoch.elapsed().as_micros() as u64);
            sink.record(TraceEvent {
                detail: Some(next_epoch),
                ..TraceEvent::new(EventKind::EpochAdvance, Actor::Publisher)
            });
        }
        for (id, sender, group, payload) in pending.parked {
            next.publish_now(id, sender, group, payload)
                .expect("parked publish was validated against the next membership");
        }
        *self = next;
        Ok(next_epoch)
    }

    /// Stops all threads and waits for them. Safe to call twice.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        self.pump_publisher();
        self.pub_engine.flush_stats(&self.wiring);
        for tx in self.wiring.outboxes.values() {
            let _ = tx.send(ThreadMsg::Shutdown);
        }
        for (_, h) in self.node_handles.drain() {
            let _ = h.join();
        }
        for h in self.host_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Aggregated link statistics across all epochs; complete after
    /// [`Cluster::shutdown`].
    pub fn stats(&self) -> RuntimeStats {
        merge_stats(self.prior_stats, *self.wiring.stats.lock())
    }

    /// Wire-write size histogram: transmission count per frames-per-write
    /// (`Body::Data` counts as size 1, a coalesced `Body::DataBatch` as
    /// its run length). The runtime twin of the simulator's
    /// `batch_size_counts`; complete after [`Cluster::shutdown`].
    pub fn batch_size_counts(&self) -> BTreeMap<usize, u64> {
        let mut out = self.prior_batches.clone();
        for (&size, &count) in self.wiring.batch_sizes.lock().iter() {
            *out.entry(size).or_insert(0) += count;
        }
        out
    }

    /// Receives the next delivery from any host within `timeout`, pumping
    /// the publisher while waiting. Returns the delivering host and the
    /// message, or `None` on timeout — the streaming counterpart of
    /// [`Cluster::wait_for_deliveries`] for drivers (load harnesses, soak
    /// tests) that need per-delivery receive timestamps.
    pub fn next_delivery(&mut self, timeout: Duration) -> Option<(NodeId, Message)> {
        self.pop_note(timeout).map(|note| (note.host, note.msg))
    }

    /// The structured trace recorded so far, in emission order; empty
    /// unless the deployment was started with
    /// [`trace`](ClusterConfig::trace). Safe to call while the cluster
    /// runs — it snapshots the shared log under its mutex.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut out = self.prior_trace.clone();
        if let Some(rec) = &self.wiring.trace {
            out.extend_from_slice(rec.lock().expect("trace sink poisoned").events());
        }
        out
    }

    /// Prometheus text exposition of the runtime counters, plus — when
    /// tracing is on — per-event-kind counters, a per-group delivery
    /// latency histogram, and epoch-labelled delivery/buffering families
    /// derived from the trace. Epoch-label cardinality is bounded to the
    /// current and previous epochs ([`fold_epoch`]); the churn path also
    /// surfaces a steady-vs-parked publish counter pair. Deterministic
    /// for a given state, suitable for a scrape endpoint or a CI
    /// artifact.
    pub fn prometheus_text(&self) -> String {
        let stats = self.stats();
        let mut reg = Registry::new();
        reg.inc("crashes_total", None, stats.recovery.crashes);
        reg.inc("duplicate_frames_total", None, stats.duplicates);
        reg.inc("frames_dropped_total", None, stats.frames_dropped);
        reg.inc("frames_replayed_total", None, stats.recovery.frames_replayed);
        reg.inc("frames_sent_total", None, stats.frames_sent);
        reg.inc("heartbeat_misses_total", None, stats.heartbeat_misses);
        reg.inc("publishes_parked_total", None, self.publishes_parked);
        reg.inc("publishes_steady_total", None, self.publishes_steady);
        reg.inc("recovery_micros_total", None, stats.recovery.recovery_micros);
        reg.inc("retransmissions_total", None, stats.retransmissions);
        let current_epoch = self.epoch();
        let mut published: HashMap<u64, u64> = HashMap::new();
        // Buffer events don't carry the message's epoch; attribute them
        // to the epoch active at their point in the stream.
        let mut scan_epoch = 0u64;
        for event in self.trace_events() {
            reg.inc(event_family(event.kind), None, 1);
            match event.kind {
                EventKind::Publish => {
                    if let Some(m) = event.msg {
                        published.insert(m, event.at);
                    }
                }
                EventKind::Buffer(_) => {
                    let epoch = fold_epoch(scan_epoch, current_epoch);
                    reg.inc("buffered_by_epoch_total", Some(epoch), 1);
                }
                EventKind::Deliver => {
                    let epoch = fold_epoch(event.detail.unwrap_or(scan_epoch), current_epoch);
                    reg.inc("deliveries_by_epoch_total", Some(epoch), 1);
                    if let Some(&t0) = event.msg.and_then(|m| published.get(&m)) {
                        let latency = event.at.saturating_sub(t0);
                        reg.observe("delivery_latency_us", event.group, latency);
                        reg.observe("delivery_latency_us_by_epoch", Some(epoch), latency);
                    }
                }
                EventKind::EpochAdvance => {
                    scan_epoch = event.detail.unwrap_or(scan_epoch + 1);
                }
                _ => {}
            }
        }
        prom::exposition(&reg, "seqnet", epoch_or_group_label)
    }
}

/// The label key for a runtime metric family: the epoch-split families
/// use `epoch`, everything else keeps the per-group convention.
fn epoch_or_group_label(family: &'static str) -> &'static str {
    if family.ends_with("_by_epoch_total") || family.ends_with("_by_epoch") {
        "epoch"
    } else {
        "group"
    }
}

/// Bounds epoch-label cardinality: the current and previous epochs keep
/// their own label; anything older folds into the previous one.
fn fold_epoch(epoch: u64, current: u64) -> u64 {
    epoch.max(current.saturating_sub(1)).min(current)
}

/// Prometheus-safe counter family for an event kind (the wire names use
/// hyphens, which are not valid metric-name characters).
fn event_family(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Publish => "events_publish_total",
        EventKind::AtomStamp => "events_atom_stamp_total",
        EventKind::FrameForward => "events_frame_forward_total",
        EventKind::Arrive => "events_arrive_total",
        EventKind::Buffer(_) => "events_buffer_total",
        EventKind::Deliver => "events_deliver_total",
        EventKind::Crash => "events_crash_total",
        EventKind::Replay => "events_replay_total",
        EventKind::SnapshotFlush => "events_snapshot_flush_total",
        EventKind::HeartbeatMiss => "events_heartbeat_miss_total",
        EventKind::EpochAdvance => "events_epoch_advance_total",
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Field-wise sum of two [`RuntimeStats`], used to accumulate counters
/// across the wiring rebuilds a reconfiguration performs.
fn merge_stats(mut a: RuntimeStats, b: RuntimeStats) -> RuntimeStats {
    a.frames_sent += b.frames_sent;
    a.frames_dropped += b.frames_dropped;
    a.retransmissions += b.retransmissions;
    a.duplicates += b.duplicates;
    a.heartbeat_misses += b.heartbeat_misses;
    a.recovery.merge(&b.recovery);
    a
}

fn hash_party(p: Party) -> u64 {
    match p {
        Party::Node(i) => 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
        Party::Host(n) => 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(u64::from(n.0) + 1),
        Party::Publisher => 0x517c_c1b7_2722_0a95,
    }
}

/// Per-thread link machinery: senders, receivers, loss injection, and (for
/// sequencing nodes) the staging area that withholds output frames until a
/// snapshot records them.
#[derive(Debug)]
struct LinkEngine {
    me: Party,
    /// Sequencing nodes defer acks to snapshot time (cumulative
    /// [`Body::AckThrough`]); hosts and the publisher never crash and ack
    /// every data frame immediately.
    defer_acks: bool,
    senders: HashMap<LinkId, LinkSender<Frame>>,
    receivers: HashMap<LinkId, LinkReceiver<Frame>>,
    /// Per incoming link: the highest cumulative ack this party has sent,
    /// i.e. the receive prefix recorded by its last snapshot.
    acked_floor: HashMap<LinkId, u64>,
    /// Output frames registered with their link senders but not yet
    /// transmitted; they leave the node only after the next snapshot.
    staged: Vec<(Party, LinkId, u64, Frame)>,
    rng: StdRng,
    local: RuntimeStats,
    /// Thread-local wire-write size tally, merged into
    /// `Wiring::batch_sizes` by [`LinkEngine::flush_stats`].
    local_batches: BTreeMap<usize, u64>,
    /// Reusable scratch buffers (the PR 5 `CommandBuf` discipline applied
    /// to the link layer): flush ordering, coalesced runs, retransmission
    /// sweeps, and the drained staging area all run against these, so
    /// steady-state housekeeping performs no allocation.
    order_scratch: Vec<(Party, LinkId)>,
    single_scratch: Vec<(u64, Frame)>,
    run_scratch: Vec<(u64, Vec<Frame>)>,
    staged_scratch: Vec<(Party, LinkId, u64, Frame)>,
    due_frames: Vec<(u64, Frame)>,
    due_wire: Vec<(LinkId, u64, Frame)>,
}

impl LinkEngine {
    fn new(me: Party, seed: u64, defer_acks: bool) -> Self {
        LinkEngine {
            me,
            defer_acks,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            acked_floor: HashMap::new(),
            staged: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            local: RuntimeStats::default(),
            local_batches: BTreeMap::new(),
            order_scratch: Vec::new(),
            single_scratch: Vec::new(),
            run_scratch: Vec::new(),
            staged_scratch: Vec::new(),
            due_frames: Vec::new(),
            due_wire: Vec::new(),
        }
    }

    fn sender_for(&mut self, wiring: &Wiring, link: LinkId) -> &mut LinkSender<Frame> {
        self.senders.entry(link).or_insert_with(|| {
            LinkSender::with_backoff(wiring.config.retransmit_timeout, wiring.config.backoff_cap)
        })
    }

    /// Sends `data` over the reliable link `me -> to`, transmitting
    /// immediately. Used by the publisher, which never crashes.
    fn send_data(&mut self, wiring: &Wiring, to: Party, data: Frame) {
        let link = wiring.link_between(self.me, to);
        let (seq, payload) = self.sender_for(wiring, link).send(data);
        self.transmit(wiring, to, link, seq, Body::Data(payload));
    }

    /// Registers `data` on the reliable link `me -> to` but *stages* it:
    /// the frame owns its sequence number and will appear in the next
    /// snapshot, yet reaches the wire only via [`flush_staged`]
    /// (after that snapshot is durable). Used by sequencing nodes.
    ///
    /// [`flush_staged`]: Self::flush_staged
    fn send_data_held(&mut self, wiring: &Wiring, to: Party, data: Frame) {
        let link = wiring.link_between(self.me, to);
        let (seq, payload) = self.sender_for(wiring, link).send_held(data);
        self.staged.push((to, link, seq, payload));
    }

    /// Transmits all staged frames and hands them to the normal
    /// retransmission schedule. Call only after the snapshot recording
    /// them has been stored. With [`ClusterConfig::coalesce`] set, the
    /// staged frames on each link leave as one [`Body::DataBatch`] per
    /// maximal run of consecutive sequence numbers (in practice one
    /// batch per link per flush) instead of one message each.
    fn flush_staged(&mut self, wiring: &Wiring) {
        if wiring.config.coalesce {
            // Links in order of first staged frame; within a link, the
            // sender's buffer is already in sequence (= staging) order.
            // Scratch buffers are swapped out, drained, and swapped back
            // so a flush allocates only the per-run wire vectors.
            let mut order = std::mem::take(&mut self.order_scratch);
            order.clear();
            for &(to, link, _, _) in &self.staged {
                if !order.contains(&(to, link)) {
                    order.push((to, link));
                }
            }
            self.staged.clear();
            let mut singles = std::mem::take(&mut self.single_scratch);
            let mut runs = std::mem::take(&mut self.run_scratch);
            for (to, link) in order.drain(..) {
                singles.clear();
                runs.clear();
                self.sender_for(wiring, link)
                    .release_held_wire(&mut singles, &mut runs);
                // Merge the two streams back into sequence order, so the
                // receiver sees an in-order wire and never has to buffer.
                let mut si = singles.drain(..).peekable();
                let mut rj = runs.drain(..).peekable();
                loop {
                    let single_first = si.peek().map(|&(seq, _)| seq);
                    let run_first = rj.peek().map(|&(seq, _)| seq);
                    let take_single = match (single_first, run_first) {
                        (Some(s), Some(r)) => s < r,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    if take_single {
                        let (seq, data) = si.next().expect("peeked");
                        self.transmit(wiring, to, link, seq, Body::Data(data));
                    } else {
                        let (first, frames) = rj.next().expect("peeked");
                        self.transmit(wiring, to, link, first, Body::DataBatch(frames));
                    }
                }
            }
            self.order_scratch = order;
            self.single_scratch = singles;
            self.run_scratch = runs;
        } else {
            let mut staged = std::mem::take(&mut self.staged_scratch);
            std::mem::swap(&mut staged, &mut self.staged);
            debug_assert!(self.staged.is_empty());
            for (to, link, seq, data) in staged.drain(..) {
                self.transmit(wiring, to, link, seq, Body::Data(data));
            }
            self.staged_scratch = staged;
        }
        for sender in self.senders.values_mut() {
            sender.release_held();
        }
    }

    /// Puts one frame (or one coalesced run) on the wire, possibly
    /// dropping it — loss applies per wire write, so a dropped batch
    /// loses all its frames at once (each recovers individually via
    /// retransmission).
    fn transmit(&mut self, wiring: &Wiring, to: Party, link: LinkId, seq: u64, body: Body) {
        match &body {
            Body::Data(_) => {
                self.local.frames_sent += 1;
                *self.local_batches.entry(1).or_insert(0) += 1;
            }
            Body::DataBatch(frames) => {
                self.local.frames_sent += frames.len() as u64;
                *self.local_batches.entry(frames.len()).or_insert(0) += 1;
            }
            _ => {}
        }
        if wiring.config.drop_probability > 0.0
            && self.rng.gen_bool(wiring.config.drop_probability)
        {
            self.local.frames_dropped += 1;
            return;
        }
        if let Some(delayer) = &wiring.delayer {
            let jitter = wiring
                .config
                .link_delay
                .mul_f64(self.rng.gen_range(0.0..=1.0));
            let _ = delayer.send(DelayedFrame {
                release_at: Instant::now() + jitter,
                to,
                link,
                seq,
                body,
            });
        } else {
            let _ = wiring.outboxes[&to].send(ThreadMsg::Frame { link, seq, body });
        }
    }

    /// Handles an incoming frame; returns in-order data payloads.
    #[cfg(test)]
    fn on_frame(&mut self, wiring: &Wiring, link: LinkId, seq: u64, body: Body) -> Vec<Frame> {
        let mut out = Vec::new();
        self.on_frame_into(wiring, link, seq, body, &mut out);
        out
    }

    /// Handles an incoming frame, appending in-order data payloads to the
    /// caller-owned `out` buffer; returns how many were appended. The
    /// thread loops reuse one buffer across all arrivals, so the in-order
    /// steady state processes a frame without touching the allocator.
    fn on_frame_into(
        &mut self,
        wiring: &Wiring,
        link: LinkId,
        seq: u64,
        body: Body,
        out: &mut Vec<Frame>,
    ) -> usize {
        match body {
            Body::Ack => {
                if let Some(sender) = self.senders.get_mut(&link) {
                    sender.acknowledge(seq);
                }
                0
            }
            Body::AckThrough => {
                if let Some(sender) = self.senders.get_mut(&link) {
                    sender.acknowledge_through(seq);
                }
                0
            }
            Body::Heartbeat => 0,
            Body::Data(data) => {
                let (from, _to) = wiring.links[link.0 as usize];
                if self.defer_acks {
                    // No ack before a snapshot covers the frame. But if
                    // the sender is retransmitting below our snapshotted
                    // floor (it missed the cumulative ack, or it was
                    // restored from an old checkpoint), re-advertise it.
                    let stale = self
                        .receivers
                        .get(&link)
                        .is_some_and(|r| seq < r.next_expected());
                    if stale {
                        let floor = self.acked_floor.get(&link).copied().unwrap_or(0);
                        if floor > 0 {
                            self.transmit(wiring, from, link, floor, Body::AckThrough);
                        }
                    }
                } else {
                    // Acknowledge every data frame, duplicates included.
                    self.transmit(wiring, from, link, seq, Body::Ack);
                }
                let receiver = self.receivers.entry(link).or_default();
                let released = receiver.receive_into(seq, data, out);
                self.local.duplicates = self
                    .receivers
                    .values()
                    .map(|r| r.duplicates())
                    .sum();
                released
            }
            Body::DataBatch(frames) => {
                if frames.is_empty() {
                    return 0;
                }
                let (from, _to) = wiring.links[link.0 as usize];
                let last = seq + frames.len() as u64 - 1;
                if self.defer_acks {
                    // Same stale-retransmission rule as single frames: a
                    // whole run below our snapshotted floor means the
                    // sender missed the cumulative ack — re-advertise it.
                    let stale = self
                        .receivers
                        .get(&link)
                        .is_some_and(|r| last < r.next_expected());
                    if stale {
                        let floor = self.acked_floor.get(&link).copied().unwrap_or(0);
                        if floor > 0 {
                            self.transmit(wiring, from, link, floor, Body::AckThrough);
                        }
                    }
                }
                let receiver = self.receivers.entry(link).or_default();
                let released = receiver.receive_batch_into(seq, frames, out);
                let floor = receiver.next_expected() - 1;
                if !self.defer_acks && floor > 0 {
                    // One cumulative ack covers the whole wire batch (and
                    // any earlier frames it released).
                    self.transmit(wiring, from, link, floor, Body::AckThrough);
                }
                self.local.duplicates = self
                    .receivers
                    .values()
                    .map(|r| r.duplicates())
                    .sum();
                released
            }
        }
    }

    /// Retransmits overdue frames on all outgoing links. Runs every tick
    /// on every thread, so the sweep goes through reusable scratch: with
    /// nothing due — the healthy steady state — it allocates nothing.
    fn retransmit_due(&mut self, wiring: &Wiring) {
        let mut frames = std::mem::take(&mut self.due_frames);
        let mut wire = std::mem::take(&mut self.due_wire);
        for (&link, sender) in self.senders.iter_mut() {
            frames.clear();
            sender.due_for_retransmit_into(&mut frames);
            for (seq, data) in frames.drain(..) {
                wire.push((link, seq, data));
            }
        }
        for (link, seq, data) in wire.drain(..) {
            let (_, to) = wiring.links[link.0 as usize];
            self.transmit(wiring, to, link, seq, Body::Data(data));
        }
        self.due_frames = frames;
        self.due_wire = wire;
        self.local.retransmissions = self.senders.values().map(|s| s.retransmissions()).sum();
    }

    /// Checkpoints this node's durable state into the shared snapshot
    /// store and reports, per upstream peer, the next in-order sequence
    /// number the snapshot recorded (sorted by peer for determinism).
    /// The caller feeds that into [`NodeCore`] as an
    /// [`Event::SnapshotTaken`]; the resulting [`Command::Flush`] and
    /// [`Command::Ack`]s release staged outputs and cumulative acks — and
    /// only then, so nothing escapes the node before a snapshot
    /// containing it.
    fn persist_snapshot(
        &mut self,
        wiring: &Wiring,
        idx: usize,
        protocol: &ProtocolState,
    ) -> Vec<(Party, u64)> {
        // Reuse the previous checkpoint's allocations: pull it out of the
        // store, rebuild it in place, and put it back. The link set is
        // fixed per wiring, so after the first interval the maps and
        // per-link frame vectors are rebuilt without fresh allocation
        // (aside from cloning the unacknowledged frames themselves).
        let prev = wiring.snapshots.lock().remove(&idx);
        let mut snap = prev.unwrap_or_else(|| NodeSnapshot {
            protocol: ProtocolState::default(),
            rx_next: HashMap::new(),
            tx_state: HashMap::new(),
        });
        snap.protocol.clone_from(protocol);
        snap.rx_next.clear();
        for (&link, r) in &self.receivers {
            snap.rx_next.insert(link, r.next_expected());
        }
        for (&link, s) in &self.senders {
            let entry = snap.tx_state.entry(link).or_insert_with(|| (0, Vec::new()));
            entry.1.clear();
            entry.0 = s.snapshot_into(&mut entry.1);
        }
        let mut by_peer: Vec<(Party, u64)> = snap
            .rx_next
            .iter()
            .map(|(&link, &next)| (wiring.links[link.0 as usize].0, next))
            .collect();
        wiring.snapshots.lock().insert(idx, snap);
        by_peer.sort_unstable();
        by_peer
    }

    /// Sends a cumulative ack to `to` covering everything through `through`
    /// on the incoming link `to -> me`, and caches the new floor for
    /// stale-frame re-advertisement. Executes [`Command::Ack`] — the
    /// protocol core has already decided the floor actually advanced.
    fn send_ack_through(&mut self, wiring: &Wiring, to: Party, through: u64) {
        let link = wiring.link_between(to, self.me);
        self.acked_floor.insert(link, through);
        self.transmit(wiring, to, link, through, Body::AckThrough);
    }

    /// Rebuilds link state from a snapshot. Restored output frames are
    /// immediately due for retransmission (the peer may never have seen
    /// them); the acked floors match what the snapshot had advertised.
    fn restore(&mut self, wiring: &Wiring, snap: &NodeSnapshot) {
        for (&link, &next) in &snap.rx_next {
            self.receivers.insert(link, LinkReceiver::resume(next));
            self.acked_floor.insert(link, next.saturating_sub(1));
        }
        for (&link, (next_seq, frames)) in &snap.tx_state {
            self.senders.insert(
                link,
                LinkSender::resume(
                    wiring.config.retransmit_timeout,
                    wiring.config.backoff_cap,
                    *next_seq,
                    frames.clone(),
                ),
            );
        }
    }

    fn flush_stats(&self, wiring: &Wiring) {
        let mut stats = wiring.stats.lock();
        stats.frames_sent += self.local.frames_sent;
        stats.frames_dropped += self.local.frames_dropped;
        stats.retransmissions += self.local.retransmissions;
        stats.duplicates += self.local.duplicates;
        stats.recovery.merge(&self.local.recovery);
        stats.heartbeat_misses += self.local.heartbeat_misses;
        let mut sizes = wiring.batch_sizes.lock();
        for (&size, &count) in &self.local_batches {
            *sizes.entry(size).or_insert(0) += count;
        }
    }
}

/// A sequencing-node thread: processes its atoms, forwards along paths,
/// checkpoints periodically, heartbeats its downstream peers, and watches
/// its upstream peers for silence. `restarted` marks a post-crash
/// incarnation that should restore the latest snapshot and account the
/// replay it receives.
fn node_thread(
    idx: usize,
    inbox: Receiver<ThreadMsg>,
    wiring: Arc<Wiring>,
    seed: u64,
    kill: Arc<AtomicBool>,
    restarted: bool,
) {
    let config = &wiring.config;
    let trace = wiring.trace.clone();
    let mut engine = LinkEngine::new(Party::Node(idx), seed, true);
    let mut protocol = ProtocolState::new(&wiring.graph);
    // Messages sequenced by this wiring are stamped with its epoch; a
    // snapshot restore below overwrites this with the snapshotted epoch.
    protocol.set_epoch(wiring.config_epoch);
    // Group-commit mode: the core *stages* every output frame, and this
    // driver releases them only after a snapshot records them.
    let mut core = NodeCore::new(idx, true);
    // Reused command buffer: the batched fast path appends into it, so
    // after warm-up the per-frame hot loop allocates nothing.
    let mut cmdbuf = CommandBuf::new();
    let routing = Routing::colocated(&wiring.membership, &wiring.graph, &wiring.atom_node);
    let started = Instant::now();
    let mut replaying = restarted;
    let mut replayed: u64 = 0;

    if restarted {
        let snap = wiring.snapshots.lock().get(&idx).cloned();
        if let Some(snap) = snap {
            protocol = snap.protocol.clone();
            engine.restore(&wiring, &snap);
            // Seed the core's ack floors to match what the snapshot had
            // advertised, so the next snapshot only acks real progress.
            for (&link, &next) in &snap.rx_next {
                let (from, _to) = wiring.links[link.0 as usize];
                core.restore_floor(from, next.saturating_sub(1));
            }
        }
        // No snapshot: nothing ever escaped this node (outputs and acks
        // only leave at snapshot time), so a fresh start is consistent.
    }

    // Peers with links into this node, for heartbeat-based failure
    // detection; peers this node heartbeats, i.e. its outgoing node links.
    let mut watched: HashMap<usize, (Instant, bool)> = HashMap::new();
    let mut hb_out: Vec<(Party, LinkId)> = Vec::new();
    for (i, &(from, to)) in wiring.links.iter().enumerate() {
        match (from, to) {
            (Party::Node(p), Party::Node(q)) if q == idx => {
                watched.insert(p, (Instant::now(), false));
            }
            (Party::Node(p), Party::Node(_)) if p == idx => {
                hb_out.push((to, LinkId(i as u32)));
            }
            _ => {}
        }
    }

    let tick = config
        .snapshot_interval
        .min(config.retransmit_timeout / 2)
        .max(Duration::from_millis(1));
    let mut last_snapshot = Instant::now();
    let mut last_heartbeat = Instant::now();
    // Loop-owned scratch: the inbox batch and released-frame buffers are
    // reused across iterations, so the steady-state receive path does not
    // allocate. `dirty` tracks whether anything snapshot-worthy happened
    // since the last checkpoint; identical snapshots are skipped (an idle
    // node re-persisting the same state buys nothing and costs clones).
    let mut batch: Vec<ThreadMsg> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut dirty = false;

    loop {
        if kill.load(Ordering::Relaxed) {
            // Simulated crash: volatile state is lost, no final snapshot.
            engine.flush_stats(&wiring);
            return;
        }

        // Block briefly for one message, then drain the immediate backlog
        // (bounded, so housekeeping still runs under flood) — a restarted
        // node chews through queued retransmissions before its first
        // checkpoint this way.
        batch.clear();
        match inbox.recv_timeout(tick) {
            Ok(m) => batch.push(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while batch.len() < 256 {
            match inbox.try_recv() {
                Ok(m) => batch.push(m),
                Err(_) => break,
            }
        }
        let mut shutdown = false;
        for msg in batch.drain(..) {
            match msg {
                ThreadMsg::Shutdown => shutdown = true,
                ThreadMsg::Frame { link, seq, body } => {
                    let (from, _to) = wiring.links[link.0 as usize];
                    if let Party::Node(p) = from {
                        if let Some(entry) = watched.get_mut(&p) {
                            *entry = (Instant::now(), false);
                        }
                    }
                    frames.clear();
                    let released = engine.on_frame_into(&wiring, link, seq, body, &mut frames);
                    if released == 0 {
                        continue;
                    }
                    dirty = true;
                    if replaying {
                        replayed += released as u64;
                    }
                    let events = frames
                        .drain(..)
                        .map(|data| Event::FrameArrived { frame: data });
                    cmdbuf.clear();
                    if let Some(rec) = &trace {
                        let mut sink = rec.lock().expect("trace sink poisoned");
                        sink.now(wiring.epoch.elapsed().as_micros() as u64);
                        core.on_events_traced(
                            &routing,
                            &mut protocol,
                            events,
                            &mut *sink,
                            &mut cmdbuf,
                        );
                    } else {
                        core.on_events(&routing, &mut protocol, events, &mut cmdbuf);
                    }
                    for cmd in cmdbuf.drain() {
                        match cmd {
                            Command::Stage { to, frame } => {
                                engine.send_data_held(&wiring, to, frame);
                            }
                            other => {
                                unreachable!("group-commit frames only stage: {other:?}")
                            }
                        }
                    }
                }
            }
        }
        if shutdown {
            break;
        }

        let now = Instant::now();
        if (dirty || !engine.staged.is_empty())
            && now.duration_since(last_snapshot) >= config.snapshot_interval
        {
            let rx_next = engine.persist_snapshot(&wiring, idx, &protocol);
            let staged_frames = engine.staged.len() as u64;
            let event = Event::SnapshotTaken { rx_next };
            cmdbuf.clear();
            if let Some(rec) = &trace {
                let mut sink = rec.lock().expect("trace sink poisoned");
                sink.now(wiring.epoch.elapsed().as_micros() as u64);
                core.on_events_traced(
                    &routing,
                    &mut protocol,
                    std::iter::once(event),
                    &mut *sink,
                    &mut cmdbuf,
                );
            } else {
                core.on_events(&routing, &mut protocol, std::iter::once(event), &mut cmdbuf);
            }
            for cmd in cmdbuf.drain() {
                match cmd {
                    Command::Flush => {
                        if let Some(rec) = &trace {
                            let mut sink = rec.lock().expect("trace sink poisoned");
                            sink.now(wiring.epoch.elapsed().as_micros() as u64);
                            sink.record(TraceEvent {
                                detail: Some(staged_frames),
                                ..TraceEvent::new(
                                    EventKind::SnapshotFlush,
                                    Actor::Node(idx as u64),
                                )
                            });
                        }
                        engine.flush_staged(&wiring);
                    }
                    Command::Ack { to, through } => {
                        engine.send_ack_through(&wiring, to, through);
                    }
                    other => unreachable!("snapshots only flush and ack: {other:?}"),
                }
            }
            last_snapshot = now;
            dirty = false;
            if replaying && replayed > 0 {
                // Recovery complete: the replayed input is durable again.
                replaying = false;
                engine.local.recovery.frames_replayed += replayed;
                replayed = 0;
                engine.local.recovery.recovery_micros += started.elapsed().as_micros() as u64;
            }
        }
        if now.duration_since(last_heartbeat) >= config.heartbeat_interval {
            for &(to, link) in &hb_out {
                engine.transmit(&wiring, to, link, 0, Body::Heartbeat);
            }
            last_heartbeat = now;
        }
        for (&peer, (seen, suspected)) in watched.iter_mut() {
            if !*suspected
                && now.duration_since(*seen)
                    >= config.heartbeat_interval * config.heartbeat_miss_threshold
            {
                *suspected = true;
                engine.local.heartbeat_misses += 1;
                if let Some(rec) = &trace {
                    let mut sink = rec.lock().expect("trace sink poisoned");
                    sink.now(wiring.epoch.elapsed().as_micros() as u64);
                    sink.record(TraceEvent {
                        detail: Some(peer as u64),
                        ..TraceEvent::new(
                            EventKind::HeartbeatMiss,
                            Actor::Node(idx as u64),
                        )
                    });
                }
            }
        }
        engine.retransmit_due(&wiring);
    }
    engine.local.recovery.frames_replayed += replayed;
    engine.local.recovery.merge(core.recovery_stats());
    engine.flush_stats(&wiring);
}

/// A subscriber-host thread: reliable link termination plus the delivery
/// queue. Hosts never crash, so they acknowledge every frame immediately.
fn host_thread(
    host: NodeId,
    inbox: Receiver<ThreadMsg>,
    wiring: Arc<Wiring>,
    notes: Sender<DeliveryNote>,
    seed: u64,
) {
    let trace = wiring.trace.clone();
    let mut engine = LinkEngine::new(Party::Host(host), seed, false);
    let mut receiver = ReceiverCore::new(host, &wiring.membership, &wiring.graph);
    let mut cmdbuf = CommandBuf::new();
    let tick = wiring.config.retransmit_timeout / 2;
    // Reused released-frame buffer: the in-order hot path allocates
    // nothing between wire arrival and the delivery note.
    let mut frames: Vec<Frame> = Vec::new();

    loop {
        let msg = match inbox.recv_timeout(tick.max(Duration::from_millis(1))) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            Some(ThreadMsg::Shutdown) => break,
            Some(ThreadMsg::Frame { link, seq, body }) => {
                frames.clear();
                let released = engine.on_frame_into(&wiring, link, seq, body, &mut frames);
                if released > 0 {
                    let events = frames
                        .drain(..)
                        .map(|data| Event::FrameArrived { frame: data });
                    cmdbuf.clear();
                    if let Some(rec) = &trace {
                        let mut sink = rec.lock().expect("trace sink poisoned");
                        sink.now(wiring.epoch.elapsed().as_micros() as u64);
                        receiver.offer_batch_traced(events, &mut *sink, &mut cmdbuf);
                    } else {
                        receiver.offer_batch(events, &mut cmdbuf);
                    }
                    for cmd in cmdbuf.drain() {
                        match cmd {
                            Command::Deliver { host, msg } => {
                                let _ = notes.send(DeliveryNote { host, msg });
                            }
                            other => unreachable!("receivers only deliver: {other:?}"),
                        }
                    }
                }
            }
            None => {}
        }
        engine.retransmit_due(&wiring);
    }
    engine.flush_stats(&wiring);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn overlapped_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        assert!(ClusterConfig::default().validate().is_ok());

        let cases: [(ClusterConfig, &str); 6] = [
            (
                ClusterConfig {
                    drop_probability: 1.0,
                    ..ClusterConfig::default()
                },
                "drop_probability",
            ),
            (
                ClusterConfig {
                    retransmit_timeout: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "retransmit_timeout",
            ),
            (
                ClusterConfig {
                    backoff_cap: Duration::from_millis(1),
                    ..ClusterConfig::default()
                },
                "backoff_cap",
            ),
            (
                ClusterConfig {
                    snapshot_interval: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "snapshot_interval",
            ),
            (
                ClusterConfig {
                    heartbeat_interval: Duration::ZERO,
                    ..ClusterConfig::default()
                },
                "heartbeat_interval",
            ),
            (
                ClusterConfig {
                    heartbeat_miss_threshold: 0,
                    ..ClusterConfig::default()
                },
                "heartbeat_miss_threshold",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().expect_err(field);
            assert!(
                err.contains(field),
                "error for {field} should name the field, got: {err}"
            );
        }
    }

    #[test]
    fn reliable_links_deliver_everything() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), b"a".to_vec()).unwrap();
        cluster.publish(n(3), g(1), b"b".to_vec()).unwrap();
        // g0 has 3 members, g1 has 3 members.
        let deliveries = cluster
            .wait_for_deliveries(6, Duration::from_secs(5))
            .unwrap();
        assert_eq!(deliveries[&n(1)].len(), 2);
        assert_eq!(deliveries[&n(0)].len(), 1);
        cluster.shutdown();
        assert_eq!(cluster.stats().frames_dropped, 0);
    }

    #[test]
    fn overlap_members_agree_on_order() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        let mut published = 0usize;
        for i in 0..8u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            published += 3; // both groups have three members
        }
        let deliveries = cluster
            .wait_for_deliveries(published, Duration::from_secs(5))
            .unwrap();
        let order = |node: NodeId| -> Vec<MessageId> {
            deliveries[&node].iter().map(|m| m.id).collect()
        };
        assert_eq!(order(n(1)), order(n(2)), "overlap members agree");
        assert_eq!(order(n(1)).len(), 8);
        cluster.shutdown();
    }

    #[test]
    fn lossy_links_recover_via_retransmission() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            drop_probability: 0.3,
            retransmit_timeout: Duration::from_millis(5),
            seed: 42,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for i in 0..6u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            expected += 3;
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap();
        assert_eq!(
            deliveries[&n(1)].iter().map(|m| m.id).collect::<Vec<_>>(),
            deliveries[&n(2)].iter().map(|m| m.id).collect::<Vec<_>>(),
            "loss and retransmission must not break the order"
        );
        cluster.shutdown();
        let stats = cluster.stats();
        assert!(stats.frames_dropped > 0, "loss injector actually fired");
        assert!(stats.retransmissions > 0, "retransmission actually fired");
    }

    #[test]
    fn coalesced_flushes_preserve_delivery_order() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            coalesce: true,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut published = 0usize;
        for i in 0..8u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            published += 3;
        }
        let deliveries = cluster
            .wait_for_deliveries(published, Duration::from_secs(5))
            .unwrap();
        let order = |node: NodeId| -> Vec<MessageId> {
            deliveries[&node].iter().map(|m| m.id).collect()
        };
        assert_eq!(order(n(1)), order(n(2)), "coalescing must not reorder");
        assert_eq!(order(n(1)).len(), 8);
        cluster.shutdown();
        assert_eq!(cluster.stats().frames_dropped, 0);
    }

    #[test]
    fn coalesced_lossy_links_recover_via_retransmission() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            coalesce: true,
            drop_probability: 0.3,
            retransmit_timeout: Duration::from_millis(5),
            seed: 42,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for i in 0..6u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            expected += 3;
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap();
        assert_eq!(
            deliveries[&n(1)].iter().map(|m| m.id).collect::<Vec<_>>(),
            deliveries[&n(2)].iter().map(|m| m.id).collect::<Vec<_>>(),
            "a dropped batch must recover frame by frame without reordering"
        );
        cluster.shutdown();
        assert!(cluster.stats().frames_dropped > 0, "loss injector fired");
    }

    #[test]
    fn unknown_group_rejected() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        assert_eq!(
            cluster.publish(n(0), g(9), vec![]),
            Err(RuntimeError::UnknownGroup(g(9)))
        );
        cluster.shutdown();
    }

    #[test]
    fn timeout_reports_progress() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), vec![]).unwrap();
        let err = cluster
            .wait_for_deliveries(100, Duration::from_millis(300))
            .unwrap_err();
        match err {
            RuntimeError::Timeout { expected, received } => {
                assert_eq!(expected, 100);
                assert_eq!(received, 3, "the three real deliveries arrived");
            }
            other => panic!("unexpected error {other}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn per_publisher_fifo_preserved() {
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        let ids: Vec<MessageId> = (0..10)
            .map(|i| cluster.publish(n(0), g(0), vec![i as u8]).unwrap())
            .collect();
        let deliveries = cluster
            .wait_for_deliveries(20, Duration::from_secs(5))
            .unwrap();
        for node in [n(0), n(1)] {
            let got: Vec<MessageId> = deliveries[&node].iter().map(|m| m.id).collect();
            assert_eq!(got, ids, "{node} must deliver in publish order");
        }
        cluster.shutdown();
    }

    #[test]
    fn tracing_records_the_full_pipeline() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            trace: true,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        cluster.publish(n(0), g(0), b"x".to_vec()).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();
        cluster.shutdown();
        let events = cluster.trace_events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Publish), 1);
        assert!(count(EventKind::AtomStamp) >= 1, "sequencing was traced");
        assert_eq!(count(EventKind::Arrive), 3, "one arrival per member");
        assert_eq!(count(EventKind::Deliver), 3, "one delivery per member");
        assert!(
            count(EventKind::SnapshotFlush) >= 1,
            "the frames escaped via a snapshot flush"
        );
        let prom = cluster.prometheus_text();
        assert!(prom.contains("seqnet_events_deliver_total 3"), "{prom}");
        assert!(
            prom.contains("# TYPE seqnet_delivery_latency_us histogram"),
            "{prom}"
        );
    }

    #[test]
    fn untraced_cluster_records_nothing() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), vec![]).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();
        cluster.shutdown();
        assert!(cluster.trace_events().is_empty());
        // The exposition still renders the plain runtime counters.
        let prom = cluster.prometheus_text();
        assert!(prom.contains("# TYPE seqnet_frames_sent_total counter"));
        assert!(!prom.contains("seqnet_events_deliver_total"));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn crash_and_restart_recovers() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), b"before".to_vec()).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();

        assert!(cluster.crash_node(0), "node 0 was running");
        assert!(!cluster.crash_node(0), "second kill is a no-op");
        // Publish into the outage: the frame queues (or retries from the
        // publisher's link buffer) until the node is back.
        cluster.publish(n(3), g(1), b"during".to_vec()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(cluster.restart_node(0), "node 0 was down");
        assert!(!cluster.restart_node(0), "second restart is a no-op");
        cluster.publish(n(0), g(0), b"after".to_vec()).unwrap();

        let deliveries = cluster
            .wait_for_deliveries(6, Duration::from_secs(10))
            .unwrap();
        let total: usize = deliveries.values().map(Vec::len).sum();
        assert_eq!(total, 6, "nothing is lost across the crash");
        cluster.shutdown();
        assert_eq!(cluster.stats().recovery.crashes, 1);
    }

    #[test]
    fn live_reconfigure_parks_publishes_and_advances_the_epoch() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        assert_eq!(cluster.epoch(), 0);
        assert_eq!(
            cluster.complete_reconfigure(Duration::from_secs(1)),
            Err(RuntimeError::NoPendingReconfig)
        );
        cluster.publish(n(0), g(0), b"old".to_vec()).unwrap();

        // n4 joins g1 while the epoch-0 publish is still in flight.
        let next = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3), n(4)]),
        ]);
        assert_eq!(cluster.begin_reconfigure(&next), Ok(1));
        assert_eq!(
            cluster.begin_reconfigure(&next),
            Err(RuntimeError::ReconfigPending { next_epoch: 1 })
        );
        assert!(cluster.reconfig_pending());

        // Publishes during the handoff validate against the next
        // membership and park behind it.
        assert_eq!(
            cluster.publish(n(0), g(9), b"?".to_vec()),
            Err(RuntimeError::UnknownGroup(g(9)))
        );
        cluster.publish(n(3), g(1), b"new".to_vec()).unwrap();
        assert_eq!(cluster.parked_publishes(), 1);

        assert_eq!(cluster.complete_reconfigure(Duration::from_secs(10)), Ok(1));
        assert_eq!(cluster.epoch(), 1);
        assert!(!cluster.reconfig_pending());

        // 3 epoch-0 deliveries (g0) + 4 epoch-1 deliveries (grown g1).
        let deliveries = cluster
            .wait_for_deliveries(7, Duration::from_secs(10))
            .unwrap();
        assert_eq!(deliveries.values().map(Vec::len).sum::<usize>(), 7);
        let n1: Vec<(MessageId, u64)> =
            deliveries[&n(1)].iter().map(|m| (m.id, m.epoch)).collect();
        assert_eq!(n1.len(), 2, "n1 subscribes in both epochs");
        assert_eq!(n1[0].1, 0, "the in-flight publish kept its old epoch");
        assert_eq!(n1[1].1, 1, "the parked publish sequenced in the new epoch");
        assert_eq!(
            deliveries[&n(4)].iter().map(|m| m.epoch).collect::<Vec<_>>(),
            vec![1],
            "the joiner sees only new-epoch traffic"
        );
        cluster.shutdown();
    }

    #[test]
    fn reconfigure_preserves_stats_and_traces_across_the_swap() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            trace: true,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        cluster.publish(n(0), g(0), b"a".to_vec()).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();

        cluster.begin_reconfigure(&m).unwrap();
        assert_eq!(cluster.complete_reconfigure(Duration::from_secs(10)), Ok(1));
        // Node threads flush their counters when the old wiring is torn
        // down, so everything epoch 0 sent is visible right after the swap.
        let sent_before = cluster.stats().frames_sent;
        assert!(sent_before > 0, "epoch-0 counters carried into epoch 1");
        cluster.publish(n(0), g(0), b"b".to_vec()).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();
        cluster.shutdown();

        assert!(
            cluster.stats().frames_sent > sent_before,
            "old-epoch counters survive the wiring rebuild"
        );
        let events = cluster.trace_events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Publish), 2, "both epochs' traces retained");
        assert_eq!(count(EventKind::EpochAdvance), 1);
        let advance = events
            .iter()
            .find(|e| e.kind == EventKind::EpochAdvance)
            .unwrap();
        assert_eq!(advance.detail, Some(1), "detail carries the new epoch");
        assert!(cluster
            .prometheus_text()
            .contains("seqnet_events_epoch_advance_total 1"));
    }

    #[test]
    fn crash_during_handoff_recovers_into_the_old_epoch_then_advances() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), b"before".to_vec()).unwrap();
        cluster
            .wait_for_deliveries(3, Duration::from_secs(5))
            .unwrap();

        // Kill a node, stage a reconfiguration over the outage, and
        // publish into the handoff: the parked message must wait for the
        // restarted node to drain epoch 0 first.
        assert!(cluster.crash_node(0));
        cluster.publish(n(0), g(0), b"inflight".to_vec()).unwrap();
        let next = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3), n(4)]),
        ]);
        cluster.begin_reconfigure(&next).unwrap();
        cluster.publish(n(3), g(1), b"parked".to_vec()).unwrap();

        // The drain cannot finish while the node is down.
        match cluster.complete_reconfigure(Duration::from_millis(200)) {
            Err(RuntimeError::Timeout { .. }) => {}
            other => panic!("expected a drain timeout, got {other:?}"),
        }
        assert!(cluster.reconfig_pending(), "a failed drain stays pending");

        assert!(cluster.restart_node(0));
        assert_eq!(cluster.complete_reconfigure(Duration::from_secs(20)), Ok(1));
        let deliveries = cluster
            .wait_for_deliveries(7, Duration::from_secs(10))
            .unwrap();
        for msg in deliveries.values().flatten() {
            let want = if msg.payload.as_ref() == b"parked" { 1 } else { 0 };
            assert_eq!(msg.epoch, want, "epoch stamp survives crash recovery");
        }
        cluster.shutdown();
        assert_eq!(cluster.stats().recovery.crashes, 1);
    }

    #[test]
    fn fault_plan_crash_windows_execute() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        let nodes = cluster.num_sequencing_nodes();
        assert!(nodes >= 1);
        let plan = FaultPlan::new().crash(
            0,
            SimTime::from_micros(5_000),
            SimTime::from_micros(40_000),
        );
        for i in 0..4u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
        }
        cluster.run_fault_plan(&plan);
        let deliveries = cluster
            .wait_for_deliveries(12, Duration::from_secs(10))
            .unwrap();
        assert_eq!(deliveries.values().map(Vec::len).sum::<usize>(), 12);
        assert_eq!(
            deliveries[&n(1)].iter().map(|m| m.id).collect::<Vec<_>>(),
            deliveries[&n(2)].iter().map(|m| m.id).collect::<Vec<_>>(),
            "order agreement survives the crash window"
        );
        cluster.shutdown();
        assert_eq!(cluster.stats().recovery.crashes, 1);
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn jittered_links_preserve_ordering() {
        // Random per-frame delays reorder frames across links; the
        // protocol must still converge with consistent orders.
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
            (g(2), vec![n(2), n(3), n(0)]),
        ]);
        let config = ClusterConfig {
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(30),
            link_delay: Duration::from_millis(3),
            seed: 77,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for i in 0..9u32 {
            let grp = g(i % 3);
            let sender = m.members(grp).next().unwrap();
            cluster.publish(sender, grp, vec![i as u8]).unwrap();
            expected += m.group_size(grp);
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap();
        let nodes: Vec<NodeId> = m.nodes().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let da: Vec<_> = deliveries[&a].iter().map(|x| x.id).collect();
                let db: Vec<_> = deliveries[&b].iter().map(|x| x.id).collect();
                let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
                let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
                assert_eq!(ca, cb, "{a} and {b} disagree under jitter");
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn jitter_plus_loss_still_converges() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(0), n(1)]),
        ]);
        let config = ClusterConfig {
            drop_probability: 0.25,
            retransmit_timeout: Duration::from_millis(8),
            link_delay: Duration::from_millis(2),
            seed: 3,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        for i in 0..8u32 {
            let grp = g(i % 2);
            cluster.publish(n(0), grp, vec![i as u8]).unwrap();
        }
        let deliveries = cluster
            .wait_for_deliveries(16, Duration::from_secs(60))
            .unwrap();
        assert_eq!(
            deliveries[&n(0)].iter().map(|x| x.id).collect::<Vec<_>>(),
            deliveries[&n(1)].iter().map(|x| x.id).collect::<Vec<_>>(),
        );
        cluster.shutdown();
        assert!(cluster.stats().frames_dropped > 0);
    }
}
