//! Orchestration: sequencing-node and host threads wired by reliable links.

use crate::link::{LinkReceiver, LinkSender};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet_core::{DeliveryQueue, Message, MessageId, NextHop, ProtocolState};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{AtomId, Colocation, GraphBuilder, SequencingGraph};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A party in the deployment: a sequencing-node thread or a host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Party {
    Node(usize),
    Host(NodeId),
}

/// Identifies a directed reliable link between two parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LinkId(u32);

#[derive(Debug, Clone)]
struct WireData {
    msg: Message,
    /// The atom the receiving node should process next; `None` on links
    /// that terminate at a host.
    target_atom: Option<AtomId>,
}

#[derive(Debug, Clone)]
enum Body {
    Data(WireData),
    Ack,
}

#[derive(Debug)]
enum ThreadMsg {
    Frame { link: LinkId, seq: u64, body: Body },
    Publish(Message),
    Shutdown,
}

#[derive(Debug, Clone)]
struct DeliveryNote {
    host: NodeId,
    msg: Message,
}

/// A frame held by the delayer thread until its release time.
#[derive(Debug)]
struct DelayedFrame {
    release_at: Instant,
    to: Party,
    link: LinkId,
    seq: u64,
    body: Body,
}

/// Counters aggregated across all threads at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Data frames put on the wire (including retransmissions).
    pub frames_sent: u64,
    /// Frames dropped by the loss injector.
    pub frames_dropped: u64,
    /// Retransmissions performed by link senders.
    pub retransmissions: u64,
    /// Duplicate frames discarded by link receivers.
    pub duplicates: u64,
}

/// Deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Probability that any frame (data or ack) is lost in transit.
    pub drop_probability: f64,
    /// How long a frame may stay unacknowledged before retransmission.
    pub retransmit_timeout: Duration,
    /// Maximum simulated propagation delay per frame: each transmission
    /// is held for a uniform random duration in `[0, link_delay]` by a
    /// delayer thread, so frames on *different* links genuinely race and
    /// reorder (per-link FIFO is restored by the link layer). Zero sends
    /// directly.
    pub link_delay: Duration,
    /// Seed for co-location and loss injection.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(10),
            link_delay: Duration::ZERO,
            seed: 0,
        }
    }
}

/// Errors surfaced by the threaded deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Publish addressed a group with no members.
    UnknownGroup(GroupId),
    /// Fewer deliveries than expected arrived within the timeout.
    Timeout {
        /// How many deliveries were expected.
        expected: usize,
        /// How many actually arrived.
        received: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            RuntimeError::Timeout { expected, received } => {
                write!(f, "timed out with {received}/{expected} deliveries")
            }
        }
    }
}

impl Error for RuntimeError {}

/// Immutable wiring shared by all threads.
#[derive(Debug)]
struct Wiring {
    graph: SequencingGraph,
    membership: Membership,
    /// Sequencing node hosting each live atom.
    atom_node: HashMap<AtomId, usize>,
    links: Vec<(Party, Party)>,
    link_index: HashMap<(Party, Party), LinkId>,
    outboxes: BTreeMap<Party, Sender<ThreadMsg>>,
    config: ClusterConfig,
    stats: Mutex<RuntimeStats>,
    /// Frames routed through the delayer thread when `link_delay > 0`.
    delayer: Option<Sender<DelayedFrame>>,
}

impl Wiring {
    fn link_between(&self, from: Party, to: Party) -> LinkId {
        self.link_index[&(from, to)]
    }
}

/// A running threaded deployment of the ordering protocol.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Cluster {
    wiring: Arc<Wiring>,
    handles: Vec<JoinHandle<()>>,
    notes: Receiver<DeliveryNote>,
    next_id: u64,
    shut_down: bool,
}

impl Cluster {
    /// Builds the sequencing graph for `membership`, co-locates atoms into
    /// sequencing nodes, spawns one thread per node and per subscriber
    /// host, and wires them with reliable FIFO links.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph fails validation (a bug, not an
    /// input error).
    pub fn start(membership: &Membership, config: ClusterConfig) -> Self {
        let graph = GraphBuilder::new().build(membership);
        graph
            .validate_against(membership)
            .expect("constructed graph is valid");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let coloc = Colocation::compute(&graph, &mut rng);

        let mut atom_node: HashMap<AtomId, usize> = HashMap::new();
        for atom in graph.atoms() {
            if let Some(nidx) = coloc.node_of(atom.id) {
                atom_node.insert(atom.id, nidx);
            }
        }

        // Enumerate links: node→node along paths, egress node→member hosts.
        let mut links: Vec<(Party, Party)> = Vec::new();
        let mut link_index: HashMap<(Party, Party), LinkId> = HashMap::new();
        let add_link = |from: Party, to: Party,
                            links: &mut Vec<(Party, Party)>,
                            index: &mut HashMap<(Party, Party), LinkId>| {
            index.entry((from, to)).or_insert_with(|| {
                let id = LinkId(links.len() as u32);
                links.push((from, to));
                id
            });
        };
        for (group, path) in graph.paths() {
            for w in path.windows(2) {
                let (a, b) = (atom_node[&w[0]], atom_node[&w[1]]);
                if a != b {
                    add_link(Party::Node(a), Party::Node(b), &mut links, &mut link_index);
                }
            }
            let egress = atom_node[path.last().expect("paths are non-empty")];
            for member in membership.members(group) {
                add_link(
                    Party::Node(egress),
                    Party::Host(member),
                    &mut links,
                    &mut link_index,
                );
            }
        }

        // Channels: one inbox per party.
        let mut outboxes: BTreeMap<Party, Sender<ThreadMsg>> = BTreeMap::new();
        let mut inboxes: BTreeMap<Party, Receiver<ThreadMsg>> = BTreeMap::new();
        let parties: Vec<Party> = (0..coloc.num_nodes())
            .map(Party::Node)
            .chain(membership.nodes().map(Party::Host))
            .collect();
        for &p in &parties {
            let (tx, rx) = unbounded();
            outboxes.insert(p, tx);
            inboxes.insert(p, rx);
        }

        let (note_tx, note_rx) = unbounded();

        // Delayer thread: holds frames for their simulated propagation
        // delay, releasing in time order. Crossing frames on different
        // links genuinely reorder.
        let delayer = if config.link_delay > Duration::ZERO {
            let (tx, rx) = unbounded::<DelayedFrame>();
            let boxes = outboxes.clone();
            std::thread::spawn(move || {
                let mut holding: Vec<DelayedFrame> = Vec::new();
                loop {
                    let timeout = holding
                        .iter()
                        .map(|f| f.release_at.saturating_duration_since(Instant::now()))
                        .min()
                        .unwrap_or(Duration::from_millis(50));
                    match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
                        Ok(frame) => holding.push(frame),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    let now = Instant::now();
                    let mut i = 0;
                    while i < holding.len() {
                        if holding[i].release_at <= now {
                            let f = holding.swap_remove(i);
                            let _ = boxes[&f.to].send(ThreadMsg::Frame {
                                link: f.link,
                                seq: f.seq,
                                body: f.body,
                            });
                        } else {
                            i += 1;
                        }
                    }
                }
                // Flush whatever remains on shutdown.
                for f in holding {
                    let _ = boxes[&f.to].send(ThreadMsg::Frame {
                        link: f.link,
                        seq: f.seq,
                        body: f.body,
                    });
                }
            });
            Some(tx)
        } else {
            None
        };

        let wiring = Arc::new(Wiring {
            graph,
            membership: membership.clone(),
            atom_node,
            links,
            link_index,
            outboxes,
            config: config.clone(),
            stats: Mutex::new(RuntimeStats::default()),
            delayer,
        });

        let mut handles = Vec::new();
        for &p in &parties {
            let inbox = inboxes.remove(&p).expect("inbox exists");
            let wiring = Arc::clone(&wiring);
            let note_tx = note_tx.clone();
            let seed = config.seed ^ hash_party(p);
            handles.push(std::thread::spawn(move || match p {
                Party::Node(idx) => node_thread(idx, inbox, wiring, seed),
                Party::Host(host) => host_thread(host, inbox, wiring, note_tx, seed),
            }));
        }

        Cluster {
            wiring,
            handles,
            notes: note_rx,
            next_id: 0,
            shut_down: false,
        }
    }

    /// Publishes a message: hands it to the destination group's ingress
    /// sequencing node.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownGroup`] for groups with no members.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl Into<bytes::Bytes>,
    ) -> Result<MessageId, RuntimeError> {
        let Some(ingress) = self.wiring.graph.ingress(group) else {
            return Err(RuntimeError::UnknownGroup(group));
        };
        let id = MessageId(self.next_id);
        self.next_id += 1;
        let msg = Message::new(id, sender, group, payload.into());
        let node = self.wiring.atom_node[&ingress];
        self.wiring.outboxes[&Party::Node(node)]
            .send(ThreadMsg::Publish(msg))
            .expect("node thread is running");
        Ok(id)
    }

    /// Collects exactly `expected` deliveries (across all hosts), grouped
    /// by host in delivery order.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if they do not all arrive in time.
    pub fn wait_for_deliveries(
        &mut self,
        expected: usize,
        timeout: Duration,
    ) -> Result<BTreeMap<NodeId, Vec<Message>>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut out: BTreeMap<NodeId, Vec<Message>> = BTreeMap::new();
        let mut received = 0usize;
        while received < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.notes.recv_timeout(remaining) {
                Ok(note) => {
                    out.entry(note.host).or_default().push(note.msg);
                    received += 1;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Timeout { expected, received });
                }
            }
        }
        Ok(out)
    }

    /// The sequencing graph the deployment runs.
    pub fn graph(&self) -> &SequencingGraph {
        &self.wiring.graph
    }

    /// Number of sequencing-node threads.
    pub fn num_sequencing_nodes(&self) -> usize {
        self.wiring
            .outboxes
            .keys()
            .filter(|p| matches!(p, Party::Node(_)))
            .count()
    }

    /// Stops all threads and waits for them. Safe to call twice.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        for tx in self.wiring.outboxes.values() {
            let _ = tx.send(ThreadMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Aggregated link statistics; complete after [`Cluster::shutdown`].
    pub fn stats(&self) -> RuntimeStats {
        *self.wiring.stats.lock()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn hash_party(p: Party) -> u64 {
    match p {
        Party::Node(i) => 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
        Party::Host(n) => 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(u64::from(n.0) + 1),
    }
}

/// Per-thread link machinery: senders, receivers, loss injection.
struct LinkEngine {
    me: Party,
    senders: HashMap<LinkId, LinkSender<WireData>>,
    receivers: HashMap<LinkId, LinkReceiver<WireData>>,
    rng: StdRng,
    local: RuntimeStats,
}

impl LinkEngine {
    fn new(me: Party, seed: u64) -> Self {
        LinkEngine {
            me,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            local: RuntimeStats::default(),
        }
    }

    /// Sends `data` over the reliable link `me -> to`.
    fn send_data(&mut self, wiring: &Wiring, to: Party, data: WireData) {
        let link = wiring.link_between(self.me, to);
        let sender = self
            .senders
            .entry(link)
            .or_insert_with(|| LinkSender::new(wiring.config.retransmit_timeout));
        let (seq, payload) = sender.send(data);
        self.transmit(wiring, to, link, seq, Body::Data(payload));
    }

    /// Puts one frame on the wire, possibly dropping it.
    fn transmit(&mut self, wiring: &Wiring, to: Party, link: LinkId, seq: u64, body: Body) {
        if matches!(body, Body::Data(_)) {
            self.local.frames_sent += 1;
        }
        if wiring.config.drop_probability > 0.0
            && self.rng.gen_bool(wiring.config.drop_probability)
        {
            self.local.frames_dropped += 1;
            return;
        }
        if let Some(delayer) = &wiring.delayer {
            let jitter = wiring
                .config
                .link_delay
                .mul_f64(self.rng.gen_range(0.0..=1.0));
            let _ = delayer.send(DelayedFrame {
                release_at: Instant::now() + jitter,
                to,
                link,
                seq,
                body,
            });
        } else {
            let _ = wiring.outboxes[&to].send(ThreadMsg::Frame { link, seq, body });
        }
    }

    /// Handles an incoming frame; returns in-order data payloads.
    fn on_frame(&mut self, wiring: &Wiring, link: LinkId, seq: u64, body: Body) -> Vec<WireData> {
        match body {
            Body::Ack => {
                if let Some(sender) = self.senders.get_mut(&link) {
                    sender.acknowledge(seq);
                }
                Vec::new()
            }
            Body::Data(data) => {
                // Acknowledge every data frame, duplicates included.
                let (from, _to) = wiring.links[link.0 as usize];
                self.transmit(wiring, from, link, seq, Body::Ack);
                let receiver = self.receivers.entry(link).or_default();
                let out = receiver.receive(seq, data);
                self.local.duplicates = self
                    .receivers
                    .values()
                    .map(|r| r.duplicates())
                    .sum();
                out
            }
        }
    }

    /// Retransmits overdue frames on all outgoing links.
    fn retransmit_due(&mut self, wiring: &Wiring) {
        let due: Vec<(LinkId, Vec<(u64, WireData)>)> = self
            .senders
            .iter_mut()
            .map(|(&link, s)| (link, s.due_for_retransmit()))
            .collect();
        for (link, frames) in due {
            let (_, to) = wiring.links[link.0 as usize];
            for (seq, data) in frames {
                self.transmit(wiring, to, link, seq, Body::Data(data));
            }
        }
        self.local.retransmissions = self.senders.values().map(|s| s.retransmissions()).sum();
    }

    fn flush_stats(&self, wiring: &Wiring) {
        let mut stats = wiring.stats.lock();
        stats.frames_sent += self.local.frames_sent;
        stats.frames_dropped += self.local.frames_dropped;
        stats.retransmissions += self.local.retransmissions;
        stats.duplicates += self.local.duplicates;
    }
}

/// A sequencing-node thread: processes its atoms, forwards along paths.
fn node_thread(idx: usize, inbox: Receiver<ThreadMsg>, wiring: Arc<Wiring>, seed: u64) {
    let mut engine = LinkEngine::new(Party::Node(idx), seed);
    let mut protocol = ProtocolState::new(&wiring.graph);
    let tick = wiring.config.retransmit_timeout / 2;

    loop {
        let msg = match inbox.recv_timeout(tick.max(Duration::from_millis(1))) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            Some(ThreadMsg::Shutdown) => break,
            Some(ThreadMsg::Publish(msg)) => {
                let ingress = wiring
                    .graph
                    .ingress(msg.group)
                    .expect("publish checked the group");
                process_here(idx, &wiring, &mut protocol, &mut engine, msg, ingress);
            }
            Some(ThreadMsg::Frame { link, seq, body }) => {
                for data in engine.on_frame(&wiring, link, seq, body) {
                    let atom = data
                        .target_atom
                        .expect("node links always carry a target atom");
                    process_here(idx, &wiring, &mut protocol, &mut engine, data.msg, atom);
                }
            }
            None => {}
        }
        engine.retransmit_due(&wiring);
    }
    engine.flush_stats(&wiring);
}

/// Runs a message through this node's consecutive atoms, then forwards.
fn process_here(
    idx: usize,
    wiring: &Wiring,
    protocol: &mut ProtocolState,
    engine: &mut LinkEngine,
    mut msg: Message,
    mut atom: AtomId,
) {
    loop {
        match protocol.process(&wiring.graph, &mut msg, atom) {
            NextHop::Atom(next) => {
                let next_node = wiring.atom_node[&next];
                if next_node == idx {
                    atom = next;
                } else {
                    engine.send_data(
                        wiring,
                        Party::Node(next_node),
                        WireData {
                            msg,
                            target_atom: Some(next),
                        },
                    );
                    return;
                }
            }
            NextHop::Egress => {
                let members: Vec<NodeId> = wiring.membership.members(msg.group).collect();
                for member in members {
                    engine.send_data(
                        wiring,
                        Party::Host(member),
                        WireData {
                            msg: msg.clone(),
                            target_atom: None,
                        },
                    );
                }
                return;
            }
        }
    }
}

/// A subscriber-host thread: reliable link termination plus the delivery
/// queue.
fn host_thread(
    host: NodeId,
    inbox: Receiver<ThreadMsg>,
    wiring: Arc<Wiring>,
    notes: Sender<DeliveryNote>,
    seed: u64,
) {
    let mut engine = LinkEngine::new(Party::Host(host), seed);
    let mut queue = DeliveryQueue::new(host, &wiring.membership, &wiring.graph);
    let tick = wiring.config.retransmit_timeout / 2;

    loop {
        let msg = match inbox.recv_timeout(tick.max(Duration::from_millis(1))) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            Some(ThreadMsg::Shutdown) => break,
            Some(ThreadMsg::Publish(_)) => {
                unreachable!("hosts never receive publishes directly")
            }
            Some(ThreadMsg::Frame { link, seq, body }) => {
                for data in engine.on_frame(&wiring, link, seq, body) {
                    for delivered in queue.offer(data.msg) {
                        let _ = notes.send(DeliveryNote {
                            host,
                            msg: delivered,
                        });
                    }
                }
            }
            None => {}
        }
        engine.retransmit_due(&wiring);
    }
    engine.flush_stats(&wiring);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn overlapped_membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn reliable_links_deliver_everything() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), b"a".to_vec()).unwrap();
        cluster.publish(n(3), g(1), b"b".to_vec()).unwrap();
        // g0 has 3 members, g1 has 3 members.
        let deliveries = cluster
            .wait_for_deliveries(6, Duration::from_secs(5))
            .unwrap();
        assert_eq!(deliveries[&n(1)].len(), 2);
        assert_eq!(deliveries[&n(0)].len(), 1);
        cluster.shutdown();
        assert_eq!(cluster.stats().frames_dropped, 0);
    }

    #[test]
    fn overlap_members_agree_on_order() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        let mut published = 0usize;
        for i in 0..8u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            published += 3; // both groups have three members
        }
        let deliveries = cluster
            .wait_for_deliveries(published, Duration::from_secs(5))
            .unwrap();
        let order = |node: NodeId| -> Vec<MessageId> {
            deliveries[&node].iter().map(|m| m.id).collect()
        };
        assert_eq!(order(n(1)), order(n(2)), "overlap members agree");
        assert_eq!(order(n(1)).len(), 8);
        cluster.shutdown();
    }

    #[test]
    fn lossy_links_recover_via_retransmission() {
        let m = overlapped_membership();
        let config = ClusterConfig {
            drop_probability: 0.3,
            retransmit_timeout: Duration::from_millis(5),
            seed: 42,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for i in 0..6u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            expected += 3;
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap();
        assert_eq!(
            deliveries[&n(1)].iter().map(|m| m.id).collect::<Vec<_>>(),
            deliveries[&n(2)].iter().map(|m| m.id).collect::<Vec<_>>(),
            "loss and retransmission must not break the order"
        );
        cluster.shutdown();
        let stats = cluster.stats();
        assert!(stats.frames_dropped > 0, "loss injector actually fired");
        assert!(stats.retransmissions > 0, "retransmission actually fired");
    }

    #[test]
    fn unknown_group_rejected() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        assert_eq!(
            cluster.publish(n(0), g(9), vec![]),
            Err(RuntimeError::UnknownGroup(g(9)))
        );
        cluster.shutdown();
    }

    #[test]
    fn timeout_reports_progress() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.publish(n(0), g(0), vec![]).unwrap();
        let err = cluster
            .wait_for_deliveries(100, Duration::from_millis(300))
            .unwrap_err();
        match err {
            RuntimeError::Timeout { expected, received } => {
                assert_eq!(expected, 100);
                assert_eq!(received, 3, "the three real deliveries arrived");
            }
            other => panic!("unexpected error {other}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn per_publisher_fifo_preserved() {
        let m = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        let ids: Vec<MessageId> = (0..10)
            .map(|i| cluster.publish(n(0), g(0), vec![i as u8]).unwrap())
            .collect();
        let deliveries = cluster
            .wait_for_deliveries(20, Duration::from_secs(5))
            .unwrap();
        for node in [n(0), n(1)] {
            let got: Vec<MessageId> = deliveries[&node].iter().map(|m| m.id).collect();
            assert_eq!(got, ids, "{node} must deliver in publish order");
        }
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let m = overlapped_membership();
        let mut cluster = Cluster::start(&m, ClusterConfig::default());
        cluster.shutdown();
        cluster.shutdown();
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn jittered_links_preserve_ordering() {
        // Random per-frame delays reorder frames across links; the
        // protocol must still converge with consistent orders.
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
            (g(2), vec![n(2), n(3), n(0)]),
        ]);
        let config = ClusterConfig {
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(30),
            link_delay: Duration::from_millis(3),
            seed: 77,
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for i in 0..9u32 {
            let grp = g(i % 3);
            let sender = m.members(grp).next().unwrap();
            cluster.publish(sender, grp, vec![i as u8]).unwrap();
            expected += m.group_size(grp);
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap();
        let nodes: Vec<NodeId> = m.nodes().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let da: Vec<_> = deliveries[&a].iter().map(|x| x.id).collect();
                let db: Vec<_> = deliveries[&b].iter().map(|x| x.id).collect();
                let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
                let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
                assert_eq!(ca, cb, "{a} and {b} disagree under jitter");
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn jitter_plus_loss_still_converges() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(0), n(1)]),
        ]);
        let config = ClusterConfig {
            drop_probability: 0.25,
            retransmit_timeout: Duration::from_millis(8),
            link_delay: Duration::from_millis(2),
            seed: 3,
        };
        let mut cluster = Cluster::start(&m, config);
        for i in 0..8u32 {
            let grp = g(i % 2);
            cluster.publish(n(0), grp, vec![i as u8]).unwrap();
        }
        let deliveries = cluster
            .wait_for_deliveries(16, Duration::from_secs(60))
            .unwrap();
        assert_eq!(
            deliveries[&n(0)].iter().map(|x| x.id).collect::<Vec<_>>(),
            deliveries[&n(1)].iter().map(|x| x.id).collect::<Vec<_>>(),
        );
        cluster.shutdown();
        assert!(cluster.stats().frames_dropped > 0);
    }
}
