//! Byte-oriented frame codec shared by every real deployment.
//!
//! The protocol's wire surface is a hand-rolled little-endian layout
//! (PROTOCOL.md §13/§16): no serde, no per-field allocation, every
//! encoder appends into a caller-owned `Vec<u8>` and every decoder walks
//! a borrowed slice. This module holds the *frame-level* codec — the
//! [`Frame`] layout plus the primitive readers/writers — so the threaded
//! runtime and the socket deployment (`seqnet-deploy::wire`, which layers
//! its connection-message envelope on top) encode protocol frames with
//! one implementation.
//!
//! Decoding is fully defensive: truncated, garbled, or oversized input
//! produces a [`CodecError`], never a panic, so the transport owner can
//! quarantine the peer.

use bytes::Bytes;
use seqnet_core::proto::{Frame, Peer};
use seqnet_core::{Message, MessageId, SeqNo, Stamp};
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::AtomId;
use std::fmt;

/// Upper bound on counted collections inside a frame (stamps, batch runs,
/// stats entries) — a line of defense against garbled counts that pass an
/// outer length check.
pub const MAX_COUNT: usize = 1 << 20;

/// Decode failure. The stream that produced it must be quarantined: once
/// framing is lost there is no way to resynchronize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A length prefix exceeds the transport's frame cap (or is zero).
    BadLength(usize),
    /// A complete frame failed structural decoding.
    Garbled(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadLength(n) => write!(f, "bad frame length {n}"),
            CodecError::Garbled(what) => write!(f, "garbled frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --- encoding ---------------------------------------------------------

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a tagged [`Peer`].
pub fn put_peer(out: &mut Vec<u8>, p: Peer) {
    match p {
        Peer::Publisher => out.push(0),
        Peer::Node(i) => {
            out.push(1);
            put_u32(out, i as u32);
        }
        Peer::Host(n) => {
            out.push(2);
            put_u32(out, n.0);
        }
    }
}

/// Appends one protocol [`Frame`] in the shared wire layout.
pub fn put_frame(out: &mut Vec<u8>, f: &Frame) {
    let m = &f.msg;
    put_u64(out, m.id.0);
    put_u32(out, m.sender.0);
    put_u32(out, m.group.0);
    put_u64(out, m.group_seq.0);
    put_u64(out, m.epoch);
    put_u32(out, m.stamps.len() as u32);
    for s in &m.stamps {
        put_u32(out, s.atom.0);
        put_u64(out, s.seq.0);
    }
    put_u32(out, m.payload.len() as u32);
    out.extend_from_slice(m.payload.as_ref());
    match f.target_atom {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_u32(out, a.0);
        }
    }
}

// --- decoding ---------------------------------------------------------

/// Cursor over a borrowed byte slice with defensive primitive readers.
/// Every accessor fails with [`CodecError::Garbled`] instead of reading
/// out of bounds.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.at
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.at < n {
            return Err(CodecError::Garbled("truncated field"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an element count, rejecting anything above [`MAX_COUNT`].
    pub fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_COUNT {
            return Err(CodecError::Garbled("implausible element count"));
        }
        Ok(n)
    }

    /// Reads a tagged [`Peer`].
    pub fn peer(&mut self) -> Result<Peer, CodecError> {
        match self.u8()? {
            0 => Ok(Peer::Publisher),
            1 => Ok(Peer::Node(self.u32()? as usize)),
            2 => Ok(Peer::Host(NodeId(self.u32()?))),
            _ => Err(CodecError::Garbled("unknown peer kind")),
        }
    }

    /// Reads one protocol [`Frame`].
    pub fn frame(&mut self) -> Result<Frame, CodecError> {
        let id = MessageId(self.u64()?);
        let sender = NodeId(self.u32()?);
        let group = GroupId(self.u32()?);
        let group_seq = SeqNo(self.u64()?);
        let epoch = self.u64()?;
        let n_stamps = self.count()?;
        // StampVec keeps typical stamp counts inline, so decode allocates
        // nothing for the ordering metadata of ordinary messages.
        let mut stamps = seqnet_core::StampVec::new();
        for _ in 0..n_stamps {
            stamps.push(Stamp {
                atom: AtomId(self.u32()?),
                seq: SeqNo(self.u64()?),
            });
        }
        let n_payload = self.u32()? as usize;
        let body = self.take(n_payload)?;
        let payload = if body.is_empty() {
            Bytes::new()
        } else {
            Bytes::copy_from_slice(body)
        };
        let target_atom = match self.u8()? {
            0 => None,
            1 => Some(AtomId(self.u32()?)),
            _ => return Err(CodecError::Garbled("bad target_atom tag")),
        };
        Ok(Frame {
            msg: Message {
                id,
                sender,
                group,
                payload,
                group_seq,
                epoch,
                stamps,
            },
            target_atom,
        })
    }

    /// Succeeds only if every byte has been consumed.
    pub fn done(&self) -> Result<(), CodecError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Garbled("trailing bytes"))
        }
    }
}

/// Decodes one protocol frame from the front of `buf`, advancing it past
/// the consumed bytes. Used by the disk snapshot codec, which shares the
/// wire frame layout.
pub fn take_frame(buf: &mut &[u8]) -> Result<Frame, CodecError> {
    let mut r = Reader::new(buf);
    let f = r.frame()?;
    *buf = &buf[r.consumed()..];
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(id: u64) -> Frame {
        let mut msg = Message::new(MessageId(id), NodeId(3), GroupId(1), b"payload".to_vec());
        msg.group_seq = SeqNo(9);
        msg.epoch = 2;
        msg.stamps.push(Stamp {
            atom: AtomId(4),
            seq: SeqNo(17),
        });
        Frame {
            msg,
            target_atom: Some(AtomId(2)),
        }
    }

    #[test]
    fn frame_roundtrips_through_shared_layout() {
        let mut buf = Vec::new();
        put_frame(&mut buf, &sample_frame(7));
        put_frame(&mut buf, &sample_frame(8));
        let mut rest = buf.as_slice();
        assert_eq!(take_frame(&mut rest).unwrap(), sample_frame(7));
        assert_eq!(take_frame(&mut rest).unwrap(), sample_frame(8));
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_frame_is_garbled_not_panic() {
        let mut buf = Vec::new();
        put_frame(&mut buf, &sample_frame(7));
        for cut in 0..buf.len() {
            let mut rest = &buf[..cut];
            assert!(take_frame(&mut rest).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn implausible_stamp_count_is_rejected() {
        let mut buf = Vec::new();
        // id, sender, group, group_seq, epoch
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        put_u64(&mut buf, 0);
        put_u64(&mut buf, 0);
        put_u32(&mut buf, (MAX_COUNT as u32) + 1);
        let mut rest = buf.as_slice();
        assert_eq!(
            take_frame(&mut rest),
            Err(CodecError::Garbled("implausible element count"))
        );
    }
}
