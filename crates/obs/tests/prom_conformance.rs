//! Conformance property tests for the Prometheus text exposition.
//!
//! Anything [`exposition`] emits must stay inside the text exposition
//! grammar no matter what mix of counters and histograms a run produced:
//! a scraper that chokes on one malformed line silently drops the whole
//! scrape, so "mostly valid" output is worthless. Random registries are
//! rendered and every line re-parsed against the grammar, plus the
//! semantic invariants scrapers rely on: one `# TYPE` header per family,
//! cumulative non-decreasing buckets closed by `+Inf`, `_count` equal to
//! the terminal bucket, sorted label order, byte-identical re-scrapes,
//! and additivity under [`Registry::merge`] (the property the deployment
//! coordinator's cluster-wide merged scrape depends on).

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet_obs::{prom::exposition, Registry};

/// A pool of legal family names (registry keys are `&'static str` chosen
/// by code, never user input, so a fixed pool is the honest model).
const COUNTERS: &[&str] = &[
    "frames_total",
    "node_frames_processed_total",
    "publishes_steady_total",
    "retransmissions_total",
];
const HISTOGRAMS: &[&str] = &["latency_us", "node_batch_frames", "stamp_wait_us"];

fn label_strategy() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        1 => Just(None),
        3 => (0u64..6).prop_map(Some),
    ]
}

/// One registry mutation: bump a counter or record an observation.
#[derive(Clone, Debug)]
enum Op {
    Inc(usize, Option<u64>, u64),
    Observe(usize, Option<u64>, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..COUNTERS.len(), label_strategy(), 0u64..1_000_000)
            .prop_map(|(f, l, n)| Op::Inc(f, l, n)),
        (0usize..HISTOGRAMS.len(), label_strategy(), 0u64..2_000_000)
            .prop_map(|(f, l, v)| Op::Observe(f, l, v)),
    ]
}

fn build(ops: &[Op]) -> Registry {
    let mut reg = Registry::new();
    for op in ops {
        match *op {
            Op::Inc(f, label, n) => reg.inc(COUNTERS[f], label, n),
            Op::Observe(f, label, v) => reg.observe(HISTOGRAMS[f], label, v),
        }
    }
    reg
}

fn label_key(name: &'static str) -> &'static str {
    if name.starts_with("node_") {
        "epoch"
    } else {
        "group"
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_key(key: &str) -> bool {
    let mut chars = key.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line: `name{k="v",...} value`.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses a sample line, panicking (test failure) on any grammar breach.
fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value field");
    let value: f64 = value.parse().expect("sample value is a number");
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("label set closed by '}'");
            let labels = body
                .split(',')
                .map(|pair| {
                    let (k, v) = pair.split_once('=').expect("label is key=value");
                    assert!(valid_label_key(k), "bad label key {k:?}");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("label value is double-quoted");
                    assert!(
                        !v.contains(['"', '\\', '\n']),
                        "label value {v:?} would need escaping"
                    );
                    (k.to_string(), v.to_string())
                })
                .collect();
            (name, labels)
        }
        None => (series, Vec::new()),
    };
    assert!(valid_metric_name(name), "bad metric name {name:?}");
    Sample {
        name: name.to_string(),
        labels,
        value,
    }
}

/// Everything scraped from one exposition, grouped for the semantic checks.
struct Scrape {
    /// family name -> declared type, in order of appearance.
    types: Vec<(String, String)>,
    samples: Vec<Sample>,
}

fn parse_exposition(text: &str) -> Scrape {
    let mut types = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines inside the exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
            assert!(valid_metric_name(name), "bad family name {name:?}");
            assert!(
                matches!(kind, "counter" | "histogram"),
                "unknown metric type {kind:?}"
            );
            types.push((name.to_string(), kind.to_string()));
        } else {
            assert!(!line.starts_with('#'), "only # TYPE comments are emitted");
            samples.push(parse_sample(line));
        }
    }
    Scrape { types, samples }
}

/// The family a sample belongs to: its name with any histogram-series
/// suffix (`_bucket`, `_sum`, `_count`) stripped when that family exists.
fn family_of<'a>(sample_name: &'a str, families: &[(String, String)]) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if families.iter().any(|(f, k)| f == base && k == "histogram") {
                return base;
            }
        }
    }
    sample_name
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every line of every exposition stays inside the grammar, each
    /// family is declared exactly once before its samples, and all
    /// samples carry the namespace prefix and the caller's label key.
    #[test]
    fn exposition_obeys_the_text_format_grammar(ops in vec(op_strategy(), 0..40)) {
        let reg = build(&ops);
        let text = exposition(&reg, "seqnet", label_key);
        let scrape = parse_exposition(&text);

        // One TYPE header per family.
        let mut seen = BTreeMap::new();
        for (family, kind) in &scrape.types {
            prop_assert!(
                seen.insert(family.clone(), kind.clone()).is_none(),
                "family {} declared twice", family
            );
            prop_assert!(family.starts_with("seqnet_"), "family {} lacks namespace", family);
        }

        // Each sample belongs to a declared family, and samples of one
        // family are contiguous right after its TYPE header.
        let mut order: Vec<String> = Vec::new();
        for s in &scrape.samples {
            let family = family_of(&s.name, &scrape.types).to_string();
            prop_assert!(
                seen.contains_key(&family),
                "sample {} has no TYPE header", s.name
            );
            prop_assert!(s.value >= 0.0, "sample {} is negative", s.name);
            if order.last() != Some(&family) {
                prop_assert!(
                    !order.contains(&family),
                    "family {} split into non-contiguous runs", family
                );
                order.push(family);
            }
        }

        // The caller's per-family label key is used verbatim; the only
        // other key is the bucket boundary `le`.
        for s in &scrape.samples {
            for (k, _) in &s.labels {
                prop_assert!(
                    k == "group" || k == "epoch" || k == "le",
                    "unexpected label key {} on {}", k, s.name
                );
            }
        }
    }

    /// Histogram series are internally consistent: buckets cumulative and
    /// non-decreasing, strictly increasing `le` boundaries closed by
    /// `+Inf`, and the `+Inf` bucket equal to `_count`.
    #[test]
    fn histogram_series_are_cumulative_and_closed(ops in vec(op_strategy(), 1..40)) {
        let reg = build(&ops);
        let text = exposition(&reg, "seqnet", label_key);
        let scrape = parse_exposition(&text);

        // Group bucket samples per (family, series-label) key.
        let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
        let mut scalars: BTreeMap<(String, String), f64> = BTreeMap::new();
        for s in &scrape.samples {
            let series_label = s
                .labels
                .iter()
                .find(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .unwrap_or_default();
            if let Some(base) = s.name.strip_suffix("_bucket") {
                let le = &s.labels.iter().find(|(k, _)| k == "le").expect("bucket has le").1;
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("numeric le") };
                buckets.entry((base.to_string(), series_label)).or_default().push((le, s.value));
            } else {
                scalars.insert((s.name.clone(), series_label), s.value);
            }
        }

        for ((base, series_label), series) in &buckets {
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_count = 0.0;
            for &(le, count) in series {
                prop_assert!(le > prev_le, "{base} le boundaries not increasing");
                prop_assert!(count >= prev_count, "{base} bucket counts not cumulative");
                prev_le = le;
                prev_count = count;
            }
            let (last_le, last_count) = *series.last().expect("non-empty series");
            prop_assert!(last_le.is_infinite(), "{base} series not closed by +Inf");
            let count = scalars
                .get(&(format!("{base}_count"), series_label.clone()))
                .copied()
                .expect("histogram has _count");
            let sum = scalars
                .get(&(format!("{base}_sum"), series_label.clone()))
                .copied()
                .expect("histogram has _sum");
            prop_assert_eq!(last_count, count, "+Inf bucket != _count for {}", base);
            prop_assert!(sum >= 0.0);
        }
    }

    /// Scrapes are deterministic (byte-identical for identical state) and
    /// additive under merge: the merged registry's counter samples equal
    /// the per-registry sums — the invariant behind the coordinator's
    /// cluster-wide scrape being the sum of the per-node registries.
    #[test]
    fn scrapes_are_deterministic_and_merge_additive(
        a_ops in vec(op_strategy(), 0..24),
        b_ops in vec(op_strategy(), 0..24),
    ) {
        let a = build(&a_ops);
        let b = build(&b_ops);
        prop_assert_eq!(
            exposition(&a, "seqnet", label_key),
            exposition(&a, "seqnet", label_key)
        );

        let mut merged = a.clone();
        merged.merge(&b);
        let counter_values = |reg: &Registry| -> BTreeMap<(String, String), f64> {
            parse_exposition(&exposition(reg, "seqnet", label_key))
                .samples
                .into_iter()
                .filter(|s| !s.name.ends_with("_bucket")
                    && !s.name.ends_with("_sum")
                    && !s.name.ends_with("_count"))
                .map(|s| {
                    let label = s.labels.first().map(|(k, v)| format!("{k}={v}")).unwrap_or_default();
                    ((s.name, label), s.value)
                })
                .collect()
        };
        let (va, vb, vm) = (counter_values(&a), counter_values(&b), counter_values(&merged));
        for (key, &m) in &vm {
            let expect = va.get(key).copied().unwrap_or(0.0) + vb.get(key).copied().unwrap_or(0.0);
            prop_assert_eq!(m, expect, "merged counter {:?} is not the sum", key);
        }
    }
}
