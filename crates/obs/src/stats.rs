//! Shared scalar statistics primitives.
//!
//! One implementation of mean / percentile / CDF / frequency-histogram,
//! deduplicating the near-identical helpers that used to live in
//! `seqnet-membership::stats`, `seqnet-overlap::stats`, and the metrics
//! paths of `seqnet-core` (which now delegate here). The panicking
//! variants keep the historical contracts of those modules; the `try_`
//! variants are for callers that must survive empty inputs.

use std::collections::BTreeMap;

/// Arithmetic mean; `None` when `data` is empty.
pub fn try_mean(data: &[f64]) -> Option<f64> {
    (!data.is_empty()).then(|| data.iter().sum::<f64>() / data.len() as f64)
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mean(data: &[f64]) -> f64 {
    try_mean(data).expect("mean of empty data")
}

/// The `p`-th percentile (0–100) of unsorted data, by nearest-rank;
/// `None` when `data` is empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the data contains NaN.
pub fn try_percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("data must not contain NaN"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank])
}

/// The `p`-th percentile (0–100) of unsorted data, by nearest-rank.
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty data");
    try_percentile(data, p).expect("checked nonempty")
}

/// Cumulative distribution points `(value, fraction ≤ value)` of the
/// data, sorted ascending — the form the paper's CDF figures use.
pub fn cdf(data: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("data must not contain NaN"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Frequency histogram of integer observations: `value -> occurrences`.
/// Backs the group-size and subscription histograms of
/// `seqnet-membership::stats`.
pub fn freq_histogram(values: impl IntoIterator<Item = usize>) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for v in values {
        *hist.entry(v).or_insert(0) += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_and_mean_nearest_rank() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 50.0), 3.0);
        assert_eq!(percentile(&data, 100.0), 5.0);
        assert_eq!(mean(&data), 3.0);
        assert_eq!(try_mean(&[]), None);
        assert_eq!(try_percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "mean of empty data")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }

    #[test]
    #[should_panic(expected = "percentile of empty data")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        let _ = try_percentile(&[1.0], 101.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let data = vec![3.0, 1.0, 2.0];
        let c = cdf(&data);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c[2], (3.0, 1.0));
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn freq_histogram_counts_everything() {
        let h = freq_histogram([3, 1, 3, 3, 2]);
        assert_eq!(h[&3], 3);
        assert_eq!(h[&1], 1);
        assert_eq!(h.values().sum::<usize>(), 5);
    }
}
