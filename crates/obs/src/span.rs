//! Per-message span reconstruction and latency-stretch decomposition.
//!
//! The paper's headline metric is latency stretch (fig. 3), but the
//! aggregate histograms in [`crate::report`] cannot say *which hop* of a
//! message's path produced the stretch. This module joins the raw
//! [`TraceEvent`] stream from any driver — simulator virtual-µs,
//! runtime/deploy wall-µs, checker step-index — into one span tree per
//! message:
//!
//! ```text
//! publish ─→ stamp (per sequencing atom) ─→ forward (per hop)
//!         ─→ arrive (per host) ─→ [buffer] ─→ deliver
//! ```
//!
//! and decomposes each delivery's end-to-end latency into four typed
//! components (see [`LatencyBreakdown`]):
//!
//! * `stamp_wait` — publish until the last sequencing atom stamped the
//!   message (the path through the overlap graph).
//! * `wire` — last stamp until the frame reached the delivering host,
//!   plus the arrive→deliver time when the message was never buffered.
//! * `group_gap_wait` / `atom_gap_wait` — time parked in the host's
//!   delivery queue, attributed by the recorded [`BufferReason`].
//!
//! Timestamps are clamped into path order before subtracting, so every
//! component is non-negative and the four components sum *exactly* to
//! the delivery's end-to-end latency — cross-process clock jitter bends
//! a component to zero rather than breaking the identity.
//!
//! Incompleteness is a first-class result, never a silent skip: a
//! delivery whose publish, arrive, or atom-stamp events are missing from
//! the stream (ring-buffer wrap, crashed process, truncated file) gets
//! typed [`SpanGap`] diagnostics, and [`TraceSet::with_dropped`] carries
//! the flight-recorder drop count alongside the reconstruction.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{Actor, BufferReason, EventKind, TraceEvent};
use crate::hist::Histogram;

/// The typed decomposition of one delivery's end-to-end latency. All
/// values are in the driver's clock unit (µs or checker steps). The
/// components always sum exactly to the end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Publish until the last sequencing atom stamped the message.
    pub stamp_wait: u64,
    /// Last stamp until arrival at the host (plus arrive→deliver when
    /// the message was never buffered).
    pub wire: u64,
    /// Arrive→deliver time spent waiting on a group-sequence gap.
    pub group_gap_wait: u64,
    /// Arrive→deliver time spent waiting on an overlap-atom gap.
    pub atom_gap_wait: u64,
}

impl LatencyBreakdown {
    /// Sum of the four components — equal to the delivery's end-to-end
    /// latency by construction.
    pub fn total(&self) -> u64 {
        self.stamp_wait + self.wire + self.group_gap_wait + self.atom_gap_wait
    }

    /// The components with their stable names, in path order.
    pub fn components(&self) -> [(&'static str, u64); 4] {
        [
            ("stamp_wait", self.stamp_wait),
            ("wire", self.wire),
            ("group_gap_wait", self.group_gap_wait),
            ("atom_gap_wait", self.atom_gap_wait),
        ]
    }
}

/// Why a span tree is incomplete: which event the stream should have
/// contained but did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanGap {
    /// No `publish` event — end-to-end latency and the breakdown are
    /// unavailable for this message.
    MissingPublish,
    /// The delivered sequence vector names this atom but the stream has
    /// no `atom-stamp` event from it.
    MissingStamp {
        /// The sequencing atom whose stamp event is missing.
        atom: u64,
    },
    /// A host delivered the message without a recorded `arrive` — the
    /// wire/buffering split defaults to "never buffered".
    MissingArrive {
        /// The delivering host.
        host: u64,
    },
    /// The message was published but never delivered anywhere in the
    /// captured window.
    Undelivered,
}

impl fmt::Display for SpanGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanGap::MissingPublish => write!(f, "missing publish event"),
            SpanGap::MissingStamp { atom } => {
                write!(f, "missing atom-stamp event for atom {atom}")
            }
            SpanGap::MissingArrive { host } => {
                write!(f, "missing arrive event at host {host}")
            }
            SpanGap::Undelivered => write!(f, "published but never delivered"),
        }
    }
}

/// One sequencing-atom stamp on the message's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampSpan {
    /// The sequencing atom that assigned the number.
    pub atom: u64,
    /// The assigned sequence number.
    pub seq: u64,
    /// When the stamp happened (driver clock).
    pub at: u64,
    /// The node that hosted the atom.
    pub actor: Actor,
}

/// One inter-node hop of the message's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardSpan {
    /// When the frame left (driver clock).
    pub at: u64,
    /// The forwarding node.
    pub actor: Actor,
    /// Destination node index.
    pub to_node: u64,
    /// The next sequencing atom on the path, when the emitter knew it.
    pub atom: Option<u64>,
    /// Whether the frame was staged under group commit rather than sent
    /// immediately.
    pub staged: bool,
}

/// The buffering episode of one delivery, when the host parked the
/// message before Definition 1 admitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSpan {
    /// When the host parked the message (driver clock).
    pub at: u64,
    /// Which continuity check failed.
    pub reason: BufferReason,
    /// Buffered depth after insertion, when recorded.
    pub depth: Option<u64>,
}

/// The terminal hop of the span tree at one subscriber host:
/// arrive → optional buffer → deliver, with the typed latency breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliverySpan {
    /// The delivering host (subscriber node id).
    pub host: u64,
    /// When the frame arrived, if the `arrive` event was captured.
    pub arrive_at: Option<u64>,
    /// The buffering episode, if the host parked the message.
    pub buffered: Option<BufferSpan>,
    /// When the message was handed to the application (driver clock).
    pub deliver_at: u64,
    /// The group-local sequence number, when recorded.
    pub seq: Option<u64>,
    /// The configuration epoch the delivery happened under, when
    /// recorded.
    pub epoch: Option<u64>,
    /// The delivered sequence vector `(atom, seq)` in path order.
    pub stamps: Vec<(u64, u64)>,
    /// Why this delivery's span is incomplete; empty when complete.
    pub gaps: Vec<SpanGap>,
    /// The typed latency decomposition; `None` without a publish event.
    pub breakdown: Option<LatencyBreakdown>,
    /// Deliver-minus-publish latency; `None` without a publish event.
    pub end_to_end: Option<u64>,
}

/// The reconstructed span tree of one message: publish, every atom
/// stamp, every inter-node hop, and every per-host delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageTrace {
    /// The message id.
    pub msg: u64,
    /// The destination group, when any event carried it.
    pub group: Option<u64>,
    /// When the message entered the system, if captured.
    pub publish_at: Option<u64>,
    /// The publishing host's node id, when recorded.
    pub publish_host: Option<u64>,
    /// Atom stamps in stream order (first occurrence per atom; replays
    /// after a crash re-emit and are deduplicated).
    pub stamps: Vec<StampSpan>,
    /// Inter-node hops in stream order (deduplicated per hop).
    pub forwards: Vec<ForwardSpan>,
    /// Per-host deliveries in stream order (first per host).
    pub deliveries: Vec<DeliverySpan>,
    /// Trace-level diagnostics (e.g. [`SpanGap::Undelivered`]).
    pub gaps: Vec<SpanGap>,
}

impl MessageTrace {
    fn new(msg: u64) -> Self {
        MessageTrace {
            msg,
            group: None,
            publish_at: None,
            publish_host: None,
            stamps: Vec::new(),
            forwards: Vec::new(),
            deliveries: Vec::new(),
            gaps: Vec::new(),
        }
    }

    /// Whether the span tree is complete: no trace-level or per-delivery
    /// gap diagnostics.
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty() && self.deliveries.iter().all(|d| d.gaps.is_empty())
    }

    /// Every gap diagnostic on this trace, trace-level first.
    pub fn all_gaps(&self) -> impl Iterator<Item = &SpanGap> {
        self.gaps
            .iter()
            .chain(self.deliveries.iter().flat_map(|d| d.gaps.iter()))
    }

    /// The slowest delivery's end-to-end latency, when computable.
    pub fn worst_end_to_end(&self) -> Option<u64> {
        self.deliveries.iter().filter_map(|d| d.end_to_end).max()
    }

    /// A human-readable span-tree rendering, one line per span, with
    /// the latency breakdown under each delivery and an explicit
    /// `incomplete` trailer listing every gap.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let group = match self.group {
            Some(g) => format!("group {g}"),
            None => "group ?".to_string(),
        };
        match (self.publish_at, self.publish_host) {
            (Some(at), Some(h)) => {
                let _ = writeln!(out, "msg {} {group}: publish @{at} (host {h})", self.msg);
            }
            (Some(at), None) => {
                let _ = writeln!(out, "msg {} {group}: publish @{at}", self.msg);
            }
            (None, _) => {
                let _ = writeln!(out, "msg {} {group}: publish missing", self.msg);
            }
        }
        for s in &self.stamps {
            let _ = writeln!(
                out,
                "  ├─ stamp  atom{} seq={} @{} ({})",
                s.atom, s.seq, s.at, s.actor
            );
        }
        for fwd in &self.forwards {
            let staged = if fwd.staged { " staged" } else { "" };
            let next = match fwd.atom {
                Some(a) => format!(" → atom{a}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  ├─ hop    {} → node{}{next} @{}{staged}",
                fwd.actor, fwd.to_node, fwd.at
            );
        }
        let last = self.deliveries.len().saturating_sub(1);
        for (i, d) in self.deliveries.iter().enumerate() {
            let branch = if i == last { "└─" } else { "├─" };
            let stem = if i == last { "  " } else { "│ " };
            let arrive = match d.arrive_at {
                Some(at) => format!("arrive @{at}"),
                None => "arrive ?".to_string(),
            };
            let buffer = match &d.buffered {
                Some(b) => {
                    let depth = b.depth.map(|n| format!(" depth={n}")).unwrap_or_default();
                    format!(" buffer({}{depth}) @{}", b.reason.as_str(), b.at)
                }
                None => String::new(),
            };
            let seq = d.seq.map(|s| format!(" seq={s}")).unwrap_or_default();
            let epoch = d.epoch.map(|e| format!(" epoch={e}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "  {branch} host{}: {arrive}{buffer} deliver @{}{seq}{epoch}",
                d.host, d.deliver_at
            );
            if let (Some(b), Some(e2e)) = (&d.breakdown, d.end_to_end) {
                let _ = writeln!(
                    out,
                    "  {stem}     stamp_wait={} wire={} group_gap_wait={} \
                     atom_gap_wait={} end-to-end={e2e}",
                    b.stamp_wait, b.wire, b.group_gap_wait, b.atom_gap_wait
                );
            }
        }
        let gaps: Vec<String> = self.all_gaps().map(|g| g.to_string()).collect();
        if !gaps.is_empty() {
            let _ = writeln!(out, "  !! incomplete: {}", gaps.join("; "));
        }
        out
    }
}

/// Per-component latency histograms over every delivery in a
/// [`TraceSet`] that had a computable breakdown, plus completeness
/// counts — the input to the bench stretch-decomposition block.
#[derive(Debug, Clone, Default)]
pub struct BreakdownHistograms {
    /// `stamp_wait` across deliveries.
    pub stamp_wait: Histogram,
    /// `wire` across deliveries.
    pub wire: Histogram,
    /// `group_gap_wait` across deliveries.
    pub group_gap_wait: Histogram,
    /// `atom_gap_wait` across deliveries.
    pub atom_gap_wait: Histogram,
    /// End-to-end latency across the same deliveries.
    pub end_to_end: Histogram,
    /// Deliveries with a complete span (no gaps).
    pub complete: u64,
    /// Deliveries with at least one gap diagnostic.
    pub incomplete: u64,
}

/// Every message's reconstructed span tree, plus stream-level loss
/// accounting ([`TraceSet::dropped_events`]).
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: BTreeMap<u64, MessageTrace>,
    dropped_events: u64,
}

impl TraceSet {
    /// Reconstructs span trees from an event stream. Events need not be
    /// globally ordered (multi-file deploy dumps are concatenated, not
    /// merged); only per-message joins use timestamps. Events without a
    /// message id (snapshot flushes, heartbeat misses, epoch advances)
    /// are skipped — they carry no per-message span.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        TraceSet::with_dropped(events, 0)
    }

    /// Like [`TraceSet::from_events`], recording that `dropped` events
    /// were lost before the stream was captured (flight-recorder ring
    /// wrap). A non-zero count means gap diagnostics may under-report.
    pub fn with_dropped(events: &[TraceEvent], dropped: u64) -> Self {
        let mut traces: BTreeMap<u64, MessageTrace> = BTreeMap::new();
        // (msg, host) → first observed arrive / buffer, joined into
        // DeliverySpans after the full stream is read, so multi-file
        // dumps don't need arrivals ordered before delivers.
        let mut arrivals: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut buffers: BTreeMap<(u64, u64), BufferSpan> = BTreeMap::new();
        let mut delivers: BTreeMap<(u64, u64), TraceEvent> = BTreeMap::new();

        for event in events {
            let Some(msg) = event.msg else { continue };
            let trace = traces.entry(msg).or_insert_with(|| MessageTrace::new(msg));
            if trace.group.is_none() {
                trace.group = event.group;
            }
            match event.kind {
                EventKind::Publish => {
                    if trace.publish_at.is_none() {
                        trace.publish_at = Some(event.at);
                        trace.publish_host = event.detail;
                    }
                }
                EventKind::AtomStamp => {
                    let Some(atom) = event.atom else { continue };
                    // Crash replays re-stamp deterministically; keep the
                    // first (pre-crash) occurrence per atom.
                    if !trace.stamps.iter().any(|s| s.atom == atom) {
                        trace.stamps.push(StampSpan {
                            atom,
                            seq: event.seq.unwrap_or(0),
                            at: event.at,
                            actor: event.actor,
                        });
                    }
                }
                EventKind::FrameForward => {
                    let to_node = event.detail.unwrap_or(0);
                    let dup = trace
                        .forwards
                        .iter()
                        .any(|f| f.actor == event.actor && f.to_node == to_node);
                    if !dup {
                        trace.forwards.push(ForwardSpan {
                            at: event.at,
                            actor: event.actor,
                            to_node,
                            atom: event.atom,
                            staged: event.seq == Some(1),
                        });
                    }
                }
                EventKind::Arrive => {
                    if let Actor::Host(h) = event.actor {
                        arrivals.entry((msg, h)).or_insert(event.at);
                    }
                }
                EventKind::Buffer(reason) => {
                    if let Actor::Host(h) = event.actor {
                        buffers.entry((msg, h)).or_insert(BufferSpan {
                            at: event.at,
                            reason,
                            depth: event.detail,
                        });
                    }
                }
                EventKind::Deliver => {
                    if let Actor::Host(h) = event.actor {
                        delivers.entry((msg, h)).or_insert_with(|| event.clone());
                    }
                }
                _ => {}
            }
        }

        for ((msg, host), event) in delivers {
            let trace = traces.get_mut(&msg).expect("deliver implies trace entry");
            let arrive_at = arrivals.get(&(msg, host)).copied();
            let buffered = buffers.get(&(msg, host)).copied();
            trace.deliveries.push(build_delivery(
                trace.publish_at,
                &trace.stamps,
                host,
                arrive_at,
                buffered,
                event,
            ));
        }

        for trace in traces.values_mut() {
            if trace.publish_at.is_some() && trace.deliveries.is_empty() {
                trace.gaps.push(SpanGap::Undelivered);
            }
        }

        TraceSet {
            traces,
            dropped_events: dropped,
        }
    }

    /// Events lost before capture (0 unless [`TraceSet::with_dropped`]).
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The reconstructed traces, ordered by message id.
    pub fn traces(&self) -> impl Iterator<Item = &MessageTrace> {
        self.traces.values()
    }

    /// The trace of one message, if any of its events were captured.
    pub fn get(&self, msg: u64) -> Option<&MessageTrace> {
        self.traces.get(&msg)
    }

    /// Number of messages with at least one captured event.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no message produced any event.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// How many traces are complete (see [`MessageTrace::is_complete`]).
    pub fn complete(&self) -> usize {
        self.traces.values().filter(|t| t.is_complete()).count()
    }

    /// How many traces carry at least one gap diagnostic.
    pub fn incomplete(&self) -> usize {
        self.len() - self.complete()
    }

    /// The `k` slowest deliveries (by end-to-end latency, descending;
    /// ties broken by message id then host for determinism). Deliveries
    /// without a publish event cannot be ranked and are excluded — they
    /// still appear in gap diagnostics.
    pub fn slowest(&self, k: usize) -> Vec<(&MessageTrace, &DeliverySpan)> {
        let mut ranked: Vec<(&MessageTrace, &DeliverySpan)> = self
            .traces
            .values()
            .flat_map(|t| {
                t.deliveries
                    .iter()
                    .filter(|d| d.end_to_end.is_some())
                    .map(move |d| (t, d))
            })
            .collect();
        ranked.sort_by(|(ta, da), (tb, db)| {
            db.end_to_end
                .cmp(&da.end_to_end)
                .then(ta.msg.cmp(&tb.msg))
                .then(da.host.cmp(&db.host))
        });
        ranked.truncate(k);
        ranked
    }

    /// Folds every delivery's breakdown into per-component histograms
    /// (the bench stretch-decomposition block).
    pub fn breakdown_histograms(&self) -> BreakdownHistograms {
        let mut out = BreakdownHistograms::default();
        for trace in self.traces.values() {
            for d in &trace.deliveries {
                if d.gaps.is_empty() && trace.gaps.is_empty() {
                    out.complete += 1;
                } else {
                    out.incomplete += 1;
                }
                let (Some(b), Some(e2e)) = (&d.breakdown, d.end_to_end) else {
                    continue;
                };
                out.stamp_wait.record(b.stamp_wait);
                out.wire.record(b.wire);
                out.group_gap_wait.record(b.group_gap_wait);
                out.atom_gap_wait.record(b.atom_gap_wait);
                out.end_to_end.record(e2e);
            }
        }
        out
    }
}

/// Builds one delivery span, clamping timestamps into path order so the
/// four components are non-negative and sum exactly to end-to-end.
fn build_delivery(
    publish_at: Option<u64>,
    stamps: &[StampSpan],
    host: u64,
    arrive_at: Option<u64>,
    buffered: Option<BufferSpan>,
    deliver: TraceEvent,
) -> DeliverySpan {
    let mut gaps = Vec::new();
    if arrive_at.is_none() {
        gaps.push(SpanGap::MissingArrive { host });
    }
    for &(atom, _seq) in &deliver.stamps {
        if !stamps.iter().any(|s| s.atom == atom) {
            gaps.push(SpanGap::MissingStamp { atom });
        }
    }

    let (breakdown, end_to_end) = match publish_at {
        None => {
            gaps.push(SpanGap::MissingPublish);
            (None, None)
        }
        Some(t_pub) => {
            let t_del = deliver.at.max(t_pub);
            // Without an arrive event the whole tail is attributed to
            // the wire (flagged above as MissingArrive).
            let t_arr = arrive_at.unwrap_or(t_del).clamp(t_pub, t_del);
            let t_stamp = stamps
                .iter()
                .map(|s| s.at)
                .max()
                .unwrap_or(t_pub)
                .clamp(t_pub, t_arr);
            let mut b = LatencyBreakdown {
                stamp_wait: t_stamp - t_pub,
                ..LatencyBreakdown::default()
            };
            match buffered {
                Some(buf) => {
                    b.wire = t_arr - t_stamp;
                    let gap = t_del - t_arr;
                    match buf.reason {
                        BufferReason::GroupGap => b.group_gap_wait = gap,
                        BufferReason::AtomGap => b.atom_gap_wait = gap,
                    }
                }
                None => b.wire = t_del - t_stamp,
            }
            (Some(b), Some(t_del - t_pub))
        }
    };

    DeliverySpan {
        host,
        arrive_at,
        buffered,
        deliver_at: deliver.at,
        seq: deliver.seq,
        epoch: deliver.detail,
        stamps: deliver.stamps,
        gaps,
        breakdown,
        end_to_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, actor: Actor, at: u64, msg: u64) -> TraceEvent {
        TraceEvent {
            at,
            msg: Some(msg),
            group: Some(2),
            ..TraceEvent::new(kind, actor)
        }
    }

    fn full_path() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                detail: Some(3),
                ..ev(EventKind::Publish, Actor::Publisher, 100, 7)
            },
            TraceEvent {
                atom: Some(4),
                seq: Some(2),
                ..ev(EventKind::AtomStamp, Actor::Node(1), 120, 7)
            },
            TraceEvent {
                atom: Some(9),
                seq: Some(5),
                ..ev(EventKind::AtomStamp, Actor::Node(2), 140, 7)
            },
            TraceEvent {
                detail: Some(2),
                atom: Some(9),
                seq: Some(0),
                ..ev(EventKind::FrameForward, Actor::Node(1), 125, 7)
            },
            ev(EventKind::Arrive, Actor::Host(9), 160, 7),
            TraceEvent {
                detail: Some(1),
                ..ev(
                    EventKind::Buffer(BufferReason::GroupGap),
                    Actor::Host(9),
                    160,
                    7,
                )
            },
            TraceEvent {
                seq: Some(1),
                detail: Some(0),
                stamps: vec![(4, 2), (9, 5)],
                ..ev(EventKind::Deliver, Actor::Host(9), 200, 7)
            },
        ]
    }

    #[test]
    fn reconstructs_a_complete_span_tree() {
        let set = TraceSet::from_events(&full_path());
        assert_eq!(set.len(), 1);
        let t = set.get(7).expect("trace");
        assert!(t.is_complete(), "gaps: {:?}", t.all_gaps().collect::<Vec<_>>());
        assert_eq!(t.publish_at, Some(100));
        assert_eq!(t.publish_host, Some(3));
        assert_eq!(t.stamps.len(), 2);
        assert_eq!(t.forwards.len(), 1);
        assert_eq!(t.forwards[0].atom, Some(9));
        assert_eq!(t.deliveries.len(), 1);
        let d = &t.deliveries[0];
        assert_eq!(d.host, 9);
        assert_eq!(d.epoch, Some(0));
        let b = d.breakdown.expect("breakdown");
        // publish@100 → last stamp@140 → arrive@160 → deliver@200,
        // buffered on a group gap.
        assert_eq!(b.stamp_wait, 40);
        assert_eq!(b.wire, 20);
        assert_eq!(b.group_gap_wait, 40);
        assert_eq!(b.atom_gap_wait, 0);
        assert_eq!(d.end_to_end, Some(100));
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn unbuffered_delivery_charges_the_tail_to_wire() {
        let mut events = full_path();
        events.retain(|e| !matches!(e.kind, EventKind::Buffer(_)));
        let set = TraceSet::from_events(&events);
        let b = set.get(7).unwrap().deliveries[0].breakdown.unwrap();
        assert_eq!(b.stamp_wait, 40);
        assert_eq!(b.wire, 60);
        assert_eq!(b.group_gap_wait + b.atom_gap_wait, 0);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn atom_gap_buffering_is_attributed_to_atom_gap() {
        let mut events = full_path();
        for e in &mut events {
            if let EventKind::Buffer(reason) = &mut e.kind {
                *reason = BufferReason::AtomGap;
            }
        }
        let b = TraceSet::from_events(&events).get(7).unwrap().deliveries[0]
            .breakdown
            .unwrap();
        assert_eq!(b.atom_gap_wait, 40);
        assert_eq!(b.group_gap_wait, 0);
    }

    #[test]
    fn missing_publish_is_a_typed_gap_not_a_skip() {
        let events: Vec<TraceEvent> = full_path()
            .into_iter()
            .filter(|e| e.kind != EventKind::Publish)
            .collect();
        let set = TraceSet::from_events(&events);
        let t = set.get(7).unwrap();
        assert!(!t.is_complete());
        let d = &t.deliveries[0];
        assert!(d.gaps.contains(&SpanGap::MissingPublish));
        assert_eq!(d.breakdown, None);
        assert_eq!(d.end_to_end, None);
        assert!(t.render().contains("incomplete"));
    }

    #[test]
    fn missing_stamp_and_arrive_are_reported() {
        let events: Vec<TraceEvent> = full_path()
            .into_iter()
            .filter(|e| {
                !(e.kind == EventKind::AtomStamp && e.atom == Some(9))
                    && e.kind != EventKind::Arrive
            })
            .collect();
        let set = TraceSet::from_events(&events);
        let d = &set.get(7).unwrap().deliveries[0];
        assert!(d.gaps.contains(&SpanGap::MissingStamp { atom: 9 }));
        assert!(d.gaps.contains(&SpanGap::MissingArrive { host: 9 }));
        // The breakdown still exists and still sums to end-to-end.
        let b = d.breakdown.unwrap();
        assert_eq!(Some(b.total()), d.end_to_end);
    }

    #[test]
    fn undelivered_publish_is_flagged() {
        let events = vec![TraceEvent {
            detail: Some(3),
            ..ev(EventKind::Publish, Actor::Publisher, 10, 1)
        }];
        let set = TraceSet::from_events(&events);
        let t = set.get(1).unwrap();
        assert_eq!(t.gaps, vec![SpanGap::Undelivered]);
        assert_eq!(set.complete(), 0);
        assert_eq!(set.incomplete(), 1);
    }

    #[test]
    fn crash_replay_duplicates_are_deduplicated_first_wins() {
        let mut events = full_path();
        // A replayed node re-stamps and re-forwards at later times.
        events.push(TraceEvent {
            atom: Some(4),
            seq: Some(2),
            ..ev(EventKind::AtomStamp, Actor::Node(1), 900, 7)
        });
        events.push(TraceEvent {
            detail: Some(2),
            ..ev(EventKind::FrameForward, Actor::Node(1), 910, 7)
        });
        events.push(ev(EventKind::Arrive, Actor::Host(9), 920, 7));
        let set = TraceSet::from_events(&events);
        let t = set.get(7).unwrap();
        assert_eq!(t.stamps.len(), 2);
        assert_eq!(t.forwards.len(), 1);
        assert_eq!(t.deliveries[0].arrive_at, Some(160));
        // The breakdown is unchanged by the replay noise.
        assert_eq!(t.deliveries[0].breakdown.unwrap().total(), 100);
    }

    #[test]
    fn clock_skew_clamps_components_to_non_negative() {
        // Arrive stamped *before* publish (cross-process skew): every
        // component must stay non-negative and the identity must hold.
        let events = vec![
            ev(EventKind::Publish, Actor::Publisher, 500, 3),
            TraceEvent {
                atom: Some(1),
                seq: Some(1),
                ..ev(EventKind::AtomStamp, Actor::Node(0), 480, 3)
            },
            ev(EventKind::Arrive, Actor::Host(2), 450, 3),
            TraceEvent {
                seq: Some(1),
                stamps: vec![(1, 1)],
                ..ev(EventKind::Deliver, Actor::Host(2), 520, 3)
            },
        ];
        let set = TraceSet::from_events(&events);
        let d = &set.get(3).unwrap().deliveries[0];
        let b = d.breakdown.unwrap();
        assert_eq!(b.total(), d.end_to_end.unwrap());
        assert_eq!(d.end_to_end, Some(20));
    }

    #[test]
    fn slowest_ranks_by_end_to_end_descending() {
        let mut events = full_path();
        events.push(ev(EventKind::Publish, Actor::Publisher, 0, 8));
        events.push(TraceEvent {
            seq: Some(2),
            stamps: vec![],
            ..ev(EventKind::Deliver, Actor::Host(9), 400, 8)
        });
        events.push(ev(EventKind::Arrive, Actor::Host(9), 300, 8));
        let set = TraceSet::from_events(&events);
        let top = set.slowest(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.msg, 8);
        assert_eq!(top[0].1.end_to_end, Some(400));
        assert_eq!(top[1].0.msg, 7);
        assert_eq!(set.slowest(1).len(), 1);
    }

    #[test]
    fn breakdown_histograms_fold_all_deliveries() {
        let set = TraceSet::from_events(&full_path());
        let h = set.breakdown_histograms();
        assert_eq!(h.complete, 1);
        assert_eq!(h.incomplete, 0);
        assert_eq!(h.end_to_end.count(), 1);
        assert_eq!(h.stamp_wait.count(), 1);
        assert_eq!(
            h.stamp_wait.sum() + h.wire.sum() + h.group_gap_wait.sum() + h.atom_gap_wait.sum(),
            h.end_to_end.sum()
        );
    }

    #[test]
    fn dropped_events_are_carried_through() {
        let set = TraceSet::with_dropped(&full_path(), 42);
        assert_eq!(set.dropped_events(), 42);
        assert_eq!(TraceSet::from_events(&full_path()).dropped_events(), 0);
    }
}
