//! Offline analysis of a JSONL event trace: the per-destination,
//! per-group, and per-atom tables behind the `seqnet-obs-report` binary.
//!
//! Latency is `deliver.at - publish.at` of the same message; buffering
//! time is `deliver.at - arrive.at` at the same host. Both are in
//! whatever unit the producing driver's clock used (virtual or wall
//! microseconds, or model-checker steps).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{BufferReason, EventKind, TraceEvent};
use crate::hist::Histogram;

/// Aggregates for one destination group.
#[derive(Debug, Clone, Default)]
pub struct GroupRow {
    /// Messages published to the group.
    pub published: u64,
    /// Deliveries across all subscriber hosts.
    pub delivered: u64,
    /// Buffer events (either reason).
    pub buffered: u64,
    /// Publish-to-deliver latency per delivery.
    pub latency: Histogram,
}

/// Aggregates for one sequencing atom.
#[derive(Debug, Clone, Default)]
pub struct AtomRow {
    /// Stamps assigned (group-local or overlap).
    pub stamps: u64,
    /// Highest sequence number assigned.
    pub max_seq: u64,
}

/// Aggregates for one subscriber host (a "destination" in the paper's
/// per-destination figures).
#[derive(Debug, Clone, Default)]
pub struct HostRow {
    /// Frames that arrived.
    pub arrived: u64,
    /// Arrivals that had to buffer, by reason (group gap, atom gap).
    pub buffered: (u64, u64),
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Publish-to-deliver latency per delivery.
    pub latency: Histogram,
    /// Arrive-to-deliver holding time per delivery.
    pub buffering: Histogram,
}

/// Everything the report renders, computed in one pass over the trace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Total events in the trace.
    pub events: u64,
    /// Events per kind wire name.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Per-group aggregates, keyed by group id.
    pub per_group: BTreeMap<u64, GroupRow>,
    /// Per-atom aggregates, keyed by atom id.
    pub per_atom: BTreeMap<u64, AtomRow>,
    /// Per-host aggregates, keyed by host node id.
    pub per_host: BTreeMap<u64, HostRow>,
}

impl Report {
    /// Builds the report from events in emission order.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut report = Report::default();
        let mut published_at: BTreeMap<u64, u64> = BTreeMap::new();
        let mut arrived_at: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for event in events {
            report.events += 1;
            *report.kind_counts.entry(event.kind.as_str()).or_insert(0) += 1;
            match event.kind {
                EventKind::Publish => {
                    if let (Some(msg), Some(group)) = (event.msg, event.group) {
                        published_at.entry(msg).or_insert(event.at);
                        report.per_group.entry(group).or_default().published += 1;
                    }
                }
                EventKind::AtomStamp => {
                    if let Some(atom) = event.atom {
                        let row = report.per_atom.entry(atom).or_default();
                        row.stamps += 1;
                        row.max_seq = row.max_seq.max(event.seq.unwrap_or(0));
                    }
                }
                EventKind::Arrive => {
                    if let (Some(host), Some(msg)) = (event.actor_host(), event.msg) {
                        arrived_at.entry((host, msg)).or_insert(event.at);
                        report.per_host.entry(host).or_default().arrived += 1;
                    }
                }
                EventKind::Buffer(reason) => {
                    if let Some(host) = event.actor_host() {
                        let row = report.per_host.entry(host).or_default();
                        match reason {
                            BufferReason::GroupGap => row.buffered.0 += 1,
                            BufferReason::AtomGap => row.buffered.1 += 1,
                        }
                    }
                    if let Some(group) = event.group {
                        report.per_group.entry(group).or_default().buffered += 1;
                    }
                }
                EventKind::Deliver => {
                    let (Some(host), Some(msg)) = (event.actor_host(), event.msg) else {
                        continue;
                    };
                    let row = report.per_host.entry(host).or_default();
                    row.delivered += 1;
                    if let Some(&at) = published_at.get(&msg) {
                        row.latency.record(event.at.saturating_sub(at));
                    }
                    if let Some(&at) = arrived_at.get(&(host, msg)) {
                        row.buffering.record(event.at.saturating_sub(at));
                    }
                    if let Some(group) = event.group {
                        let g = report.per_group.entry(group).or_default();
                        g.delivered += 1;
                        if let Some(&at) = published_at.get(&msg) {
                            g.latency.record(event.at.saturating_sub(at));
                        }
                    }
                }
                EventKind::FrameForward
                | EventKind::Crash
                | EventKind::Replay
                | EventKind::SnapshotFlush
                | EventKind::HeartbeatMiss
                | EventKind::EpochAdvance => {}
            }
        }
        report
    }

    /// The human-readable tables (summary, per-group, per-atom,
    /// per-destination), deterministic for a given trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== summary ==");
        let _ = writeln!(out, "events  {}", self.events);
        for (kind, count) in &self.kind_counts {
            let _ = writeln!(out, "{kind:<15} {count}");
        }

        let _ = writeln!(out, "\n== per-group ==");
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "group", "published", "delivered", "buffered", "lat_p50", "lat_p90", "lat_p99", "lat_max"
        );
        for (group, row) in &self.per_group {
            let _ = writeln!(
                out,
                "{:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
                group,
                row.published,
                row.delivered,
                row.buffered,
                opt(row.latency.p50()),
                opt(row.latency.p90()),
                opt(row.latency.p99()),
                opt(row.latency.max()),
            );
        }

        let _ = writeln!(out, "\n== per-atom ==");
        let _ = writeln!(out, "{:>6} {:>8} {:>8}", "atom", "stamps", "max_seq");
        for (atom, row) in &self.per_atom {
            let _ = writeln!(out, "{:>6} {:>8} {:>8}", atom, row.stamps, row.max_seq);
        }

        let _ = writeln!(out, "\n== per-destination ==");
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "host", "arrived", "delivered", "grp_gap", "atom_gap", "lat_p50", "lat_p99", "buf_p50", "buf_p99"
        );
        for (host, row) in &self.per_host {
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>9} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
                host,
                row.arrived,
                row.delivered,
                row.buffered.0,
                row.buffered.1,
                opt(row.latency.p50()),
                opt(row.latency.p99()),
                opt(row.buffering.p50()),
                opt(row.buffering.p99()),
            );
        }
        out
    }

    /// Per-group rows as CSV.
    pub fn group_csv(&self) -> String {
        let mut out = String::from("group,published,delivered,buffered,lat_p50,lat_p90,lat_p99,lat_max\n");
        for (group, row) in &self.per_group {
            let _ = writeln!(
                out,
                "{group},{},{},{},{},{},{},{}",
                row.published,
                row.delivered,
                row.buffered,
                opt(row.latency.p50()),
                opt(row.latency.p90()),
                opt(row.latency.p99()),
                opt(row.latency.max()),
            );
        }
        out
    }

    /// Per-atom rows as CSV.
    pub fn atom_csv(&self) -> String {
        let mut out = String::from("atom,stamps,max_seq\n");
        for (atom, row) in &self.per_atom {
            let _ = writeln!(out, "{atom},{},{}", row.stamps, row.max_seq);
        }
        out
    }

    /// Per-destination rows as CSV.
    pub fn host_csv(&self) -> String {
        let mut out = String::from(
            "host,arrived,delivered,buffered_group_gap,buffered_atom_gap,lat_p50,lat_p99,buf_p50,buf_p99\n",
        );
        for (host, row) in &self.per_host {
            let _ = writeln!(
                out,
                "{host},{},{},{},{},{},{},{},{}",
                row.arrived,
                row.delivered,
                row.buffered.0,
                row.buffered.1,
                opt(row.latency.p50()),
                opt(row.latency.p99()),
                opt(row.buffering.p50()),
                opt(row.buffering.p99()),
            );
        }
        out
    }
}

impl TraceEvent {
    fn actor_host(&self) -> Option<u64> {
        match self.actor {
            crate::event::Actor::Host(h) => Some(h),
            _ => None,
        }
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Actor;

    fn trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent { at: 0, msg: Some(1), group: Some(9), ..TraceEvent::new(EventKind::Publish, Actor::Publisher) },
            TraceEvent {
                at: 2,
                msg: Some(1),
                group: Some(9),
                atom: Some(4),
                seq: Some(1),
                ..TraceEvent::new(EventKind::AtomStamp, Actor::Node(0))
            },
            TraceEvent { at: 5, msg: Some(1), group: Some(9), ..TraceEvent::new(EventKind::Arrive, Actor::Host(7)) },
            TraceEvent {
                at: 5,
                msg: Some(1),
                group: Some(9),
                ..TraceEvent::new(EventKind::Buffer(BufferReason::GroupGap), Actor::Host(7))
            },
            TraceEvent {
                at: 11,
                msg: Some(1),
                group: Some(9),
                seq: Some(1),
                ..TraceEvent::new(EventKind::Deliver, Actor::Host(7))
            },
        ]
    }

    #[test]
    fn one_message_lifecycle_lands_in_every_table() {
        let r = Report::from_events(&trace());
        assert_eq!(r.events, 5);
        assert_eq!(r.kind_counts["publish"], 1);
        assert_eq!(r.kind_counts["buffer"], 1);

        let g = &r.per_group[&9];
        assert_eq!((g.published, g.delivered, g.buffered), (1, 1, 1));
        assert_eq!(g.latency.max(), Some(11));

        assert_eq!(r.per_atom[&4].stamps, 1);
        assert_eq!(r.per_atom[&4].max_seq, 1);

        let h = &r.per_host[&7];
        assert_eq!((h.arrived, h.delivered), (1, 1));
        assert_eq!(h.buffered, (1, 0));
        assert_eq!(h.buffering.max(), Some(6));
    }

    #[test]
    fn render_and_csv_are_deterministic() {
        let r = Report::from_events(&trace());
        assert_eq!(r.render(), r.render());
        assert!(r.render().contains("== per-destination =="));
        assert!(r.group_csv().starts_with("group,published"));
        assert_eq!(r.group_csv().lines().count(), 2);
        assert_eq!(r.atom_csv().lines().count(), 2);
        assert!(r.host_csv().contains("7,1,1,1,0,"));
    }
}
