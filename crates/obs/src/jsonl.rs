//! JSONL serialization of [`TraceEvent`]s — one event per line, a fixed
//! key order, and a hand-rolled parser for the same subset, so dumps are
//! byte-stable and round-trippable without a serde dependency.
//!
//! Key order: `at`, `kind`, `reason` (buffer events only), `actor`,
//! `msg`, `group`, `atom`, `seq`, `detail`, `stamps`. Unset optional
//! fields and empty stamp vectors are omitted entirely, which keeps the
//! encoding canonical: equal events serialize to equal bytes.

use std::fmt::Write as _;

use crate::event::{Actor, BufferReason, EventKind, TraceEvent};

/// Serializes one event as a single JSON object (no trailing newline).
pub fn to_jsonl(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"at\":{},\"kind\":\"{}\"", event.at, event.kind.as_str());
    if let EventKind::Buffer(reason) = event.kind {
        let _ = write!(s, ",\"reason\":\"{}\"", reason.as_str());
    }
    let _ = write!(s, ",\"actor\":\"{}\"", event.actor);
    for (key, value) in [
        ("msg", event.msg),
        ("group", event.group),
        ("atom", event.atom),
        ("seq", event.seq),
        ("detail", event.detail),
    ] {
        if let Some(v) = value {
            let _ = write!(s, ",\"{key}\":{v}");
        }
    }
    if !event.stamps.is_empty() {
        s.push_str(",\"stamps\":[");
        for (i, (atom, seq)) in event.stamps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{atom},{seq}]");
        }
        s.push(']');
    }
    s.push('}');
    s
}

/// Serializes a whole trace as JSONL (one event per line, trailing
/// newline after each).
pub fn to_jsonl_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&to_jsonl(event));
        out.push('\n');
    }
    out
}

/// Parses one line produced by [`to_jsonl`]. Accepts any key order;
/// returns `None` on malformed input or unknown kinds.
pub fn parse_jsonl(line: &str) -> Option<TraceEvent> {
    let mut p = Parser { rest: line.trim() };
    p.expect('{')?;
    let mut at = 0u64;
    let mut kind_name: Option<String> = None;
    let mut reason: Option<BufferReason> = None;
    let mut actor: Option<Actor> = None;
    let (mut msg, mut group, mut atom, mut seq, mut detail) = (None, None, None, None, None);
    let mut stamps = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "at" => at = p.number()?,
            "kind" => kind_name = Some(p.string()?),
            "reason" => reason = BufferReason::parse(&p.string()?),
            "actor" => actor = Actor::parse(&p.string()?),
            "msg" => msg = Some(p.number()?),
            "group" => group = Some(p.number()?),
            "atom" => atom = Some(p.number()?),
            "seq" => seq = Some(p.number()?),
            "detail" => detail = Some(p.number()?),
            "stamps" => stamps = p.pairs()?,
            _ => return None,
        }
        match p.next_char()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    if !p.rest.is_empty() {
        return None;
    }
    let kind = match kind_name?.as_str() {
        "publish" => EventKind::Publish,
        "atom-stamp" => EventKind::AtomStamp,
        "frame-forward" => EventKind::FrameForward,
        "arrive" => EventKind::Arrive,
        "buffer" => EventKind::Buffer(reason?),
        "deliver" => EventKind::Deliver,
        "crash" => EventKind::Crash,
        "replay" => EventKind::Replay,
        "snapshot-flush" => EventKind::SnapshotFlush,
        "heartbeat-miss" => EventKind::HeartbeatMiss,
        "epoch-advance" => EventKind::EpochAdvance,
        _ => return None,
    };
    Some(TraceEvent { at, kind, actor: actor?, msg, group, atom, seq, detail, stamps })
}

/// Parses a whole JSONL dump; `None` if any non-blank line is malformed.
pub fn parse_jsonl_lines(text: &str) -> Option<Vec<TraceEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_jsonl)
        .collect()
}

/// A minimal scanner for the subset of JSON that [`to_jsonl`] emits:
/// flat objects of numbers, plain strings, and arrays of number pairs.
struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn next_char(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.next_char()? == want).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let end = self.rest.find('"')?;
        let s = self.rest[..end].to_string();
        self.rest = &self.rest[end + 1..];
        // The schema never emits escapes; reject rather than mis-parse.
        (!s.contains('\\')).then_some(s)
    }

    fn number(&mut self) -> Option<u64> {
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        let n = self.rest[..end].parse().ok()?;
        self.rest = &self.rest[end..];
        Some(n)
    }

    fn pairs(&mut self) -> Option<Vec<(u64, u64)>> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.rest.starts_with(']') {
            self.next_char();
            return Some(out);
        }
        loop {
            self.expect('[')?;
            let a = self.number()?;
            self.expect(',')?;
            let b = self.number()?;
            self.expect(']')?;
            out.push((a, b));
            match self.next_char()? {
                ',' => continue,
                ']' => return Some(out),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent { at: 5, msg: Some(1), group: Some(2), ..TraceEvent::new(EventKind::Publish, Actor::Publisher) },
            TraceEvent {
                at: 9,
                msg: Some(1),
                group: Some(2),
                atom: Some(4),
                seq: Some(1),
                ..TraceEvent::new(EventKind::AtomStamp, Actor::Node(0))
            },
            TraceEvent {
                at: 12,
                msg: Some(1),
                group: Some(2),
                detail: Some(3),
                ..TraceEvent::new(EventKind::Buffer(BufferReason::AtomGap), Actor::Host(7))
            },
            TraceEvent {
                at: 20,
                msg: Some(1),
                group: Some(2),
                seq: Some(1),
                stamps: vec![(4, 1), (9, 3)],
                ..TraceEvent::new(EventKind::Deliver, Actor::Host(7))
            },
            TraceEvent::new(EventKind::Crash, Actor::Node(2)),
            TraceEvent {
                at: 31,
                detail: Some(1),
                ..TraceEvent::new(EventKind::EpochAdvance, Actor::Publisher)
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        for event in sample() {
            let line = to_jsonl(&event);
            assert_eq!(parse_jsonl(&line), Some(event), "line: {line}");
        }
    }

    #[test]
    fn encoding_is_canonical() {
        let e = &sample()[3];
        assert_eq!(
            to_jsonl(e),
            "{\"at\":20,\"kind\":\"deliver\",\"actor\":\"host7\",\"msg\":1,\"group\":2,\"seq\":1,\"stamps\":[[4,1],[9,3]]}"
        );
    }

    #[test]
    fn lines_roundtrip() {
        let events = sample();
        let text = to_jsonl_lines(&events);
        assert_eq!(parse_jsonl_lines(&text), Some(events));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"at\":1}",
            "{\"at\":1,\"kind\":\"warp\",\"actor\":\"node0\"}",
            "{\"at\":1,\"kind\":\"buffer\",\"actor\":\"node0\"}",
            "{\"at\":1,\"kind\":\"publish\",\"actor\":\"node0\"} trailing",
        ] {
            assert_eq!(parse_jsonl(bad), None, "accepted: {bad}");
        }
    }
}
