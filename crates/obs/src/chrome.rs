//! Chrome `trace_event`-format JSON export, so any reconstructed trace
//! opens directly in Perfetto or `chrome://tracing`.
//!
//! The mapping: every actor becomes a process (`pid` 1 for the
//! publisher front-end, `1000 + i` for sequencing node *i*, `2000 + n`
//! for subscriber host *n*, named via `process_name` metadata events);
//! every message becomes a thread (`tid` = message id), so one
//! message's spans stack in a single row. Each delivery's typed latency
//! components ([`crate::span::LatencyBreakdown`]) are emitted as
//! complete (`"X"`) events tiled end-to-end from the publish timestamp
//! under an enclosing per-delivery span, and the point events of the
//! path (publish, stamps, hops, arrive, buffer) are instants (`"i"`).
//! Timestamps pass through unscaled: the drivers' µs convention matches
//! the format's `ts`/`dur` unit exactly (checker step indices read as
//! "µs" in the UI, which is fine for ordering).
//!
//! [`validate`] structurally checks a rendered dump with a
//! self-contained JSON parser — CI and the unit tests run every export
//! through it, so a dump that would fail to load in the viewer fails
//! the build instead.

use std::fmt::Write as _;

use crate::event::Actor;
use crate::span::{MessageTrace, TraceSet};

/// The `pid` an actor maps to in the exported trace.
fn actor_pid(actor: Actor) -> u64 {
    match actor {
        Actor::Publisher => 1,
        Actor::Node(i) => 1000 + i,
        Actor::Host(n) => 2000 + n,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        EventWriter {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    fn push(&mut self, body: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('\n');
        self.out.push_str(body);
    }

    fn metadata(&mut self, pid: u64, name: &str) {
        self.push(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\
             \"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    fn instant(&mut self, pid: u64, tid: u64, ts: u64, name: &str) {
        self.push(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts},\"name\":\"{}\"}}",
            escape(name)
        ));
    }

    fn complete(&mut self, pid: u64, tid: u64, ts: u64, dur: u64, name: &str, args: &str) {
        self.push(&format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
             \"dur\":{dur},\"name\":\"{}\",\"args\":{{{args}}}}}",
            escape(name)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn export_trace(w: &mut EventWriter, trace: &MessageTrace) {
    let msg = trace.msg;
    if let Some(at) = trace.publish_at {
        w.instant(actor_pid(Actor::Publisher), msg, at, &format!("publish msg{msg}"));
    }
    for s in &trace.stamps {
        w.instant(
            actor_pid(s.actor),
            msg,
            s.at,
            &format!("stamp atom{} seq={}", s.atom, s.seq),
        );
    }
    for f in &trace.forwards {
        let staged = if f.staged { " (staged)" } else { "" };
        w.instant(
            actor_pid(f.actor),
            msg,
            f.at,
            &format!("forward → node{}{staged}", f.to_node),
        );
    }
    for d in &trace.deliveries {
        let pid = actor_pid(Actor::Host(d.host));
        if let Some(at) = d.arrive_at {
            w.instant(pid, msg, at, &format!("arrive msg{msg}"));
        }
        if let Some(b) = &d.buffered {
            w.instant(pid, msg, b.at, &format!("buffer ({})", b.reason.as_str()));
        }
        let (Some(breakdown), Some(e2e), Some(t_pub)) =
            (&d.breakdown, d.end_to_end, trace.publish_at)
        else {
            w.instant(pid, msg, d.deliver_at, &format!("deliver msg{msg} (incomplete)"));
            continue;
        };
        let group = trace.group.unwrap_or(0);
        let mut args = format!("\"group\":{group}");
        if let Some(seq) = d.seq {
            let _ = write!(args, ",\"seq\":{seq}");
        }
        if let Some(epoch) = d.epoch {
            let _ = write!(args, ",\"epoch\":{epoch}");
        }
        w.complete(pid, msg, t_pub, e2e, &format!("msg{msg} g{group}"), &args);
        let mut cursor = t_pub;
        for (name, dur) in breakdown.components() {
            if dur > 0 {
                w.complete(pid, msg, cursor, dur, name, "");
            }
            cursor += dur;
        }
    }
}

/// Renders a reconstructed [`TraceSet`] as Chrome `trace_event` JSON
/// (object format, `traceEvents` array). The result always passes
/// [`validate`].
pub fn export(set: &TraceSet) -> String {
    let mut w = EventWriter::new();
    // One process_name metadata event per actor seen anywhere.
    let mut actors: Vec<Actor> = Vec::new();
    let mut seen = |actors: &mut Vec<Actor>, a: Actor| {
        if !actors.contains(&a) {
            actors.push(a);
        }
    };
    for t in set.traces() {
        if t.publish_at.is_some() {
            seen(&mut actors, Actor::Publisher);
        }
        for s in &t.stamps {
            seen(&mut actors, s.actor);
        }
        for f in &t.forwards {
            seen(&mut actors, f.actor);
        }
        for d in &t.deliveries {
            seen(&mut actors, Actor::Host(d.host));
        }
    }
    actors.sort();
    for a in actors {
        w.metadata(actor_pid(a), &a.to_string());
    }
    for t in set.traces() {
        export_trace(&mut w, t);
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Structural validation: a minimal self-contained JSON parser plus the
// trace_event shape rules the viewers rely on.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

/// Structurally validates a Chrome `trace_event` JSON dump: well-formed
/// JSON, a top-level `traceEvents` array, and per event the fields the
/// viewers require — string `ph`/`name`, numeric `pid`/`tid`/`ts`, and
/// a non-negative `dur` on `"X"` events. Returns the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\" key")?;
    let Json::Arr(events) = events else {
        return Err("\"traceEvents\" is not an array".into());
    };
    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("traceEvents[{i}]: {what}"));
        if !matches!(event, Json::Obj(_)) {
            return fail("not an object");
        }
        let Some(ph) = event.get("ph").and_then(Json::str) else {
            return fail("missing string \"ph\"");
        };
        if event.get("name").and_then(Json::str).is_none() {
            return fail("missing string \"name\"");
        }
        for key in ["pid", "tid", "ts"] {
            match event.get(key).and_then(Json::num) {
                Some(n) if n.is_finite() => {}
                _ => return fail(&format!("missing numeric \"{key}\"")),
            }
        }
        if ph == "X" {
            match event.get("dur").and_then(Json::num) {
                Some(d) if d >= 0.0 => {}
                _ => return fail("\"X\" event without non-negative \"dur\""),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BufferReason, EventKind, TraceEvent};

    fn sample_set() -> TraceSet {
        let mk = |kind, actor, at, msg| TraceEvent {
            at,
            msg: Some(msg),
            group: Some(1),
            ..TraceEvent::new(kind, actor)
        };
        let events = vec![
            TraceEvent {
                detail: Some(5),
                ..mk(EventKind::Publish, Actor::Publisher, 10, 3)
            },
            TraceEvent {
                atom: Some(2),
                seq: Some(1),
                ..mk(EventKind::AtomStamp, Actor::Node(0), 20, 3)
            },
            TraceEvent {
                detail: Some(1),
                ..mk(EventKind::FrameForward, Actor::Node(0), 22, 3)
            },
            mk(EventKind::Arrive, Actor::Host(8), 30, 3),
            TraceEvent {
                detail: Some(1),
                ..mk(
                    EventKind::Buffer(BufferReason::AtomGap),
                    Actor::Host(8),
                    30,
                    3,
                )
            },
            TraceEvent {
                seq: Some(1),
                detail: Some(0),
                stamps: vec![(2, 1)],
                ..mk(EventKind::Deliver, Actor::Host(8), 50, 3)
            },
        ];
        TraceSet::from_events(&events)
    }

    #[test]
    fn export_passes_its_own_validator() {
        let text = export(&sample_set());
        validate(&text).expect("export must validate");
        // Components tile the enclosing span: 3 X events (msg + the two
        // non-zero components stamp_wait=10, wire=10, atom_gap_wait=20).
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("atom_gap_wait"));
        assert!(text.contains("process_name"));
        assert!(text.contains("\"epoch\":0"));
    }

    #[test]
    fn empty_set_is_still_valid() {
        let text = export(&TraceSet::from_events(&[]));
        validate(&text).expect("empty export must validate");
    }

    #[test]
    fn validator_rejects_structural_breakage() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\":3}").is_err());
        assert!(validate("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        let no_dur = "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\
                       \"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate(no_dur).is_err());
        let ok = "{\"traceEvents\":[{\"ph\":\"i\",\"name\":\"a\",\
                   \"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate(ok).is_ok());
    }

    #[test]
    fn validator_handles_escapes_and_nesting() {
        let text = "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"a\\\"b\\u00e9\",\
                     \"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"x\":[1,2,{\"y\":null}]}}]}";
        validate(text).expect("escapes and nesting must parse");
    }
}
