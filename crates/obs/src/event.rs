//! The typed protocol-event schema shared by every driver and exporter.

use std::fmt;

/// Why a receiver buffered a message instead of delivering it
/// (Definition 1's two continuity checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BufferReason {
    /// The group-local sequence number is ahead of the group expectation.
    GroupGap,
    /// A relevant overlap atom's stamp is ahead of the atom expectation.
    AtomGap,
}

impl BufferReason {
    /// The stable wire name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            BufferReason::GroupGap => "group-gap",
            BufferReason::AtomGap => "atom-gap",
        }
    }

    /// Parses the wire name back; inverse of [`BufferReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "group-gap" => Some(BufferReason::GroupGap),
            "atom-gap" => Some(BufferReason::AtomGap),
            _ => None,
        }
    }
}

/// What happened. One variant per observable protocol step; the set
/// covers the full life of a message (publish → stamp → forward →
/// arrive → buffer/deliver) plus the fault path (crash → replay →
/// snapshot flush) and the runtime's failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message entered the system at a publisher front-end. Drivers
    /// set `detail` to the publishing host's node id.
    Publish,
    /// A sequencing atom assigned a number (group-local or overlap).
    AtomStamp,
    /// A node forwarded a frame to the next node on the path
    /// (`detail` = destination node index; `seq` = 1 if staged;
    /// `atom` = the next sequencing atom on the path, when known).
    FrameForward,
    /// A distribution frame reached a subscriber host.
    Arrive,
    /// The host buffered the message; the reason says which check failed
    /// (`detail` = buffered depth after insertion).
    Buffer(BufferReason),
    /// Definition 1 said yes: the message was handed to the application
    /// (`seq` = group-local number, `stamps` = full sequence vector,
    /// `detail` = the configuration epoch delivered under).
    Deliver,
    /// A sequencing node crashed; arrivals park until restart.
    Crash,
    /// A restarted node re-processed one parked frame.
    Replay,
    /// A snapshot sealed the staged output: frames flushed to the wire
    /// (`detail` = how many) and cumulative acks advanced.
    SnapshotFlush,
    /// The runtime's failure detector missed a heartbeat
    /// (`detail` = suspected node index).
    HeartbeatMiss,
    /// An online reconfiguration handoff completed: the epoch-N graph
    /// drained and epoch-N+1 sequencing activated (`detail` = the epoch
    /// that just activated).
    EpochAdvance,
}

impl EventKind {
    /// The stable wire name used in JSONL dumps (the buffer reason is
    /// serialized separately).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Publish => "publish",
            EventKind::AtomStamp => "atom-stamp",
            EventKind::FrameForward => "frame-forward",
            EventKind::Arrive => "arrive",
            EventKind::Buffer(_) => "buffer",
            EventKind::Deliver => "deliver",
            EventKind::Crash => "crash",
            EventKind::Replay => "replay",
            EventKind::SnapshotFlush => "snapshot-flush",
            EventKind::HeartbeatMiss => "heartbeat-miss",
            EventKind::EpochAdvance => "epoch-advance",
        }
    }
}

/// Where an event happened. Node indices are driver-assigned (one per
/// atom in the simulator, one per co-location class in the runtime);
/// hosts are subscriber node ids, stable across both drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// An external publisher front-end.
    Publisher,
    /// A sequencing node, by driver-assigned index.
    Node(u64),
    /// A subscriber host, by node id.
    Host(u64),
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Actor::Publisher => write!(f, "publisher"),
            Actor::Node(i) => write!(f, "node{i}"),
            Actor::Host(n) => write!(f, "host{n}"),
        }
    }
}

impl Actor {
    /// Parses the wire name back; inverse of the `Display` impl.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "publisher" {
            return Some(Actor::Publisher);
        }
        if let Some(rest) = s.strip_prefix("node") {
            return rest.parse().ok().map(Actor::Node);
        }
        if let Some(rest) = s.strip_prefix("host") {
            return rest.parse().ok().map(Actor::Host);
        }
        None
    }
}

/// One observed protocol step. Identifiers are raw integers (this crate
/// sits below the typed id wrappers); `at` is a timestamp in whatever
/// unit the driver's clock uses — virtual microseconds in the simulator,
/// wall microseconds in the runtime, the step index in the model
/// checker. Sinks stamp `at` at record time, so emitters (the clock-free
/// protocol cores) leave it zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp (virtual, wall, or step counter) — stamped by the sink.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// Where it happened.
    pub actor: Actor,
    /// The message id, if the event concerns one message.
    pub msg: Option<u64>,
    /// The destination group of that message.
    pub group: Option<u64>,
    /// The sequencing atom involved (stamp events).
    pub atom: Option<u64>,
    /// A sequence number: the assigned number for [`EventKind::AtomStamp`],
    /// the group-local number for [`EventKind::Deliver`].
    pub seq: Option<u64>,
    /// Kind-specific detail; see the [`EventKind`] variant docs.
    pub detail: Option<u64>,
    /// The message's sequence vector `(atom, seq)` in path order;
    /// populated on delivery.
    pub stamps: Vec<(u64, u64)>,
}

impl TraceEvent {
    /// A bare event of `kind` at `actor`; every optional field unset.
    /// Emission sites fill in what they know with the struct-update
    /// syntax.
    pub fn new(kind: EventKind, actor: Actor) -> Self {
        TraceEvent {
            at: 0,
            kind,
            actor,
            msg: None,
            group: None,
            atom: None,
            seq: None,
            detail: None,
            stamps: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_roundtrips_through_display() {
        for actor in [Actor::Publisher, Actor::Node(3), Actor::Host(17)] {
            assert_eq!(Actor::parse(&actor.to_string()), Some(actor));
        }
        assert_eq!(Actor::parse("gateway9"), None);
        assert_eq!(Actor::parse("nodeX"), None);
    }

    #[test]
    fn buffer_reason_roundtrips() {
        for r in [BufferReason::GroupGap, BufferReason::AtomGap] {
            assert_eq!(BufferReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(BufferReason::parse("gap"), None);
    }
}
