//! Prometheus-style text exposition of a [`Registry`].
//!
//! The output follows the text exposition format (`# TYPE` headers,
//! cumulative `_bucket{le=...}` series, `_sum`/`_count`), with one
//! simplification: labeled series carry a single integer label whose
//! key the caller chooses per family (`group`, `atom`, `node`).
//! Output is deterministic — families and labels in sorted order —
//! so scrapes of identical state are byte-identical.

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::registry::Registry;

/// Renders the whole registry. `namespace` prefixes every metric name
/// (`seqnet` → `seqnet_latency_us_bucket{...}`); `label_key` maps a
/// family name to the label key its integer label should use, e.g.
/// `|name| if name.starts_with("atom_") { "atom" } else { "group" }`.
pub fn exposition(
    registry: &Registry,
    namespace: &str,
    label_key: impl Fn(&'static str) -> &'static str,
) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for ((name, label), value) in registry.counters() {
        if name != last_family {
            let _ = writeln!(out, "# TYPE {namespace}_{name} counter");
            last_family = name;
        }
        let labels = render_label(label_key(name), label);
        let _ = writeln!(out, "{namespace}_{name}{labels} {value}");
    }
    last_family = "";
    for ((name, label), hist) in registry.histograms() {
        if name != last_family {
            let _ = writeln!(out, "# TYPE {namespace}_{name} histogram");
            last_family = name;
        }
        render_histogram(&mut out, namespace, name, label_key(name), label, hist);
    }
    out
}

fn render_label(key: &str, label: Option<u64>) -> String {
    match label {
        Some(v) => format!("{{{key}=\"{v}\"}}"),
        None => String::new(),
    }
}

fn render_histogram(
    out: &mut String,
    namespace: &str,
    name: &str,
    key: &str,
    label: Option<u64>,
    hist: &Histogram,
) {
    let pair = |le: &str| match label {
        Some(v) => format!("{{{key}=\"{v}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let mut cumulative = 0u64;
    for (upper, count) in hist.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{namespace}_{name}_bucket{} {cumulative}",
            pair(&upper.to_string())
        );
    }
    let _ = writeln!(out, "{namespace}_{name}_bucket{} {cumulative}", pair("+Inf"));
    let labels = render_label(key, label);
    let _ = writeln!(out, "{namespace}_{name}_sum{labels} {}", hist.sum());
    let _ = writeln!(out, "{namespace}_{name}_count{labels} {}", hist.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_deterministic_and_cumulative() {
        let mut r = Registry::new();
        r.inc("frames_total", Some(2), 4);
        r.inc("frames_total", Some(1), 3);
        r.observe("latency_us", Some(1), 5);
        r.observe("latency_us", Some(1), 5);
        r.observe("latency_us", Some(1), 200);
        let text = exposition(&r, "seqnet", |_| "group");

        assert!(text.contains("# TYPE seqnet_frames_total counter\n"));
        // Sorted by label despite reversed insertion order.
        let one = text.find("frames_total{group=\"1\"} 3").unwrap();
        let two = text.find("frames_total{group=\"2\"} 4").unwrap();
        assert!(one < two);

        assert!(text.contains("# TYPE seqnet_latency_us histogram\n"));
        assert!(text.contains("seqnet_latency_us_bucket{group=\"1\",le=\"5\"} 2\n"));
        assert!(text.contains("seqnet_latency_us_bucket{group=\"1\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("seqnet_latency_us_sum{group=\"1\"} 210\n"));
        assert!(text.contains("seqnet_latency_us_count{group=\"1\"} 3\n"));

        assert_eq!(text, exposition(&r, "seqnet", |_| "group"));
    }

    #[test]
    fn unlabeled_series_omit_braces_on_scalars() {
        let mut r = Registry::new();
        r.inc("published_total", None, 7);
        r.observe("depth", None, 1);
        let text = exposition(&r, "x", |_| "group");
        assert!(text.contains("x_published_total 7\n"));
        assert!(text.contains("x_depth_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("x_depth_sum 1\n"));
    }
}
