//! Trace sinks: where emitted [`TraceEvent`]s go.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A consumer of protocol trace events.
///
/// The protocol cores are clock-free: they emit events with `at == 0`,
/// and the sink stamps `at` from the most recent [`TraceSink::now`] call
/// at record time. Drivers advance `now` with their own clock — virtual
/// microseconds in the simulator, wall microseconds in the runtime, the
/// step index in the model checker.
///
/// Emission sites guard event construction with [`TraceSink::enabled`],
/// so a disabled sink ([`NullSink`]) costs one inlined constant-false
/// branch and nothing else.
pub trait TraceSink: std::fmt::Debug {
    /// Whether [`TraceSink::record`] will be called at all. Emission
    /// sites skip building events when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Advances the sink's clock; subsequent records are stamped `at`.
    fn now(&mut self, _at: u64) {}

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The do-nothing sink: `enabled()` is a constant `false`, so the
/// untraced paths (`NodeCore::on_event` and friends) monomorphize to
/// exactly the pre-instrumentation code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// An unbounded in-memory event log, stamping each event with the
/// driver's clock. Backs the simulator's `--trace-out` stream and the
/// equivalence tests.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    at: u64,
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder at clock zero.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for Recorder {
    fn now(&mut self, at: u64) {
        self.at = at;
    }

    fn record(&mut self, mut event: TraceEvent) {
        event.at = self.at;
        self.events.push(event);
    }
}

/// A bounded ring buffer holding the last `capacity` events — cheap
/// enough to leave on in long runs, and dumpable as a JSONL causal trace
/// when an invariant failure needs the history that led up to it.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    at: u64,
    capacity: usize,
    seen: u64,
    ring: VecDeque<TraceEvent>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            at: 0,
            capacity,
            seen: 0,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Total events observed, including ones the ring has since dropped.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events the ring wrap discarded: `seen - retained`. Non-zero means
    /// any dump or span reconstruction over this recorder is incomplete
    /// — report it, never silently skip.
    pub fn dropped_events(&self) -> u64 {
        self.seen - self.ring.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// The retained tail serialized as JSONL (one event per line), ready
    /// to write next to a failing scenario's decision trace.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.ring {
            out.push_str(&crate::jsonl::to_jsonl(event));
            out.push('\n');
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    fn now(&mut self, at: u64) {
        self.at = at;
    }

    fn record(&mut self, mut event: TraceEvent) {
        event.at = self.at;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        self.seen += 1;
    }
}

/// Single-threaded shared handle: the simulator keeps one clone while
/// its engine holds another.
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }

    fn now(&mut self, at: u64) {
        self.borrow_mut().now(at);
    }

    fn record(&mut self, event: TraceEvent) {
        self.borrow_mut().record(event);
    }
}

/// Thread-shared handle: each runtime thread records into the same
/// recorder under a mutex.
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn enabled(&self) -> bool {
        self.lock().expect("trace sink poisoned").enabled()
    }

    fn now(&mut self, at: u64) {
        self.lock().expect("trace sink poisoned").now(at);
    }

    fn record(&mut self, event: TraceEvent) {
        self.lock().expect("trace sink poisoned").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Actor, EventKind};

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent::new(kind, Actor::Node(1))
    }

    #[test]
    fn recorder_stamps_clock_at_record_time() {
        let mut r = Recorder::new();
        r.record(ev(EventKind::Publish));
        r.now(42);
        r.record(ev(EventKind::Deliver));
        r.record(ev(EventKind::Arrive));
        let at: Vec<u64> = r.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![0, 42, 42]);
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..10u64 {
            fr.now(i);
            fr.record(ev(EventKind::Arrive));
        }
        assert_eq!(fr.seen(), 10);
        assert_eq!(fr.dropped_events(), 7);
        let at: Vec<u64> = fr.events().map(|e| e.at).collect();
        assert_eq!(at, vec![7, 8, 9]);
        assert_eq!(fr.dump_jsonl().lines().count(), 3);

        let mut small = FlightRecorder::new(16);
        small.record(ev(EventKind::Publish));
        assert_eq!(small.dropped_events(), 0);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn shared_handles_delegate() {
        let mut rc = Rc::new(RefCell::new(Recorder::new()));
        rc.now(7);
        rc.record(ev(EventKind::Crash));
        assert_eq!(rc.borrow().events()[0].at, 7);

        let mut arc = Arc::new(Mutex::new(FlightRecorder::new(2)));
        assert!(arc.enabled());
        arc.record(ev(EventKind::Replay));
        assert_eq!(arc.lock().unwrap().seen(), 1);
    }
}
