//! Observability primitives for the seqnet workspace.
//!
//! The paper's evaluation (§4.2) is entirely about distributions —
//! latency stretch, buffering delay, per-atom occupancy — so this crate
//! provides the machinery to measure them uniformly across the
//! deterministic simulator, the threaded runtime, and the model checker:
//!
//! * [`TraceEvent`] / [`TraceSink`] — one typed protocol-event schema
//!   (publish, stamp, forward, arrive, buffer, deliver, crash, replay,
//!   snapshot flush) emitted by the protocol cores and their drivers.
//!   [`NullSink`] makes the hooks zero-cost when tracing is off.
//! * [`Recorder`] / [`FlightRecorder`] — an unbounded event log and a
//!   bounded ring buffer any invariant failure can dump as a JSONL
//!   causal trace of the last N events.
//! * [`Histogram`] — a fixed-bucket log-linear histogram (no
//!   dependencies, mergeable, p50/p90/p99/max) replacing mean-only
//!   metrics, plus [`Registry`] for per-group/per-atom families.
//! * [`stats`] — the shared scalar primitives (`mean`, `percentile`,
//!   `cdf`, `freq_histogram`) the per-crate stats modules delegate to.
//! * [`jsonl`] / [`prom`] / [`report`] — exporters: a JSONL event
//!   stream, Prometheus-style text exposition, and the per-destination /
//!   per-atom tables behind the `seqnet-obs-report` binary.
//! * [`span`] / [`chrome`] — the trace plane: per-message span-tree
//!   reconstruction with a typed latency-stretch decomposition
//!   (`stamp_wait` / `wire` / `group_gap_wait` / `atom_gap_wait`) and a
//!   Chrome `trace_event` exporter so dumps open in Perfetto.
//!
//! This crate has **no dependencies** (not even on other seqnet crates):
//! it sits at the bottom of the workspace so every layer — including
//! `seqnet-membership` and `seqnet-overlap` — can share one counter and
//! histogram implementation. Protocol identifiers therefore appear here
//! as raw integers; the typed wrappers live in `seqnet-core`, which
//! converts at the emission sites.

mod event;
mod hist;
mod registry;
mod sink;

pub mod chrome;
pub mod jsonl;
pub mod prom;
pub mod report;
pub mod span;
pub mod stats;

pub use event::{Actor, BufferReason, EventKind, TraceEvent};
pub use hist::Histogram;
pub use registry::Registry;
pub use sink::{FlightRecorder, NullSink, Recorder, TraceSink};
