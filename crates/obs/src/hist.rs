//! A fixed-bucket log-linear histogram: no dependencies, mergeable,
//! bounded relative error.

/// Linear sub-buckets per power of two (2^4 = 16), bounding the relative
/// quantile error at 1/16 ≈ 6%.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// 16 exact buckets for values 0..16, then 16 per octave up to 2^63.
const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A log-linear histogram over `u64` values (HdrHistogram-style, scaled
/// down): values below 16 count exactly, larger values land in one of 16
/// linear sub-buckets per power of two, so any quantile is off by at most
/// ~6% of its value. The bucket layout is fixed, which makes histograms
/// mergeable and their memory bounded (~8 KiB) regardless of range.
///
/// Record durations as integer microseconds and dimensionless ratios
/// (stretch, stress) scaled by 1000.
///
/// # Example
///
/// ```
/// use seqnet_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.max(), Some(100));
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((48..=56).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (exp - SUB_BITS) as usize * SUB + sub
}

/// The largest value that lands in bucket `b` (inclusive).
fn bucket_upper(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let exp = (b - SUB) as u32 / SUB as u32 + SUB_BITS; // octave
    let sub = ((b - SUB) % SUB) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    // Summed in this order so the top bucket reaches u64::MAX without
    // overflowing: (2^exp - 1) + 16 * 2^(exp-4) = 2^(exp+1) - 1.
    ((1u64 << exp) - 1) + (sub + 1) * width
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram in; the bucket layout is fixed, so merging
    /// is exact (per-bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. `0.99` for p99),
    /// reported as the upper bound of the containing bucket and clamped
    /// to the recorded max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(bucket_upper(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in value
    /// order — the shape Prometheus exposition and plotting want.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_upper(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            let q = (v as f64 + 1.0) / 16.0;
            assert_eq!(h.quantile(q), Some(v), "q={q}");
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|exp| {
                [0u64, 1, 3].map(|off| (1u64 << exp).saturating_add(off << exp.saturating_sub(5)))
            })
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let b = bucket_index(v);
            assert!(b < NUM_BUCKETS, "v={v} b={b}");
            assert!(b >= last, "v={v}: bucket index regressed");
            last = b;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn upper_bound_contains_its_bucket() {
        for v in [0u64, 5, 15, 16, 17, 100, 1000, 123_456, u64::MAX / 3] {
            let b = bucket_index(v);
            assert!(bucket_upper(b) >= v, "v={v}");
            if b + 1 < NUM_BUCKETS {
                assert!(bucket_upper(b) < bucket_upper(b + 1));
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q).unwrap() as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(err < 0.07, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
