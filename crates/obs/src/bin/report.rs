//! `seqnet-obs-report` — summarize a JSONL protocol trace.
//!
//! Usage:
//!
//! ```text
//! seqnet-obs-report <trace.jsonl> [--csv-out DIR]
//! ```
//!
//! Prints the summary, per-group, per-atom, and per-destination tables
//! to stdout; with `--csv-out` also writes `per_group.csv`,
//! `per_atom.csv`, and `per_host.csv` under DIR. Exit codes: 0 on
//! success, 1 on a malformed trace, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use seqnet_obs::jsonl;
use seqnet_obs::report::Report;

struct Args {
    trace: PathBuf,
    csv_out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut trace = None;
    let mut csv_out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv-out" => {
                let dir = it.next().ok_or("--csv-out needs a directory")?;
                csv_out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if trace.replace(PathBuf::from(other)).is_some() {
                    return Err("expected exactly one trace file".into());
                }
            }
        }
    }
    Ok(Args {
        trace: trace.ok_or("missing trace file")?,
        csv_out,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: seqnet-obs-report <trace.jsonl> [--csv-out DIR]");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&args.trace) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", args.trace.display());
            return ExitCode::from(1);
        }
    };
    let Some(events) = jsonl::parse_jsonl_lines(&text) else {
        eprintln!("error: {} is not a valid JSONL trace", args.trace.display());
        return ExitCode::from(1);
    };

    let report = Report::from_events(&events);
    print!("{}", report.render());

    if let Some(dir) = &args.csv_out {
        let write = |name: &str, body: String| -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join(name), body)
        };
        let result = write("per_group.csv", report.group_csv())
            .and_then(|()| write("per_atom.csv", report.atom_csv()))
            .and_then(|()| write("per_host.csv", report.host_csv()));
        if let Err(err) = result {
            eprintln!("error: writing CSVs under {}: {err}", dir.display());
            return ExitCode::from(1);
        }
        eprintln!("wrote per_group.csv, per_atom.csv, per_host.csv to {}", dir.display());
    }
    ExitCode::SUCCESS
}
