//! `seqnet-obs-report` — summarize a JSONL protocol trace.
//!
//! Usage:
//!
//! ```text
//! seqnet-obs-report <trace.jsonl> [--csv-out DIR]
//! seqnet-obs-report spans <trace.jsonl>... [--top K] [--chrome-out FILE]
//! ```
//!
//! The default mode prints the summary, per-group, per-atom, and
//! per-destination tables to stdout; with `--csv-out` it also writes
//! `per_group.csv`, `per_atom.csv`, and `per_host.csv` under DIR.
//!
//! `spans` reconstructs per-message span trees from one or more JSONL
//! dumps (a multi-process cluster writes one file per node plus a
//! coordinator file — pass them all; events are joined per message, so
//! cross-file ordering does not matter), prints the top-K slowest
//! deliveries with their `stamp_wait`/`wire`/`group_gap_wait`/
//! `atom_gap_wait` breakdowns and every incompleteness diagnostic, and
//! with `--chrome-out` writes a Chrome `trace_event` JSON file that
//! opens in Perfetto or `chrome://tracing` (structurally validated
//! before writing).
//!
//! Exit codes: 0 on success, 1 on a malformed trace, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use seqnet_obs::report::Report;
use seqnet_obs::span::TraceSet;
use seqnet_obs::{chrome, jsonl, TraceEvent};

const USAGE: &str = "usage: seqnet-obs-report <trace.jsonl> [--csv-out DIR]\n\
       seqnet-obs-report spans <trace.jsonl>... [--top K] [--chrome-out FILE]";

struct Args {
    trace: PathBuf,
    csv_out: Option<PathBuf>,
}

struct SpanArgs {
    traces: Vec<PathBuf>,
    top: usize,
    chrome_out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut trace = None;
    let mut csv_out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv-out" => {
                let dir = it.next().ok_or("--csv-out needs a directory")?;
                csv_out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if trace.replace(PathBuf::from(other)).is_some() {
                    return Err("expected exactly one trace file".into());
                }
            }
        }
    }
    Ok(Args {
        trace: trace.ok_or("missing trace file")?,
        csv_out,
    })
}

fn parse_span_args(argv: &[String]) -> Result<SpanArgs, String> {
    let mut traces = Vec::new();
    let mut top = 10usize;
    let mut chrome_out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let k = it.next().ok_or("--top needs a count")?;
                top = k.parse().map_err(|_| format!("bad --top value {k}"))?;
            }
            "--chrome-out" => {
                let path = it.next().ok_or("--chrome-out needs a file")?;
                chrome_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => traces.push(PathBuf::from(other)),
        }
    }
    if traces.is_empty() {
        return Err("spans needs at least one trace file".into());
    }
    Ok(SpanArgs {
        traces,
        top,
        chrome_out,
    })
}

fn read_events(paths: &[PathBuf]) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        let parsed = jsonl::parse_jsonl_lines(&text)
            .ok_or_else(|| format!("{} is not a valid JSONL trace", path.display()))?;
        events.extend(parsed);
    }
    Ok(events)
}

fn run_spans(args: &SpanArgs) -> Result<(), String> {
    let events = read_events(&args.traces)?;
    let set = TraceSet::from_events(&events);
    let h = set.breakdown_histograms();

    println!(
        "spans: {} message(s) reconstructed from {} event(s) across {} file(s)",
        set.len(),
        events.len(),
        args.traces.len()
    );
    println!(
        "complete {} / incomplete {} (messages: {} complete, {} with gaps)",
        h.complete,
        h.incomplete,
        set.complete(),
        set.incomplete()
    );
    let q = |hist: &seqnet_obs::Histogram| {
        format!(
            "p50={} p95={} p99={} max={}",
            hist.p50().unwrap_or(0),
            hist.p95().unwrap_or(0),
            hist.p99().unwrap_or(0),
            hist.max().unwrap_or(0)
        )
    };
    println!("  stamp_wait     {}", q(&h.stamp_wait));
    println!("  wire           {}", q(&h.wire));
    println!("  group_gap_wait {}", q(&h.group_gap_wait));
    println!("  atom_gap_wait  {}", q(&h.atom_gap_wait));
    println!("  end_to_end     {}", q(&h.end_to_end));

    let slowest = set.slowest(args.top);
    if !slowest.is_empty() {
        println!("\ntop {} slowest deliveries:", slowest.len());
        let mut shown = std::collections::BTreeSet::new();
        for (trace, d) in &slowest {
            println!(
                "-- msg {} → host{}: end-to-end {}",
                trace.msg,
                d.host,
                d.end_to_end.unwrap_or(0)
            );
            if shown.insert(trace.msg) {
                print!("{}", trace.render());
            }
        }
    }

    let incomplete: Vec<_> = set.traces().filter(|t| !t.is_complete()).collect();
    if !incomplete.is_empty() {
        println!("\nincomplete span trees ({}):", incomplete.len());
        for t in incomplete.iter().take(args.top) {
            let gaps: Vec<String> = t.all_gaps().map(|g| g.to_string()).collect();
            println!("  msg {}: {}", t.msg, gaps.join("; "));
        }
        if incomplete.len() > args.top {
            println!("  ... and {} more", incomplete.len() - args.top);
        }
    }

    if let Some(path) = &args.chrome_out {
        let text = chrome::export(&set);
        chrome::validate(&text).map_err(|err| format!("chrome export invalid: {err}"))?;
        std::fs::write(path, &text)
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
        eprintln!("wrote Chrome trace JSON to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();

    if argv.first().map(String::as_str) == Some("spans") {
        let args = match parse_span_args(&argv[1..]) {
            Ok(args) => args,
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}");
                }
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        };
        return match run_spans(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(1)
            }
        };
    }

    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&args.trace) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", args.trace.display());
            return ExitCode::from(1);
        }
    };
    let Some(events) = jsonl::parse_jsonl_lines(&text) else {
        eprintln!("error: {} is not a valid JSONL trace", args.trace.display());
        return ExitCode::from(1);
    };

    let report = Report::from_events(&events);
    print!("{}", report.render());

    if let Some(dir) = &args.csv_out {
        let write = |name: &str, body: String| -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join(name), body)
        };
        let result = write("per_group.csv", report.group_csv())
            .and_then(|()| write("per_atom.csv", report.atom_csv()))
            .and_then(|()| write("per_host.csv", report.host_csv()));
        if let Err(err) = result {
            eprintln!("error: writing CSVs under {}: {err}", dir.display());
            return ExitCode::from(1);
        }
        eprintln!("wrote per_group.csv, per_atom.csv, per_host.csv to {}", dir.display());
    }
    ExitCode::SUCCESS
}
