//! A registry of counter and histogram families, keyed by a static
//! metric name plus an optional integer label (group id, atom id, node
//! index). This is the per-group / per-atom layer the paper's figures
//! aggregate over, and the input to the Prometheus exposition in
//! [`crate::prom`].

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// A metric key: family name plus optional integer label. `None` is the
/// unlabeled total series.
pub type Key = (&'static str, Option<u64>);

/// Counter and histogram families. Deterministically ordered (BTreeMap)
/// so expositions and reports are byte-stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to the counter `name{label}` (creating it at zero).
    pub fn inc(&mut self, name: &'static str, label: Option<u64>, n: u64) {
        *self.counters.entry((name, label)).or_insert(0) += n;
    }

    /// The current value of a counter, zero if never incremented.
    pub fn counter(&self, name: &'static str, label: Option<u64>) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// The histogram `name{label}`, created empty on first use.
    pub fn histogram(&mut self, name: &'static str, label: Option<u64>) -> &mut Histogram {
        self.histograms.entry((name, label)).or_default()
    }

    /// Records one observation into `name{label}`.
    pub fn observe(&mut self, name: &'static str, label: Option<u64>, value: u64) {
        self.histogram(name, label).record(value);
    }

    /// The histogram `name{label}`, if any observation created it.
    pub fn get_histogram(&self, name: &'static str, label: Option<u64>) -> Option<&Histogram> {
        self.histograms.get(&(name, label))
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (Key, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, h)| (k, h))
    }

    /// The labels present in a histogram family, in order.
    pub fn labels_of(&self, name: &'static str) -> Vec<Option<u64>> {
        self.histograms
            .keys()
            .filter(|(n, _)| *n == name)
            .map(|&(_, label)| label)
            .collect()
    }

    /// Merges each histogram of the named family into one (the
    /// cross-label aggregate the summary tables print).
    pub fn merged(&self, name: &'static str) -> Histogram {
        let mut total = Histogram::new();
        for ((n, _), h) in &self.histograms {
            if *n == name {
                total.merge(h);
            }
        }
        total
    }

    /// Folds another registry in (exact: fixed bucket layouts).
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// `true` when no counter or histogram has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let mut r = Registry::new();
        r.inc("frames_total", Some(1), 2);
        r.inc("frames_total", Some(1), 3);
        r.inc("frames_total", None, 5);
        assert_eq!(r.counter("frames_total", Some(1)), 5);
        assert_eq!(r.counter("frames_total", None), 5);
        assert_eq!(r.counter("missing", None), 0);

        r.observe("latency_us", Some(1), 100);
        r.observe("latency_us", Some(2), 300);
        assert_eq!(r.get_histogram("latency_us", Some(1)).unwrap().count(), 1);
        assert_eq!(r.merged("latency_us").count(), 2);
        assert_eq!(r.merged("latency_us").max(), Some(300));
        assert_eq!(r.labels_of("latency_us"), vec![Some(1), Some(2)]);
    }

    #[test]
    fn merge_combines_both_families() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.inc("n", None, 1);
        b.inc("n", None, 2);
        a.observe("h", Some(0), 10);
        b.observe("h", Some(0), 20);
        a.merge(&b);
        assert_eq!(a.counter("n", None), 3);
        let h = a.get_histogram("h", Some(0)).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
    }
}
