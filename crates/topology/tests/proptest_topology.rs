//! Property-based tests of the topology substrate: generated topologies
//! are connected with sane delays; shortest paths obey metric laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_topology::{
    ClusteredAttachment, Delay, DelayOracle, HostId, RouterId, TransitStubParams, WaxmanParams,
};

fn params_strategy() -> impl Strategy<Value = TransitStubParams> {
    (1usize..=3, 2usize..=5, 1usize..=3, 2usize..=8).prop_map(
        |(domains, dsize, stubs, ssize)| {
            let mut p = TransitStubParams::small();
            p.transit_domains = domains;
            p.transit_domain_size = dsize;
            p.stubs_per_transit_router = stubs;
            p.stub_domain_size = ssize;
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated transit–stub topology is connected and has the
    /// promised size.
    #[test]
    fn transit_stub_connected(p in params_strategy(), seed in any::<u64>()) {
        let topo = p.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(topo.graph.num_routers(), p.total_routers());
        prop_assert!(topo.graph.is_connected());
        prop_assert_eq!(
            topo.num_stub_domains(),
            p.transit_domains * p.transit_domain_size * p.stubs_per_transit_router
        );
    }

    /// Shortest-path delays form a metric: symmetric, zero on the
    /// diagonal, and satisfying the triangle inequality.
    #[test]
    fn shortest_paths_are_a_metric(seed in any::<u64>()) {
        let p = TransitStubParams::small();
        let topo = p.generate(&mut StdRng::seed_from_u64(seed));
        let mut oracle = DelayOracle::new(&topo.graph);
        // Sample a handful of routers.
        let n = topo.graph.num_routers() as u32;
        let picks: Vec<RouterId> =
            (0..5).map(|i| RouterId((seed as u32).wrapping_add(i * 61) % n)).collect();
        for &a in &picks {
            prop_assert_eq!(oracle.router_delay(a, a), Delay::ZERO);
            for &b in &picks {
                prop_assert_eq!(oracle.router_delay(a, b), oracle.router_delay(b, a));
                for &c in &picks {
                    let direct = oracle.router_delay(a, c);
                    let via = oracle.router_delay(a, b) + oracle.router_delay(b, c);
                    prop_assert!(direct <= via, "triangle inequality violated");
                }
            }
        }
    }

    /// Host attachment covers every host with an in-range router, for any
    /// cluster size.
    #[test]
    fn attachment_total(hosts in 1usize..40, cluster in 1usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubParams::small().generate(&mut rng);
        let map = ClusteredAttachment::new(hosts, cluster).attach(&topo, &mut rng);
        prop_assert_eq!(map.num_hosts(), hosts);
        for (h, r) in map.iter() {
            prop_assert!(r.index() < topo.graph.num_routers(), "host {} off-graph", h);
        }
        // Same-cluster hosts share a stub domain.
        for i in 0..hosts {
            let c = i / cluster;
            let first_in_cluster = c * cluster;
            let d1 = topo.routers[map.router_of(HostId(first_in_cluster as u32)).index()].domain;
            let d2 = topo.routers[map.router_of(HostId(i as u32)).index()].domain;
            prop_assert_eq!(d1, d2, "host {} strayed from its cluster domain", i);
        }
    }

    /// Waxman graphs stay connected across parameters.
    #[test]
    fn waxman_connected(n in 1usize..80, seed in any::<u64>()) {
        let topo = WaxmanParams::new(n).generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(topo.graph.num_routers(), n);
        prop_assert!(topo.graph.is_connected());
    }
}
