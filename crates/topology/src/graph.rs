//! Weighted undirected router graphs and shortest-path computation.

use crate::Delay;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies a router in the topology graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Returns the id as a `usize` suitable for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// An undirected graph of routers with propagation-delay edge weights.
///
/// The simulator models "the propagation delay between routers, but not
/// packet losses or queuing delays" (paper §4.1), so an edge weight is the
/// complete cost model for a link.
///
/// # Example
///
/// ```
/// use seqnet_topology::{Graph, RouterId, Delay};
/// let mut g = Graph::with_routers(3);
/// g.add_link(RouterId(0), RouterId(1), Delay::from_ms(5.0));
/// g.add_link(RouterId(1), RouterId(2), Delay::from_ms(7.0));
/// let sp = g.shortest_paths(RouterId(0));
/// assert_eq!(sp.delay_to(RouterId(2)), Some(Delay::from_ms(12.0)));
/// assert_eq!(sp.path_to(RouterId(2)), Some(vec![RouterId(0), RouterId(1), RouterId(2)]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// adjacency[r] = list of (neighbor, delay)
    adjacency: Vec<Vec<(RouterId, Delay)>>,
    num_links: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated routers `RouterId(0..n)`.
    pub fn with_routers(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            num_links: 0,
        }
    }

    /// Adds a router and returns its id.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId(self.adjacency.len() as u32);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link between `a` and `b` with the given delay.
    ///
    /// Parallel links are permitted (the shortest one wins in routing).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `a == b`.
    pub fn add_link(&mut self, a: RouterId, b: RouterId, delay: Delay) {
        assert!(a != b, "self-loop at {a}");
        assert!(a.index() < self.adjacency.len(), "unknown router {a}");
        assert!(b.index() < self.adjacency.len(), "unknown router {b}");
        self.adjacency[a.index()].push((b, delay));
        self.adjacency[b.index()].push((a, delay));
        self.num_links += 1;
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Iterates the neighbors of `r` with link delays.
    pub fn neighbors(&self, r: RouterId) -> impl Iterator<Item = (RouterId, Delay)> + '_ {
        self.adjacency[r.index()].iter().copied()
    }

    /// Returns `true` if two routers are directly linked.
    pub fn linked(&self, a: RouterId, b: RouterId) -> bool {
        self.adjacency[a.index()].iter().any(|&(n, _)| n == b)
    }

    /// Single-source shortest paths (Dijkstra) from `src`.
    ///
    /// Runs in `O((V + E) log V)`; with a 10,000-router topology and one
    /// source per attached host this dominates experiment setup, so results
    /// should be cached (see [`crate::DelayOracle`]).
    pub fn shortest_paths(&self, src: RouterId) -> ShortestPaths {
        assert!(src.index() < self.adjacency.len(), "unknown router {src}");
        let n = self.adjacency.len();
        let mut dist = vec![Delay::MAX; n];
        let mut prev: Vec<Option<RouterId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = Delay::ZERO;
        heap.push(Reverse((Delay::ZERO, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue; // stale entry
            }
            for &(v, w) in &self.adjacency[u.index()] {
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(u);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        ShortestPaths { src, dist, prev }
    }

    /// Returns `true` if every router can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.adjacency.is_empty() {
            return true;
        }
        let sp = self.shortest_paths(RouterId(0));
        sp.dist.iter().all(|&d| d != Delay::MAX)
    }
}

/// The result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    src: RouterId,
    dist: Vec<Delay>,
    prev: Vec<Option<RouterId>>,
}

impl ShortestPaths {
    /// The source router.
    pub fn source(&self) -> RouterId {
        self.src
    }

    /// Shortest delay from the source to `dst`, or `None` if unreachable.
    pub fn delay_to(&self, dst: RouterId) -> Option<Delay> {
        let d = self.dist[dst.index()];
        (d != Delay::MAX).then_some(d)
    }

    /// All delays, indexed by router; `Delay::MAX` marks unreachable.
    pub fn delays(&self) -> &[Delay] {
        &self.dist
    }

    /// The router sequence of the shortest path from the source to `dst`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, dst: RouterId) -> Option<Vec<RouterId>> {
        if self.dist[dst.index()] == Delay::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.src);
        path.reverse();
        Some(path)
    }

    /// Number of hops (links) on the shortest path to `dst`.
    pub fn hops_to(&self, dst: RouterId) -> Option<usize> {
        self.path_to(dst).map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }
    fn ms(v: f64) -> Delay {
        Delay::from_ms(v)
    }

    /// A diamond where the long way around is cheaper than the direct edge.
    fn diamond() -> Graph {
        let mut g = Graph::with_routers(4);
        g.add_link(r(0), r(1), ms(1.0));
        g.add_link(r(1), r(3), ms(1.0));
        g.add_link(r(0), r(2), ms(5.0));
        g.add_link(r(2), r(3), ms(5.0));
        g.add_link(r(0), r(3), ms(3.0));
        g
    }

    #[test]
    fn dijkstra_picks_cheapest_route() {
        let g = diamond();
        let sp = g.shortest_paths(r(0));
        assert_eq!(sp.delay_to(r(3)), Some(ms(2.0)));
        assert_eq!(sp.path_to(r(3)), Some(vec![r(0), r(1), r(3)]));
        assert_eq!(sp.hops_to(r(3)), Some(2));
    }

    #[test]
    fn dijkstra_source_is_zero() {
        let g = diamond();
        let sp = g.shortest_paths(r(2));
        assert_eq!(sp.delay_to(r(2)), Some(Delay::ZERO));
        assert_eq!(sp.path_to(r(2)), Some(vec![r(2)]));
        assert_eq!(sp.source(), r(2));
    }

    #[test]
    fn unreachable_router() {
        let mut g = Graph::with_routers(3);
        g.add_link(r(0), r(1), ms(1.0));
        let sp = g.shortest_paths(r(0));
        assert_eq!(sp.delay_to(r(2)), None);
        assert_eq!(sp.path_to(r(2)), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn parallel_links_shortest_wins() {
        let mut g = Graph::with_routers(2);
        g.add_link(r(0), r(1), ms(9.0));
        g.add_link(r(0), r(1), ms(2.0));
        let sp = g.shortest_paths(r(0));
        assert_eq!(sp.delay_to(r(1)), Some(ms(2.0)));
        assert_eq!(g.num_links(), 2);
    }

    #[test]
    fn dijkstra_matches_brute_force_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..12);
            let mut g = Graph::with_routers(n);
            // random connected-ish graph
            for i in 1..n {
                let j = rng.gen_range(0..i);
                g.add_link(r(i as u32), r(j as u32), Delay::from_micros(rng.gen_range(1..100)));
            }
            for _ in 0..n {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    g.add_link(r(a as u32), r(b as u32), Delay::from_micros(rng.gen_range(1..100)));
                }
            }
            // Bellman-Ford brute force from router 0
            let mut bf = vec![u64::MAX; n];
            bf[0] = 0;
            for _ in 0..n {
                for u in 0..n {
                    if bf[u] == u64::MAX {
                        continue;
                    }
                    for (v, w) in g.neighbors(r(u as u32)) {
                        let cand = bf[u] + w.as_micros();
                        if cand < bf[v.index()] {
                            bf[v.index()] = cand;
                        }
                    }
                }
            }
            let sp = g.shortest_paths(r(0));
            #[allow(clippy::needless_range_loop)] // parallel-indexing is the clear form
            for v in 0..n {
                let got = sp.delay_to(r(v as u32)).map(|d| d.as_micros()).unwrap_or(u64::MAX);
                assert_eq!(got, bf[v], "router {v}");
            }
        }
    }

    #[test]
    fn path_delays_are_consistent() {
        let g = diamond();
        let sp = g.shortest_paths(r(0));
        for dst in 0..4u32 {
            let path = sp.path_to(r(dst)).unwrap();
            let mut total = Delay::ZERO;
            for w in path.windows(2) {
                let hop = g
                    .neighbors(w[0])
                    .filter(|&(n, _)| n == w[1])
                    .map(|(_, d)| d)
                    .min()
                    .unwrap();
                total += hop;
            }
            assert_eq!(Some(total), sp.delay_to(r(dst)), "dst {dst}");
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::with_routers(1);
        g.add_link(r(0), r(0), ms(1.0));
    }

    #[test]
    fn add_router_grows_graph() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        assert_eq!((a, b), (r(0), r(1)));
        assert_eq!(g.num_routers(), 2);
        assert!(!g.linked(a, b));
        g.add_link(a, b, ms(1.0));
        assert!(g.linked(a, b));
    }
}
