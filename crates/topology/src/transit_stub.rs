//! Transit–stub topology generation in the style of GT-ITM.
//!
//! GT-ITM's transit–stub model (Zegura et al., Infocom 1996) builds an
//! internet-like hierarchy: a core of interconnected *transit domains*, each
//! transit router connecting one or more *stub domains*. Stub domains only
//! carry traffic that originates or terminates in them.
//!
//! Delays follow the hierarchy: intra-stub links are fast (LAN-ish),
//! transit–transit inter-domain links are slow (WAN-ish).

use crate::{Delay, Graph, RouterId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// Identifies a (transit or stub) domain within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Whether a router sits in the transit core or in a stub domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Backbone router inside a transit domain.
    Transit,
    /// Edge router inside a stub domain; hosts attach here.
    Stub,
}

/// Structural metadata for one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterInfo {
    /// Transit core or stub edge.
    pub kind: DomainKind,
    /// The domain this router belongs to.
    pub domain: DomainId,
}

/// A generated topology: the router graph plus structural metadata.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The router-level graph with propagation delays.
    pub graph: Graph,
    /// Metadata per router, indexed by [`RouterId`].
    pub routers: Vec<RouterInfo>,
    /// For each stub domain, its member routers.
    pub stub_domains: Vec<Vec<RouterId>>,
}

impl Topology {
    /// Routers of the given stub domain (index into [`Topology::stub_domains`]).
    pub fn stub_domain(&self, idx: usize) -> &[RouterId] {
        &self.stub_domains[idx]
    }

    /// Number of stub domains.
    pub fn num_stub_domains(&self) -> usize {
        self.stub_domains.len()
    }
}

/// Parameters of the transit–stub generator.
///
/// The defaults ([`TransitStubParams::paper`]) produce the paper's scale:
/// 10,000 routers (10 transit domains x 10 routers, 3 stub domains of 33
/// routers per transit router).
///
/// # Example
///
/// ```
/// use seqnet_topology::TransitStubParams;
/// use rand::{rngs::StdRng, SeedableRng};
/// let topo = TransitStubParams::small().generate(&mut StdRng::seed_from_u64(1));
/// assert!(topo.graph.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_domain_size: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_router: usize,
    /// Routers per stub domain.
    pub stub_domain_size: usize,
    /// Probability of an extra (non-spanning-tree) edge inside a transit domain.
    pub transit_edge_prob: f64,
    /// Probability of an extra edge inside a stub domain.
    pub stub_edge_prob: f64,
    /// Delay range for transit–transit inter-domain links, in ms.
    pub transit_transit_delay_ms: Range<f64>,
    /// Delay range for links inside a transit domain, in ms.
    pub intra_transit_delay_ms: Range<f64>,
    /// Delay range for transit–stub attachment links, in ms.
    pub transit_stub_delay_ms: Range<f64>,
    /// Delay range for links inside a stub domain, in ms.
    pub intra_stub_delay_ms: Range<f64>,
}

impl TransitStubParams {
    /// The paper-scale topology: 10,000 routers.
    pub fn paper() -> Self {
        TransitStubParams {
            transit_domains: 10,
            transit_domain_size: 10,
            stubs_per_transit_router: 3,
            stub_domain_size: 33,
            ..Self::base()
        }
    }

    /// A small topology (~310 routers) for unit tests and doc examples.
    pub fn small() -> Self {
        TransitStubParams {
            transit_domains: 2,
            transit_domain_size: 5,
            stubs_per_transit_router: 2,
            stub_domain_size: 15,
            ..Self::base()
        }
    }

    /// A medium topology (~2,020 routers) for integration tests.
    pub fn medium() -> Self {
        TransitStubParams {
            transit_domains: 4,
            transit_domain_size: 10,
            stubs_per_transit_router: 2,
            stub_domain_size: 24,
            ..Self::base()
        }
    }

    fn base() -> Self {
        TransitStubParams {
            transit_domains: 1,
            transit_domain_size: 1,
            stubs_per_transit_router: 1,
            stub_domain_size: 1,
            transit_edge_prob: 0.3,
            stub_edge_prob: 0.2,
            transit_transit_delay_ms: 20.0..50.0,
            intra_transit_delay_ms: 10.0..20.0,
            transit_stub_delay_ms: 5.0..10.0,
            intra_stub_delay_ms: 1.0..5.0,
        }
    }

    /// Total number of routers this configuration will generate.
    pub fn total_routers(&self) -> usize {
        let transit = self.transit_domains * self.transit_domain_size;
        transit + transit * self.stubs_per_transit_router * self.stub_domain_size
    }

    /// Generates a topology.
    ///
    /// The result is always connected: each domain is built as a random
    /// spanning tree plus probabilistic extra edges, domains are chained by
    /// a random inter-domain spanning tree plus extras, and every stub
    /// domain attaches to its transit router.
    ///
    /// # Panics
    ///
    /// Panics if any of the structural sizes is zero.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Topology {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(self.transit_domain_size > 0, "transit domains must be non-empty");
        assert!(self.stub_domain_size > 0, "stub domains must be non-empty");

        let mut graph = Graph::new();
        let mut routers: Vec<RouterInfo> = Vec::with_capacity(self.total_routers());
        let mut stub_domains: Vec<Vec<RouterId>> = Vec::new();
        let mut next_domain = 0u32;

        // 1. Transit domains.
        let mut transit_domain_routers: Vec<Vec<RouterId>> = Vec::new();
        for _ in 0..self.transit_domains {
            let domain = DomainId(next_domain);
            next_domain += 1;
            let members = self.connected_subgraph(
                &mut graph,
                rng,
                self.transit_domain_size,
                self.transit_edge_prob,
                &self.intra_transit_delay_ms,
            );
            for _ in &members {
                routers.push(RouterInfo {
                    kind: DomainKind::Transit,
                    domain,
                });
            }
            transit_domain_routers.push(members);
        }

        // 2. Inter-transit-domain links: random spanning tree over domains
        //    plus one extra random inter-domain link per domain pair with
        //    the transit edge probability.
        let mut order: Vec<usize> = (0..self.transit_domains).collect();
        order.shuffle(rng);
        for w in 1..order.len() {
            let a = order[w];
            let b = order[rng.gen_range(0..w)];
            let ra = *transit_domain_routers[a].choose(rng).expect("non-empty domain");
            let rb = *transit_domain_routers[b].choose(rng).expect("non-empty domain");
            graph.add_link(ra, rb, self.sample_delay(rng, &self.transit_transit_delay_ms));
        }
        for a in 0..self.transit_domains {
            for b in (a + 1)..self.transit_domains {
                if rng.gen_bool(self.transit_edge_prob) {
                    let ra = *transit_domain_routers[a].choose(rng).expect("non-empty");
                    let rb = *transit_domain_routers[b].choose(rng).expect("non-empty");
                    if !graph.linked(ra, rb) {
                        graph.add_link(ra, rb, self.sample_delay(rng, &self.transit_transit_delay_ms));
                    }
                }
            }
        }

        // 3. Stub domains hanging off each transit router.
        for domain_routers in &transit_domain_routers {
            for &transit_router in domain_routers {
                for _ in 0..self.stubs_per_transit_router {
                    let domain = DomainId(next_domain);
                    next_domain += 1;
                    let members = self.connected_subgraph(
                        &mut graph,
                        rng,
                        self.stub_domain_size,
                        self.stub_edge_prob,
                        &self.intra_stub_delay_ms,
                    );
                    for _ in &members {
                        routers.push(RouterInfo {
                            kind: DomainKind::Stub,
                            domain,
                        });
                    }
                    let gateway = *members.choose(rng).expect("non-empty stub");
                    graph.add_link(
                        transit_router,
                        gateway,
                        self.sample_delay(rng, &self.transit_stub_delay_ms),
                    );
                    stub_domains.push(members);
                }
            }
        }

        debug_assert_eq!(graph.num_routers(), routers.len());
        Topology {
            graph,
            routers,
            stub_domains,
        }
    }

    /// Adds `size` fresh routers forming a connected random subgraph:
    /// a random spanning tree plus extra edges with probability `extra_prob`.
    fn connected_subgraph<R: Rng>(
        &self,
        graph: &mut Graph,
        rng: &mut R,
        size: usize,
        extra_prob: f64,
        delay_ms: &Range<f64>,
    ) -> Vec<RouterId> {
        let members: Vec<RouterId> = (0..size).map(|_| graph.add_router()).collect();
        for i in 1..size {
            let j = rng.gen_range(0..i);
            graph.add_link(members[i], members[j], self.sample_delay(rng, delay_ms));
        }
        for i in 0..size {
            for j in (i + 1)..size {
                // Skip pairs already joined by the spanning tree.
                if !graph.linked(members[i], members[j]) && rng.gen_bool(extra_prob) {
                    graph.add_link(members[i], members[j], self.sample_delay(rng, delay_ms));
                }
            }
        }
        members
    }

    fn sample_delay<R: Rng>(&self, rng: &mut R, range: &Range<f64>) -> Delay {
        Delay::from_ms(rng.gen_range(range.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn paper_scale_is_ten_thousand() {
        assert_eq!(TransitStubParams::paper().total_routers(), 10_000);
    }

    #[test]
    fn small_topology_structure() {
        let p = TransitStubParams::small();
        let topo = p.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(topo.graph.num_routers(), p.total_routers());
        assert_eq!(topo.routers.len(), p.total_routers());
        assert!(topo.graph.is_connected(), "generated topology must be connected");
        let transit = topo
            .routers
            .iter()
            .filter(|r| r.kind == DomainKind::Transit)
            .count();
        assert_eq!(transit, p.transit_domains * p.transit_domain_size);
        assert_eq!(
            topo.num_stub_domains(),
            p.transit_domains * p.transit_domain_size * p.stubs_per_transit_router
        );
        for idx in 0..topo.num_stub_domains() {
            assert_eq!(topo.stub_domain(idx).len(), p.stub_domain_size);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = TransitStubParams::small();
        let a = p.generate(&mut StdRng::seed_from_u64(9));
        let b = p.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.graph.num_links(), b.graph.num_links());
        let spa = a.graph.shortest_paths(RouterId(0));
        let spb = b.graph.shortest_paths(RouterId(0));
        assert_eq!(spa.delays(), spb.delays());
    }

    #[test]
    fn intra_stub_delays_smaller_than_transit() {
        let p = TransitStubParams::small();
        let topo = p.generate(&mut StdRng::seed_from_u64(3));
        // Links between two stub routers of the same domain must fall in the
        // intra-stub range.
        for idx in 0..topo.num_stub_domains() {
            let members = topo.stub_domain(idx);
            for &m in members {
                for (nbr, d) in topo.graph.neighbors(m) {
                    if members.contains(&nbr) {
                        let ms = d.as_ms();
                        assert!(
                            (1.0..5.0).contains(&ms),
                            "intra-stub delay {ms}ms out of range"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stub_routers_reach_core_through_hierarchy() {
        let p = TransitStubParams::small();
        let topo = p.generate(&mut StdRng::seed_from_u64(4));
        // Any two routers in different stub domains must communicate at a
        // delay of at least the transit-stub attachment (they must leave the
        // stub domain).
        let a = topo.stub_domain(0)[0];
        let b = topo.stub_domain(topo.num_stub_domains() - 1)[0];
        let sp = topo.graph.shortest_paths(a);
        let d = sp.delay_to(b).expect("connected");
        assert!(d.as_ms() >= 5.0, "cross-stub delay {d} suspiciously small");
    }

    #[test]
    #[should_panic(expected = "at least one transit domain")]
    fn zero_transit_domains_rejected() {
        let mut p = TransitStubParams::small();
        p.transit_domains = 0;
        let _ = p.generate(&mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn medium_scale_connected() {
        let p = TransitStubParams::medium();
        let topo = p.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(topo.graph.num_routers(), p.total_routers());
        assert!(topo.graph.is_connected());
    }
}
