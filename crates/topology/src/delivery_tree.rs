//! Delivery trees for the distribution phase.
//!
//! "If the message is leaving the sequencer network, it will be sent to a
//! delivery tree and on to group members" (paper §3.1). A delivery tree is
//! the union of shortest paths from the egress router to every member
//! router: per-member latency equals unicast latency (the simulator's
//! model), but the tree shares upstream links, so the *link stress* — how
//! many copies of a message cross a physical link — drops from the unicast
//! fan-out's duplicates to one copy per tree link.

use crate::{Delay, Graph, RouterId};
use std::collections::{BTreeMap, BTreeSet};

/// A shortest-path delivery tree from one source router to a member set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryTree {
    source: RouterId,
    /// Child -> parent edges of the tree (source has no parent).
    parent: BTreeMap<RouterId, RouterId>,
    /// Delay from the source to each covered router.
    delay: BTreeMap<RouterId, Delay>,
    members: Vec<RouterId>,
}

impl DeliveryTree {
    /// Builds the tree as the union of shortest paths from `source` to
    /// each member router.
    ///
    /// # Panics
    ///
    /// Panics if a member is unreachable (generated topologies are
    /// connected).
    pub fn build(graph: &Graph, source: RouterId, members: &[RouterId]) -> Self {
        let sp = graph.shortest_paths(source);
        let mut parent = BTreeMap::new();
        let mut delay = BTreeMap::new();
        delay.insert(source, Delay::ZERO);
        for &m in members {
            let path = sp
                .path_to(m)
                .unwrap_or_else(|| panic!("{m} unreachable from {source}"));
            let mut acc = Delay::ZERO;
            for w in path.windows(2) {
                let hop = graph
                    .neighbors(w[0])
                    .filter(|&(n, _)| n == w[1])
                    .map(|(_, d)| d)
                    .min()
                    .expect("consecutive path routers are linked");
                acc += hop;
                parent.entry(w[1]).or_insert(w[0]);
                delay.entry(w[1]).or_insert(acc);
            }
        }
        DeliveryTree {
            source,
            parent,
            delay,
            members: members.to_vec(),
        }
    }

    /// The egress router the tree is rooted at.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// Delay from the source to `router`, if the tree covers it.
    pub fn delay_to(&self, router: RouterId) -> Option<Delay> {
        self.delay.get(&router).copied()
    }

    /// Number of links in the tree — the copies of one message the
    /// network carries. Unicast fan-out carries `sum(path hops)` instead.
    pub fn num_links(&self) -> usize {
        self.parent.len()
    }

    /// Total links a unicast fan-out to the same members would traverse
    /// (counting shared links once per member).
    pub fn unicast_link_crossings(&self, graph: &Graph) -> usize {
        let sp = graph.shortest_paths(self.source);
        self.members
            .iter()
            .map(|&m| sp.hops_to(m).expect("member reachable"))
            .sum()
    }

    /// Per-link stress of unicast fan-out: how many copies cross each
    /// link. In the tree every covered link carries exactly one copy.
    pub fn unicast_link_stress(&self, graph: &Graph) -> BTreeMap<(RouterId, RouterId), usize> {
        let sp = graph.shortest_paths(self.source);
        let mut stress: BTreeMap<(RouterId, RouterId), usize> = BTreeMap::new();
        for &m in &self.members {
            let path = sp.path_to(m).expect("member reachable");
            for w in path.windows(2) {
                let key = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                *stress.entry(key).or_insert(0) += 1;
            }
        }
        stress
    }

    /// The routers covered by the tree (members and interior nodes).
    pub fn covered(&self) -> BTreeSet<RouterId> {
        let mut out: BTreeSet<RouterId> = self.delay.keys().copied().collect();
        out.insert(self.source);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitStubParams;
    use rand::{rngs::StdRng, SeedableRng};

    fn star_graph() -> Graph {
        // source 0 -> hub 1 -> leaves 2,3,4
        let mut g = Graph::with_routers(5);
        g.add_link(RouterId(0), RouterId(1), Delay::from_ms(5.0));
        for leaf in 2..5u32 {
            g.add_link(RouterId(1), RouterId(leaf), Delay::from_ms(1.0));
        }
        g
    }

    #[test]
    fn tree_shares_the_trunk() {
        let g = star_graph();
        let members = [RouterId(2), RouterId(3), RouterId(4)];
        let tree = DeliveryTree::build(&g, RouterId(0), &members);
        // Tree: 0-1 once, then three leaf links = 4 links.
        assert_eq!(tree.num_links(), 4);
        // Unicast: each member's path crosses the trunk: 3 * 2 = 6 links.
        assert_eq!(tree.unicast_link_crossings(&g), 6);
        // Trunk stress under unicast is 3; in the tree it is 1 by def.
        let stress = tree.unicast_link_stress(&g);
        assert_eq!(stress[&(RouterId(0), RouterId(1))], 3);
    }

    #[test]
    fn delays_match_shortest_paths() {
        let g = star_graph();
        let members = [RouterId(2), RouterId(3)];
        let tree = DeliveryTree::build(&g, RouterId(0), &members);
        assert_eq!(tree.delay_to(RouterId(2)), Some(Delay::from_ms(6.0)));
        assert_eq!(tree.delay_to(RouterId(1)), Some(Delay::from_ms(5.0)));
        assert_eq!(tree.delay_to(RouterId(4)), None, "not covered");
        assert_eq!(tree.source(), RouterId(0));
    }

    #[test]
    fn covered_includes_interior_routers() {
        let g = star_graph();
        let tree = DeliveryTree::build(&g, RouterId(0), &[RouterId(2)]);
        let covered = tree.covered();
        assert!(covered.contains(&RouterId(0)));
        assert!(covered.contains(&RouterId(1)), "hub is interior");
        assert!(covered.contains(&RouterId(2)));
        assert!(!covered.contains(&RouterId(3)));
    }

    #[test]
    fn tree_on_generated_topology_never_worse_than_unicast() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = TransitStubParams::small().generate(&mut rng);
        let members: Vec<RouterId> = (0..8)
            .map(|i| topo.stub_domain(i % topo.num_stub_domains())[0])
            .collect();
        let source = topo.stub_domain(topo.num_stub_domains() - 1)[1];
        let tree = DeliveryTree::build(&topo.graph, source, &members);
        assert!(tree.num_links() <= tree.unicast_link_crossings(&topo.graph));
        // Every member is covered with its unicast delay.
        let sp = topo.graph.shortest_paths(source);
        for &m in &members {
            assert_eq!(tree.delay_to(m), sp.delay_to(m));
        }
    }

    #[test]
    fn empty_member_set_is_trivial() {
        let g = star_graph();
        let tree = DeliveryTree::build(&g, RouterId(0), &[]);
        assert_eq!(tree.num_links(), 0);
        assert_eq!(tree.covered().len(), 1);
    }
}
