//! Propagation delay as a totally-ordered, exact quantity.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A propagation delay, stored as integer microseconds.
///
/// Using integer microseconds instead of `f64` milliseconds gives delays a
/// total order (no NaN), makes them hashable, and keeps discrete-event
/// simulation arithmetic exact and platform-independent.
///
/// # Example
///
/// ```
/// use seqnet_topology::Delay;
/// let a = Delay::from_ms(1.5);
/// let b = Delay::from_micros(500);
/// assert_eq!(a + b, Delay::from_ms(2.0));
/// assert!(a > b);
/// assert_eq!((a + b).as_ms(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Delay(u64);

impl Delay {
    /// Zero delay.
    pub const ZERO: Delay = Delay(0);
    /// The maximum representable delay; used as "unreachable" sentinel in
    /// shortest-path computations.
    pub const MAX: Delay = Delay(u64::MAX);

    /// Creates a delay from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Delay(us)
    }

    /// Creates a delay from (possibly fractional) milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "delay must be finite and non-negative: {ms}");
        Delay((ms * 1_000.0).round() as u64)
    }

    /// The delay in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The delay in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Delay) -> Delay {
        Delay(self.0.saturating_sub(rhs.0))
    }

    /// The ratio `self / other` as `f64`. Returns `f64::INFINITY` when
    /// `other` is zero and `self` is not.
    #[inline]
    pub fn ratio(self, other: Delay) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl Add for Delay {
    type Output = Delay;
    #[inline]
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0.checked_add(rhs.0).expect("delay overflow"))
    }
}

impl AddAssign for Delay {
    #[inline]
    fn add_assign(&mut self, rhs: Delay) {
        *self = *self + rhs;
    }
}

impl Sub for Delay {
    type Output = Delay;
    /// # Panics
    ///
    /// Panics on underflow; use [`Delay::saturating_sub`] when the operands
    /// may be unordered.
    #[inline]
    fn sub(self, rhs: Delay) -> Delay {
        Delay(self.0.checked_sub(rhs.0).expect("delay underflow"))
    }
}

impl Mul<u64> for Delay {
    type Output = Delay;
    #[inline]
    fn mul(self, rhs: u64) -> Delay {
        Delay(self.0.checked_mul(rhs).expect("delay overflow"))
    }
}

impl Div<u64> for Delay {
    type Output = Delay;
    #[inline]
    fn div(self, rhs: u64) -> Delay {
        Delay(self.0 / rhs)
    }
}

impl Sum for Delay {
    fn sum<I: Iterator<Item = Delay>>(iter: I) -> Delay {
        iter.fold(Delay::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Delay::from_ms(1.0).as_micros(), 1_000);
        assert_eq!(Delay::from_micros(2_500).as_ms(), 2.5);
        assert_eq!(Delay::from_ms(0.0), Delay::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Delay::from_micros(100);
        let b = Delay::from_micros(50);
        assert_eq!(a + b, Delay::from_micros(150));
        assert_eq!(a - b, Delay::from_micros(50));
        assert_eq!(a * 3, Delay::from_micros(300));
        assert_eq!(a / 4, Delay::from_micros(25));
        assert_eq!(b.saturating_sub(a), Delay::ZERO);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(Delay::from_micros(10).ratio(Delay::from_micros(5)), 2.0);
        assert_eq!(Delay::ZERO.ratio(Delay::ZERO), 1.0);
        assert!(Delay::from_micros(1).ratio(Delay::ZERO).is_infinite());
    }

    #[test]
    fn sum_of_delays() {
        let total: Delay = [1u64, 2, 3].into_iter().map(Delay::from_micros).sum();
        assert_eq!(total, Delay::from_micros(6));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_ms_rejected() {
        let _ = Delay::from_ms(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Delay::from_ms(1.5).to_string(), "1.500ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Delay::from_ms(3.0), Delay::ZERO, Delay::from_ms(1.0)];
        v.sort();
        assert_eq!(v, vec![Delay::ZERO, Delay::from_ms(1.0), Delay::from_ms(3.0)]);
    }
}
