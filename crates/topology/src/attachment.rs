//! Host-to-router attachment.
//!
//! Paper §4.1: "We attach hosts to the topology by grouping them into
//! similar size clusters, then distributing each cluster uniformly at
//! random through the topology. Nodes in the same cluster are placed close
//! to each other. We choose this mapping because it is consistent with
//! online communities, in which users tend to cluster around the
//! lowest-latency server."

use crate::{HostId, RouterId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Maps each host to the router it attaches to.
///
/// Host-to-router attachment links are modeled as zero-delay: the host's
/// first hop *is* its router, consistent with the paper measuring
/// router-to-router propagation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMap {
    attach: Vec<RouterId>,
}

impl HostMap {
    /// Builds a map from an explicit attachment vector (index = host id).
    pub fn from_vec(attach: Vec<RouterId>) -> Self {
        HostMap { attach }
    }

    /// The router that `host` attaches to.
    ///
    /// # Panics
    ///
    /// Panics if the host id is out of range.
    pub fn router_of(&self, host: HostId) -> RouterId {
        self.attach[host.index()]
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.attach.len()
    }

    /// Iterates `(host, router)` pairs in host-id order.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, RouterId)> + '_ {
        self.attach
            .iter()
            .enumerate()
            .map(|(i, &r)| (HostId(i as u32), r))
    }
}

/// Clustered host attachment (paper §4.1).
///
/// Hosts are split into clusters of `cluster_size` (the last cluster may be
/// smaller); each cluster picks a stub domain uniformly at random and its
/// hosts attach to routers inside that domain, so intra-cluster latency is
/// low.
///
/// # Example
///
/// ```
/// use seqnet_topology::{TransitStubParams, ClusteredAttachment};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let topo = TransitStubParams::small().generate(&mut rng);
/// let hosts = ClusteredAttachment::new(12, 4).attach(&topo, &mut rng);
/// assert_eq!(hosts.num_hosts(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusteredAttachment {
    /// Total number of hosts to attach.
    pub num_hosts: usize,
    /// Hosts per cluster.
    pub cluster_size: usize,
}

impl ClusteredAttachment {
    /// Creates an attachment policy.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn new(num_hosts: usize, cluster_size: usize) -> Self {
        assert!(cluster_size > 0, "cluster_size must be positive");
        ClusteredAttachment {
            num_hosts,
            cluster_size,
        }
    }

    /// Attaches hosts to the topology, returning the host map.
    ///
    /// Each cluster is assigned a distinct stub domain when enough domains
    /// exist; otherwise domains are reused (wrapping), which only happens in
    /// deliberately tiny test topologies.
    pub fn attach<R: Rng>(&self, topo: &Topology, rng: &mut R) -> HostMap {
        let num_domains = topo.num_stub_domains();
        assert!(num_domains > 0, "topology has no stub domains");

        let num_clusters = self.num_hosts.div_ceil(self.cluster_size);
        // Pick a random sample of stub domains, distinct while possible.
        let mut domain_order: Vec<usize> = (0..num_domains).collect();
        domain_order.shuffle(rng);
        let mut attach = Vec::with_capacity(self.num_hosts);
        for cluster in 0..num_clusters {
            let domain_idx = domain_order[cluster % num_domains];
            let members = topo.stub_domain(domain_idx);
            let in_this_cluster =
                self.cluster_size.min(self.num_hosts - cluster * self.cluster_size);
            for _ in 0..in_this_cluster {
                attach.push(*members.choose(rng).expect("stub domains are non-empty"));
            }
        }
        HostMap { attach }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, TransitStubParams};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn attaches_every_host() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = TransitStubParams::small().generate(&mut rng);
        let hosts = ClusteredAttachment::new(17, 5).attach(&topo, &mut rng);
        assert_eq!(hosts.num_hosts(), 17);
        for (h, r) in hosts.iter() {
            assert!(r.index() < topo.graph.num_routers(), "host {h} router {r}");
        }
    }

    #[test]
    fn cluster_members_share_stub_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = TransitStubParams::small().generate(&mut rng);
        let hosts = ClusteredAttachment::new(12, 4).attach(&topo, &mut rng);
        // Hosts 0..4 form the first cluster: same domain.
        let domain_of = |h: u32| topo.routers[hosts.router_of(HostId(h)).index()].domain;
        for h in 1..4 {
            assert_eq!(domain_of(0), domain_of(h), "host {h} left its cluster");
        }
        for h in 5..8 {
            assert_eq!(domain_of(4), domain_of(h));
        }
    }

    #[test]
    fn intra_cluster_latency_below_cross_cluster() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = TransitStubParams::medium().generate(&mut rng);
        let hosts = ClusteredAttachment::new(32, 8).attach(&topo, &mut rng);
        let sp0 = topo.graph.shortest_paths(hosts.router_of(HostId(0)));
        let intra: Delay = (1..8)
            .map(|h| sp0.delay_to(hosts.router_of(HostId(h))).unwrap())
            .sum();
        let cross: Delay = (8..15)
            .map(|h| sp0.delay_to(hosts.router_of(HostId(h))).unwrap())
            .sum();
        assert!(
            intra < cross,
            "intra-cluster total {intra} should be below cross-cluster {cross}"
        );
    }

    #[test]
    fn last_partial_cluster_ok() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = TransitStubParams::small().generate(&mut rng);
        let hosts = ClusteredAttachment::new(10, 4).attach(&topo, &mut rng);
        assert_eq!(hosts.num_hosts(), 10);
    }

    #[test]
    #[should_panic(expected = "cluster_size must be positive")]
    fn zero_cluster_size_rejected() {
        let _ = ClusteredAttachment::new(10, 0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = HostMap::from_vec(vec![RouterId(3), RouterId(7)]);
        assert_eq!(m.router_of(HostId(0)), RouterId(3));
        assert_eq!(m.router_of(HostId(1)), RouterId(7));
        assert_eq!(m.num_hosts(), 2);
    }
}
