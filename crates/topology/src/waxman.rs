//! Flat Waxman random graphs, a secondary topology model.
//!
//! Waxman's model places routers uniformly in a unit square and links each
//! pair with probability `alpha * exp(-d / (beta * L))` where `d` is the
//! Euclidean distance and `L` the maximum possible distance. Link delay is
//! proportional to distance. GT-ITM uses Waxman graphs inside its domains;
//! we expose the flat variant for experiments that want an unstructured
//! topology baseline.

use crate::{Delay, Graph, RouterId, Topology};
use crate::transit_stub::{DomainId, DomainKind, RouterInfo};
use rand::Rng;

/// Parameters of the Waxman random-graph generator.
///
/// # Example
///
/// ```
/// use seqnet_topology::WaxmanParams;
/// use rand::{rngs::StdRng, SeedableRng};
/// let topo = WaxmanParams::new(50).generate(&mut StdRng::seed_from_u64(7));
/// assert_eq!(topo.graph.num_routers(), 50);
/// assert!(topo.graph.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaxmanParams {
    /// Number of routers.
    pub routers: usize,
    /// Waxman `alpha`: overall link density (0, 1].
    pub alpha: f64,
    /// Waxman `beta`: relative preference for long links (0, 1].
    pub beta: f64,
    /// Delay assigned to a link spanning the full unit-square diagonal, in ms.
    pub max_delay_ms: f64,
}

impl WaxmanParams {
    /// Creates a generator for `routers` routers with the customary
    /// `alpha = 0.15`, `beta = 0.2` and 50 ms diagonal delay.
    pub fn new(routers: usize) -> Self {
        WaxmanParams {
            routers,
            alpha: 0.15,
            beta: 0.2,
            max_delay_ms: 50.0,
        }
    }

    /// Generates a connected Waxman topology.
    ///
    /// Connectivity is guaranteed by adding each node's nearest already-
    /// placed neighbor as a fallback link (a nearest-neighbor spanning
    /// chain), mirroring what GT-ITM does by regenerating until connected.
    ///
    /// All routers are reported as [`DomainKind::Stub`] members of a single
    /// domain so host attachment works uniformly across topology models.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0` or parameters are out of range.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Topology {
        assert!(self.routers > 0, "need at least one router");
        assert!(self.alpha > 0.0 && self.alpha <= 1.0, "alpha in (0,1]");
        assert!(self.beta > 0.0 && self.beta <= 1.0, "beta in (0,1]");

        let n = self.routers;
        let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let diag = 2f64.sqrt();
        let mut graph = Graph::with_routers(n);

        let delay_of = |a: (f64, f64), b: (f64, f64)| -> (f64, Delay) {
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            // Floor of 0.1 ms so coincident points still cost something.
            (d, Delay::from_ms((d / diag * self.max_delay_ms).max(0.1)))
        };

        for i in 0..n {
            for j in (i + 1)..n {
                let (d, delay) = delay_of(pos[i], pos[j]);
                let p = self.alpha * (-d / (self.beta * diag)).exp();
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    graph.add_link(RouterId(i as u32), RouterId(j as u32), delay);
                }
            }
        }

        // Connectivity fallback: link each router (past the first) to its
        // nearest predecessor unless already linked.
        for i in 1..n {
            let nearest = (0..i)
                .min_by(|&a, &b| {
                    let da = delay_of(pos[i], pos[a]).0;
                    let db = delay_of(pos[i], pos[b]).0;
                    da.partial_cmp(&db).expect("distances are finite")
                })
                .expect("i >= 1");
            let (ri, rn) = (RouterId(i as u32), RouterId(nearest as u32));
            if !graph.linked(ri, rn) {
                let (_, delay) = delay_of(pos[i], pos[nearest]);
                graph.add_link(ri, rn, delay);
            }
        }

        let routers = vec![
            RouterInfo {
                kind: DomainKind::Stub,
                domain: DomainId(0),
            };
            n
        ];
        let stub_domains = vec![(0..n as u32).map(RouterId).collect()];
        Topology {
            graph,
            routers,
            stub_domains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn waxman_is_connected() {
        for seed in 0..5 {
            let topo = WaxmanParams::new(40).generate(&mut StdRng::seed_from_u64(seed));
            assert!(topo.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn waxman_single_router() {
        let topo = WaxmanParams::new(1).generate(&mut StdRng::seed_from_u64(0));
        assert_eq!(topo.graph.num_routers(), 1);
        assert!(topo.graph.is_connected());
    }

    #[test]
    fn delays_scale_with_distance() {
        let topo = WaxmanParams::new(100).generate(&mut StdRng::seed_from_u64(2));
        let max = Delay::from_ms(50.0);
        for r in 0..100u32 {
            for (_, d) in topo.graph.neighbors(RouterId(r)) {
                assert!(d <= max, "link delay {d} exceeds diagonal delay");
                assert!(d >= Delay::from_ms(0.1));
            }
        }
    }

    #[test]
    fn single_stub_domain_covers_all() {
        let topo = WaxmanParams::new(10).generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(topo.num_stub_domains(), 1);
        assert_eq!(topo.stub_domain(0).len(), 10);
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1]")]
    fn alpha_validated() {
        let mut p = WaxmanParams::new(5);
        p.alpha = 1.5;
        let _ = p.generate(&mut StdRng::seed_from_u64(0));
    }
}
