//! Cached pairwise delay queries.

use crate::{Delay, Graph, HostMap, HostId, RouterId, ShortestPaths};
use std::collections::HashMap;

/// Answers router-to-router and host-to-host propagation-delay queries,
/// caching one single-source shortest-path computation per queried source
/// router.
///
/// The experiments query delays between a few hundred attachment routers on
/// a 10,000-router topology; caching turns that into at most one Dijkstra
/// per attachment router.
///
/// # Example
///
/// ```
/// use seqnet_topology::{Graph, RouterId, Delay, DelayOracle};
/// let mut g = Graph::with_routers(3);
/// g.add_link(RouterId(0), RouterId(1), Delay::from_ms(2.0));
/// g.add_link(RouterId(1), RouterId(2), Delay::from_ms(2.0));
/// let mut oracle = DelayOracle::new(&g);
/// assert_eq!(oracle.router_delay(RouterId(0), RouterId(2)), Delay::from_ms(4.0));
/// ```
#[derive(Debug)]
pub struct DelayOracle<'g> {
    graph: &'g Graph,
    cache: HashMap<RouterId, ShortestPaths>,
}

impl<'g> DelayOracle<'g> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        DelayOracle {
            graph,
            cache: HashMap::new(),
        }
    }

    /// The shortest-path tree rooted at `src`, computing and caching it on
    /// first use.
    pub fn paths_from(&mut self, src: RouterId) -> &ShortestPaths {
        self.cache
            .entry(src)
            .or_insert_with(|| self.graph.shortest_paths(src))
    }

    /// Shortest propagation delay between two routers.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `src`; the generated topologies
    /// are always connected, so unreachability indicates a bug.
    pub fn router_delay(&mut self, src: RouterId, dst: RouterId) -> Delay {
        self.paths_from(src)
            .delay_to(dst)
            .unwrap_or_else(|| panic!("{dst} unreachable from {src}"))
    }

    /// Shortest propagation delay between two attached hosts.
    pub fn host_delay(&mut self, hosts: &HostMap, a: HostId, b: HostId) -> Delay {
        self.router_delay(hosts.router_of(a), hosts.router_of(b))
    }

    /// Router hop count of the shortest path between two hosts.
    pub fn host_hops(&mut self, hosts: &HostMap, a: HostId, b: HostId) -> usize {
        let (ra, rb) = (hosts.router_of(a), hosts.router_of(b));
        self.paths_from(ra)
            .hops_to(rb)
            .unwrap_or_else(|| panic!("{rb} unreachable from {ra}"))
    }

    /// Number of distinct sources currently cached.
    pub fn cached_sources(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Delay;

    fn line_graph() -> Graph {
        let mut g = Graph::with_routers(4);
        for i in 0..3u32 {
            g.add_link(RouterId(i), RouterId(i + 1), Delay::from_ms(1.0));
        }
        g
    }

    #[test]
    fn caches_per_source() {
        let g = line_graph();
        let mut o = DelayOracle::new(&g);
        assert_eq!(o.cached_sources(), 0);
        let _ = o.router_delay(RouterId(0), RouterId(3));
        let _ = o.router_delay(RouterId(0), RouterId(1));
        assert_eq!(o.cached_sources(), 1, "same source reuses cache");
        let _ = o.router_delay(RouterId(2), RouterId(0));
        assert_eq!(o.cached_sources(), 2);
    }

    #[test]
    fn symmetric_delays() {
        let g = line_graph();
        let mut o = DelayOracle::new(&g);
        assert_eq!(
            o.router_delay(RouterId(0), RouterId(3)),
            o.router_delay(RouterId(3), RouterId(0)),
        );
    }

    #[test]
    fn host_queries_use_attachment() {
        let g = line_graph();
        let hosts = HostMap::from_vec(vec![RouterId(0), RouterId(3)]);
        let mut o = DelayOracle::new(&g);
        assert_eq!(
            o.host_delay(&hosts, HostId(0), HostId(1)),
            Delay::from_ms(3.0)
        );
        assert_eq!(o.host_hops(&hosts, HostId(0), HostId(1)), 3);
    }

    #[test]
    fn same_host_zero_delay() {
        let g = line_graph();
        let hosts = HostMap::from_vec(vec![RouterId(2), RouterId(2)]);
        let mut o = DelayOracle::new(&g);
        assert_eq!(o.host_delay(&hosts, HostId(0), HostId(1)), Delay::ZERO);
    }
}
