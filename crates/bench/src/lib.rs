//! Experiment harness reproducing the paper's evaluation (§4).
//!
//! Each figure of the paper has a binary in `src/bin/` that runs the
//! corresponding experiment and emits an ASCII table plus a CSV under
//! `results/`. The experiment logic lives here so the Criterion
//! micro-benchmarks can reuse it.
//!
//! | Paper result | Binary |
//! |--------------|--------|
//! | Figure 3 (latency stretch CDF) | `fig3_latency_stretch` |
//! | Figure 4 (RDP vs unicast delay) | `fig4_rdp` |
//! | Figure 5 (sequencing nodes vs groups) | `fig5_sequencing_nodes` |
//! | Figure 6 (stress vs groups) | `fig6_stress` |
//! | Figure 7 (atoms per path CDF) | `fig7_atoms_on_path` |
//! | Figure 8 (occupancy sweep) | `fig8_occupancy` |
//! | §2/§4.4 overhead claim | `overhead_vs_vector` |
//! | §1.2/§4.3 load claim | `load_vs_central` |
//!
//! Set `SEQNET_QUICK=1` to run each binary at reduced scale (small
//! topology, fewer trials) for smoke-testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;

pub use experiments::ExperimentScale;
