//! CSV and ASCII-table output for experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes rows as CSV under `results/` (creating the directory), and
/// returns the path written.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn save_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path.display().to_string()
}

/// Prints a fixed-width ASCII table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_rounds() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(2.0), "2.000");
    }

    #[test]
    fn csv_roundtrip() {
        let rows = vec![vec!["1".to_string(), "2.5".to_string()]];
        let path = save_csv("test_output_roundtrip", &["a", "b"], &rows);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2.5\n");
        std::fs::remove_file(path).unwrap();
    }
}
