//! The paper's experiments (§4), parameterized by scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_baseline::{vector_timestamp_bytes, CentralDelays, CentralSequencer};
use seqnet_core::{metrics, NetworkSetup, OrderedPubSub};
use seqnet_membership::workload::{OccupancyGroups, ZipfGroups};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{stats, Colocation, GraphBuilder, OverlapSet};
use seqnet_topology::{RouterId, TransitStubParams};

/// Paper scale (10,000 routers, 128 hosts, 100 trials) or quick scale for
/// smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// `true` = the paper's parameters.
    pub paper: bool,
}

impl ExperimentScale {
    /// Reads `SEQNET_QUICK`: set (to anything but `0`) means quick scale.
    pub fn from_env() -> Self {
        let quick = std::env::var("SEQNET_QUICK").is_ok_and(|v| v != "0");
        ExperimentScale { paper: !quick }
    }

    /// The topology generator parameters for this scale.
    pub fn topology(&self) -> TransitStubParams {
        if self.paper {
            TransitStubParams::paper()
        } else {
            TransitStubParams::small()
        }
    }

    /// Number of subscriber hosts (the paper's headline configuration
    /// uses 128).
    pub fn num_hosts(&self) -> usize {
        if self.paper {
            128
        } else {
            16
        }
    }

    /// Hosts per attachment cluster (the paper says "similar size
    /// clusters" without the size; 8 gives 16 clusters at 128 hosts).
    pub fn cluster_size(&self) -> usize {
        if self.paper {
            8
        } else {
            4
        }
    }

    /// Scales a trial count down for quick runs.
    pub fn trials(&self, paper_trials: usize) -> usize {
        if self.paper {
            paper_trials
        } else {
            paper_trials.div_ceil(20).max(2)
        }
    }
}

/// The Figure 3/4 measurement run: every node sends one message to each
/// group it subscribes to, through the sequencer network; unicast
/// reference delays are recorded alongside (paper §4.2).
///
/// Returns the completed engine for metric extraction.
pub fn run_stretch_experiment(
    scale: ExperimentScale,
    num_groups: usize,
    seed: u64,
) -> OrderedPubSub {
    run_stretch_with(scale, seed, |rng| {
        ZipfGroups::new(scale.num_hosts(), num_groups).sample(rng)
    })
}

/// Like [`run_stretch_experiment`] with a caller-supplied membership
/// sampler (e.g. geographically-correlated workloads).
pub fn run_stretch_with(
    scale: ExperimentScale,
    seed: u64,
    sample: impl FnOnce(&mut StdRng) -> Membership,
) -> OrderedPubSub {
    let mut rng = StdRng::seed_from_u64(seed);
    let setup = NetworkSetup::generate(
        &scale.topology(),
        scale.num_hosts(),
        scale.cluster_size(),
        &mut rng,
    );
    let membership = sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&membership, &setup, &mut rng);
    for node in membership.nodes().collect::<Vec<_>>() {
        for group in membership.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).expect("group exists");
        }
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "experiment run must not deadlock");
    bus
}

/// Figure 3: per-destination latency stretch values for one run.
pub fn latency_stretch(scale: ExperimentScale, num_groups: usize, seed: u64) -> Vec<f64> {
    let bus = run_stretch_experiment(scale, num_groups, seed);
    metrics::stretch_by_destination(bus.all_deliveries())
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

/// Figure 4: `(unicast delay ms, RDP)` scatter points for one run.
pub fn rdp_points(scale: ExperimentScale, num_groups: usize, seed: u64) -> Vec<(f64, f64)> {
    let bus = run_stretch_experiment(scale, num_groups, seed);
    metrics::rdp_scatter(bus.all_deliveries())
}

/// Structural sample shared by Figures 5–8: membership → overlaps →
/// graph → co-location. No topology needed.
#[derive(Debug)]
pub struct StructuralSample {
    /// The sampled membership matrix.
    pub membership: Membership,
    /// Its sequencing graph (greedy chains; span optimization is
    /// irrelevant to counts).
    pub graph: seqnet_overlap::SequencingGraph,
    /// The §3.4 co-location of its atoms.
    pub colocation: Colocation,
    /// Number of double overlaps.
    pub num_overlaps: usize,
}

/// Samples the structural state for a Zipf workload (Figures 5, 6, 7).
pub fn structural_zipf(num_nodes: usize, num_groups: usize, seed: u64) -> StructuralSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let membership = ZipfGroups::new(num_nodes, num_groups).sample(&mut rng);
    structural_from(membership, &mut rng)
}

/// Samples the structural state for an occupancy workload (Figure 8).
pub fn structural_occupancy(
    num_nodes: usize,
    num_groups: usize,
    occupancy: f64,
    seed: u64,
) -> StructuralSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let membership = OccupancyGroups::new(num_nodes, num_groups, occupancy).sample(&mut rng);
    structural_from(membership, &mut rng)
}

fn structural_from(membership: Membership, rng: &mut StdRng) -> StructuralSample {
    let num_overlaps = OverlapSet::compute(&membership).len();
    let graph = GraphBuilder::new().without_optimization().build(&membership);
    let colocation = Colocation::compute(&graph, rng);
    StructuralSample {
        membership,
        graph,
        colocation,
        num_overlaps,
    }
}

/// Figure 5 data point: number of (non-ingress-only) sequencing nodes.
pub fn sequencing_nodes(sample: &StructuralSample) -> usize {
    sample.colocation.num_overlap_nodes()
}

/// Figure 6 data point: per-node stress values (all forwarded traffic,
/// transit included).
pub fn stress_values(sample: &StructuralSample) -> Vec<f64> {
    stats::node_stress(&sample.graph, &sample.colocation)
}

/// Figure 6 data point under the stamped-only reading of stress (see
/// [`stats::node_stress_stamped`]).
pub fn stress_values_stamped(sample: &StructuralSample) -> Vec<f64> {
    stats::node_stress_stamped(&sample.graph, &sample.colocation)
}

/// Figure 7 data points: for each group, `(stamps, path length)` — the
/// sequence numbers a message collects and the atoms it traverses.
pub fn atoms_on_path(sample: &StructuralSample) -> Vec<(usize, usize)> {
    sample
        .graph
        .paths()
        .map(|(g, p)| (sample.graph.stampers(g).len(), p.len()))
        .collect()
}

/// The §4.4 overhead comparison: per-group stamp bytes vs the
/// vector-timestamp bytes for the same system size.
pub fn overhead_rows(num_nodes: usize, num_groups: usize, seed: u64) -> Vec<(GroupId, usize, usize)> {
    let sample = structural_zipf(num_nodes, num_groups, seed);
    let vector = vector_timestamp_bytes(num_nodes);
    sample
        .graph
        .paths()
        .map(|(g, _)| {
            let stamps = sample.graph.stampers(g).len();
            (g, 8 + stamps * 12, vector)
        })
        .collect()
}

/// The §1.2/§4.3/§2 load comparison: runs the same workload through the
/// decentralized scheme, a central sequencer, and the Garcia-Molina-style
/// propagation tree.
///
/// Returns `(total messages, central load, max atom stamping load,
/// max receiver load, G-M root load)`.
pub fn load_comparison(
    num_nodes: usize,
    num_groups: usize,
    seed: u64,
) -> (u64, u64, u64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let membership = ZipfGroups::new(num_nodes, num_groups)
        .with_min_size(2)
        .sample(&mut rng);

    let mut bus = OrderedPubSub::new(&membership);
    let mut central = CentralSequencer::new(
        &membership,
        CentralDelays::Uniform(seqnet_sim::SimTime::from_ms(1.0)),
    );
    let mut gm = seqnet_baseline::PropagationTree::new(
        &membership,
        seqnet_sim::SimTime::from_ms(1.0),
    );
    let mut total = 0u64;
    for node in membership.nodes().collect::<Vec<_>>() {
        for group in membership.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).expect("exists");
            central.publish(node, group, 0).expect("exists");
            gm.publish(node, group).expect("exists");
            total += 1;
        }
    }
    bus.run_to_quiescence();
    central.run_to_quiescence();
    gm.run_to_quiescence();

    let max_stamp = bus.atom_stamp_loads().iter().copied().max().unwrap_or(0);
    let max_receiver = bus.receiver_loads().values().copied().max().unwrap_or(0);
    let gm_root = gm.forward_loads().get(&gm.root()).copied().unwrap_or(0);
    (
        total,
        central.sequencer_load(),
        max_stamp,
        max_receiver,
        gm_root,
    )
}

/// A central sequencer router for topology-backed comparisons: the first
/// transit router (a natural "well-connected" choice).
pub fn central_router() -> RouterId {
    RouterId(0)
}

/// Convenience used by tests and benches: does every published message
/// reach every member with agreement? Panics otherwise.
pub fn assert_consistent(bus: &OrderedPubSub) {
    let m = bus.membership();
    let nodes: Vec<NodeId> = m.nodes().collect();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let da: Vec<_> = bus.delivered(a).iter().map(|d| d.id).collect();
            let db: Vec<_> = bus.delivered(b).iter().map(|d| d.id).collect();
            let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
            let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "{a} and {b} disagree");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: ExperimentScale = ExperimentScale { paper: false };

    #[test]
    fn stretch_experiment_runs_at_quick_scale() {
        let bus = run_stretch_experiment(QUICK, 4, 1);
        assert_consistent(&bus);
        let stretch = latency_stretch(QUICK, 4, 1);
        assert!(!stretch.is_empty());
        assert!(stretch.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn structural_sample_counts_are_consistent() {
        let sample = structural_zipf(32, 8, 3);
        assert_eq!(sample.graph.num_overlap_atoms(), sample.num_overlaps);
        assert!(sequencing_nodes(&sample) <= sample.num_overlaps.max(1));
        for s in stress_values(&sample) {
            assert!((0.0..=1.0).contains(&s));
        }
        for (stamps, path_len) in atoms_on_path(&sample) {
            assert!(stamps <= path_len);
        }
    }

    #[test]
    fn occupancy_extremes_structural() {
        let empty = structural_occupancy(16, 4, 0.0, 1);
        assert_eq!(empty.num_overlaps, 0);
        let full = structural_occupancy(16, 4, 1.0, 1);
        assert_eq!(full.num_overlaps, 6, "C(4,2) overlaps at full occupancy");
        assert_eq!(
            sequencing_nodes(&full),
            1,
            "identical member sets co-locate onto one node (paper §4.5)"
        );
    }

    #[test]
    fn load_comparison_shape() {
        let (total, central, max_stamp, max_receiver, gm_root) = load_comparison(24, 8, 5);
        assert_eq!(central, total);
        assert_eq!(gm_root, total, "the G-M root sequences everything too");
        assert!(max_stamp <= max_receiver);
        assert!(max_stamp < total);
    }

    #[test]
    fn overhead_rows_favor_stamps_when_nodes_exceed_groups() {
        for (g, stamp_bytes, vector_bytes) in overhead_rows(64, 8, 7) {
            assert!(stamp_bytes < vector_bytes, "{g}");
        }
    }

    #[test]
    fn scale_from_env_reads_quick_flag() {
        // Not setting the variable here (process-global); just check the
        // trial scaler math.
        let quick = ExperimentScale { paper: false };
        assert_eq!(quick.trials(100), 5);
        assert_eq!(quick.trials(10), 2);
        let paper = ExperimentScale { paper: true };
        assert_eq!(paper.trials(100), 100);
    }
}
